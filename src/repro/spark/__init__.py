"""A functional Spark-like engine plus the framework-level models.

Two halves live here:

1. **Framework models** used by the performance work: executor/memory
   configuration (:mod:`repro.spark.conf`), the storage-memory manager that
   decides whether an RDD fits in cache (:mod:`repro.spark.memory`), and
   the shuffle file model that explains the 30 KB reads
   (:mod:`repro.spark.shuffle`).
2. **A functional RDD engine** (:mod:`repro.spark.rdd`,
   :mod:`repro.spark.dag`, :mod:`repro.spark.scheduler`,
   :mod:`repro.spark.context`) that really executes transformations over
   partitioned Python data — groupByKey really groups — so the library's
   semantics can be tested end to end, and small applications can be
   translated into workload specs automatically.
"""

from repro.spark.conf import SparkConf
from repro.spark.memory import StorageMemoryManager, fits_in_storage_memory
from repro.spark.shuffle import ShufflePlan, shuffle_read_request_size
from repro.spark.rdd import RDD
from repro.spark.context import DoppioContext
from repro.spark.dag import build_stages, Stage
from repro.spark.stageinfo import StageRuntimeProfile

__all__ = [
    "SparkConf",
    "StorageMemoryManager",
    "fits_in_storage_memory",
    "ShufflePlan",
    "shuffle_read_request_size",
    "RDD",
    "DoppioContext",
    "build_stages",
    "Stage",
    "StageRuntimeProfile",
]
