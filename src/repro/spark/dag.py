"""Lineage-to-stage planning.

Spark splits an RDD lineage graph into stages at *wide* (shuffle)
dependencies: everything upstream of a ``ShuffledRDD`` runs as a map stage
whose outputs are materialized as shuffle files; the shuffle's reduce side
starts a new stage.  ``build_stages`` performs the same cut and returns
stages in a valid execution order (parents before dependents).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulerError
from repro.spark.rdd import RDD, ShuffledRDD


@dataclass(frozen=True)
class Stage:
    """One executable stage.

    Attributes
    ----------
    stage_id:
        Position in execution order.
    boundary:
        The RDD whose partitions the stage materializes: a
        :class:`~repro.spark.rdd.ShuffledRDD`'s *parent* for map stages, or
        the action's target RDD for the final (result) stage.
    shuffle:
        The downstream ``ShuffledRDD`` this stage feeds, or ``None`` for
        the result stage.
    """

    stage_id: int
    boundary: RDD
    shuffle: ShuffledRDD | None = field(default=None)

    @property
    def num_tasks(self) -> int:
        """One task per partition of the boundary RDD."""
        return self.boundary.num_partitions

    @property
    def is_result_stage(self) -> bool:
        """True for the stage that produces the action's output."""
        return self.shuffle is None

    @property
    def name(self) -> str:
        """Readable label."""
        if self.shuffle is not None:
            return f"map-stage({self.shuffle.name})"
        return f"result-stage({self.boundary.name})"


def shuffle_dependencies(target: RDD) -> list[ShuffledRDD]:
    """All ShuffledRDDs reachable from ``target``, parents before children."""
    ordered: list[ShuffledRDD] = []
    seen: set[int] = set()

    def visit(rdd: RDD) -> None:
        if rdd.rdd_id in seen:
            return
        seen.add(rdd.rdd_id)
        for parent in rdd.parents:
            visit(parent)
        if isinstance(rdd, ShuffledRDD):
            ordered.append(rdd)

    visit(target)
    return ordered


def build_stages(target: RDD) -> list[Stage]:
    """Plan the stages needed to materialize ``target``.

    Every shuffle dependency yields one map stage (over the shuffle's
    parent); the final result stage computes ``target`` itself.  A stage's
    own lineage stops at upstream shuffle boundaries, whose outputs are read
    from shuffle files rather than recomputed.
    """
    if target is None:
        raise SchedulerError("cannot plan stages for a null RDD")
    stages: list[Stage] = []
    for index, shuffled in enumerate(shuffle_dependencies(target)):
        stages.append(
            Stage(stage_id=index, boundary=shuffled.parents[0], shuffle=shuffled)
        )
    stages.append(Stage(stage_id=len(stages), boundary=target, shuffle=None))
    return stages
