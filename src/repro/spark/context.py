"""DoppioContext: the functional engine's entry point (a mini SparkContext)."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import SchedulerError
from repro.spark.conf import SparkConf
from repro.spark.rdd import RDD, SourceRDD
from repro.spark.scheduler import LocalRuntime
from repro.spark.stageinfo import StageRuntimeProfile


class DoppioContext:
    """Creates RDDs and owns the runtime that executes them.

    Parameters
    ----------
    conf:
        Spark configuration; the storage-memory pool size is
        ``conf.storage_memory_bytes * num_slaves``.
    num_slaves:
        Modeled worker count (affects only the cache pool size here —
        execution is in-process).
    """

    def __init__(self, conf: SparkConf | None = None, num_slaves: int = 1) -> None:
        if num_slaves <= 0:
            raise SchedulerError("context needs at least one slave")
        self.conf = conf or SparkConf()
        self.num_slaves = num_slaves
        self.runtime = LocalRuntime(
            storage_memory_bytes=self.conf.cluster_storage_memory_bytes(num_slaves)
        )

    def parallelize(self, data: Iterable, num_slices: int | None = None) -> RDD:
        """Distribute a Python collection into an RDD."""
        rows = list(data)
        slices = self.conf.default_parallelism if num_slices is None else num_slices
        if slices <= 0:
            raise SchedulerError("slice count must be positive")
        if not rows:
            return SourceRDD(self, [[]])
        slices = min(slices, len(rows))
        chunk, remainder = divmod(len(rows), slices)
        partitions: list[list] = []
        start = 0
        for index in range(slices):
            size = chunk + (1 if index < remainder else 0)
            partitions.append(rows[start : start + size])
            start += size
        return SourceRDD(self, partitions)

    def text_file(self, lines: Sequence[str], num_slices: int | None = None) -> RDD:
        """An RDD of text lines (the engine's stand-in for ``textFile``)."""
        return self.parallelize(list(lines), num_slices)

    def union(self, rdds: Sequence[RDD]) -> RDD:
        """Union an arbitrary list of RDDs."""
        if not rdds:
            raise SchedulerError("cannot union zero RDDs")
        result = rdds[0]
        for other in rdds[1:]:
            result = result.union(other)
        return result

    @property
    def stage_profiles(self) -> list[StageRuntimeProfile]:
        """Profiles of every stage executed so far."""
        return self.runtime.stage_profiles
