"""Spark configuration (Table II).

Only the knobs the paper's analysis touches are modeled:

- ``SPARK_WORKER_CORES`` — executor cores per node (``P`` when fully used);
- ``SPARK_WORKER_MEMORY`` — executor memory per node (90 GB in Table II);
- the storage-memory fraction — the paper assumes "around 40% of the
  entire Spark executor memory is used as storage memory" when reasoning
  about which RDDs can be cached (Section III-B2);
- default parallelism — partitions for RDDs without an HDFS source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB


@dataclass(frozen=True)
class SparkConf:
    """Immutable Spark framework configuration."""

    worker_cores: int = 36
    worker_memory_bytes: float = 90 * GB
    storage_memory_fraction: float = 0.40
    default_parallelism: int = 36

    def __post_init__(self) -> None:
        if self.worker_cores <= 0:
            raise ConfigurationError("SPARK_WORKER_CORES must be positive")
        if self.worker_memory_bytes <= 0:
            raise ConfigurationError("SPARK_WORKER_MEMORY must be positive")
        if not 0.0 < self.storage_memory_fraction <= 1.0:
            raise ConfigurationError(
                "storage memory fraction must be in (0, 1],"
                f" got {self.storage_memory_fraction}"
            )
        if self.default_parallelism <= 0:
            raise ConfigurationError("default parallelism must be positive")

    @property
    def storage_memory_bytes(self) -> float:
        """Per-node bytes available for caching RDD partitions."""
        return self.worker_memory_bytes * self.storage_memory_fraction

    def cluster_storage_memory_bytes(self, num_slaves: int) -> float:
        """Total cache capacity across ``num_slaves`` workers."""
        if num_slaves <= 0:
            raise ConfigurationError("slave count must be positive")
        return self.storage_memory_bytes * num_slaves


#: The exact Table II configuration.
PAPER_SPARK_CONF = SparkConf(
    worker_cores=36,
    worker_memory_bytes=90 * GB,
    storage_memory_fraction=0.40,
    default_parallelism=36,
)
