"""Storage-memory management: can an RDD be cached, and what spills.

Section III-B2's analysis: caching GATK4's ``markedReads`` UnionRDD for a
122 GB input needs ~870 GB of deserialized memory; at a 40 % storage
fraction that is ~2.18 TB of executor memory — 25 nodes of the paper's
hardware — so the RDD *cannot* be cached and must be persisted on disk or
recomputed.  :func:`fits_in_storage_memory` captures that decision rule,
and :class:`StorageMemoryManager` is the runtime version used by the
functional engine: LRU caching with eviction-to-disk accounting.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.spark.conf import SparkConf


def fits_in_storage_memory(
    rdd_bytes: float,
    num_slaves: int,
    conf: SparkConf,
) -> bool:
    """Whether an RDD's (deserialized) footprint fits in the cluster cache.

    ``rdd_bytes`` must be the *runtime* (decompressed, deserialized) size,
    which for GATK4 is ~7x the compressed on-disk size (870 GB vs. 122 GB).
    """
    if rdd_bytes < 0:
        raise ConfigurationError("RDD size must be non-negative")
    return rdd_bytes <= conf.cluster_storage_memory_bytes(num_slaves)


def required_slaves_to_cache(
    rdd_bytes: float,
    conf: SparkConf,
) -> int:
    """How many workers it takes to cache an RDD (the paper's "25 nodes")."""
    if rdd_bytes < 0:
        raise ConfigurationError("RDD size must be non-negative")
    if rdd_bytes == 0:
        return 1
    per_node = conf.storage_memory_bytes
    return int(math.ceil(rdd_bytes / per_node))


@dataclass(frozen=True)
class EvictionEvent:
    """One block pushed out of memory (and therefore onto Spark-local)."""

    block_id: str
    size_bytes: float


class StorageMemoryManager:
    """LRU cache of RDD partition blocks with eviction accounting.

    This mirrors Spark's storage-memory pool: blocks are inserted on first
    materialization; when the pool is full, least-recently-used blocks are
    evicted.  Evicted blocks of disk-backed persistence levels land on
    Spark-local — the I/O source the paper's persist read/write channels
    model.
    """

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError("storage memory capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._blocks: OrderedDict[str, float] = OrderedDict()

    @property
    def used_bytes(self) -> float:
        """Bytes currently cached."""
        return sum(self._blocks.values())

    @property
    def free_bytes(self) -> float:
        """Remaining pool space."""
        return self.capacity_bytes - self.used_bytes

    def contains(self, block_id: str) -> bool:
        """Whether the block is cached (does not touch recency)."""
        return block_id in self._blocks

    def get(self, block_id: str) -> bool:
        """Cache lookup; a hit refreshes the block's recency."""
        if block_id not in self._blocks:
            return False
        self._blocks.move_to_end(block_id)
        return True

    def put(self, block_id: str, size_bytes: float) -> list[EvictionEvent]:
        """Insert a block, evicting LRU blocks as needed.

        Returns the eviction events (oldest first).  A block larger than
        the whole pool is not cached at all — Spark skips caching such
        blocks — and the returned list is empty.
        """
        if size_bytes < 0:
            raise ConfigurationError("block size must be non-negative")
        if block_id in self._blocks:
            self._blocks.move_to_end(block_id)
            return []
        if size_bytes > self.capacity_bytes:
            return []
        evicted: list[EvictionEvent] = []
        while self.used_bytes + size_bytes > self.capacity_bytes:
            old_id, old_size = self._blocks.popitem(last=False)
            evicted.append(EvictionEvent(block_id=old_id, size_bytes=old_size))
        self._blocks[block_id] = size_bytes
        return evicted

    def remove(self, block_id: str) -> bool:
        """Drop a block (unpersist); returns whether it was present."""
        return self._blocks.pop(block_id, None) is not None

    def cached_blocks(self) -> list[str]:
        """Block ids in LRU order (least recent first)."""
        return list(self._blocks)
