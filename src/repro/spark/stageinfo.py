"""Runtime stage profiles produced by the functional engine.

Every executed stage records what the paper's profiling runs would log:
task count, bytes moved per channel kind, and the shuffle geometry.  The
records can be turned into :class:`~repro.workloads.base.StageSpec` /
``WorkloadSpec`` objects, closing the loop from *running a real (small)
application* to *modeling it at scale*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.spark.shuffle import shuffle_read_request_size
from repro.units import MB
from repro.workloads.base import ChannelSpec, StageSpec, TaskGroupSpec, WorkloadSpec


@dataclass
class StageRuntimeProfile:
    """Observed facts about one executed stage."""

    name: str
    num_tasks: int
    hdfs_read_bytes: float = 0.0
    hdfs_write_bytes: float = 0.0
    shuffle_write_bytes: float = 0.0
    shuffle_read_bytes: float = 0.0
    persist_read_bytes: float = 0.0
    persist_write_bytes: float = 0.0
    num_mappers: int = 0
    num_reducers: int = 0
    compute_seconds_per_task: float = 0.0
    extras: dict = field(default_factory=dict)

    def channel_bytes(self) -> dict[str, float]:
        """Non-zero channel totals keyed by canonical channel kind."""
        raw = {
            "hdfs_read": self.hdfs_read_bytes,
            "hdfs_write": self.hdfs_write_bytes,
            "shuffle_read": self.shuffle_read_bytes,
            "shuffle_write": self.shuffle_write_bytes,
            "persist_read": self.persist_read_bytes,
            "persist_write": self.persist_write_bytes,
        }
        return {kind: total for kind, total in raw.items() if total > 0}

    def to_stage_spec(
        self,
        default_request_size: float = 1 * MB,
        throughputs: dict[str, float] | None = None,
    ) -> StageSpec:
        """Convert the observed profile into a modelable stage spec.

        Request sizes: shuffle reads use the ``(D/R)/M`` geometry rule; the
        other channels use ``default_request_size`` unless the profile's
        ``extras`` carry a ``"<kind>_request_size"`` override.
        """
        if self.num_tasks <= 0:
            raise WorkloadError(f"stage {self.name}: no tasks recorded")
        reads: list[ChannelSpec] = []
        writes: list[ChannelSpec] = []
        for kind, total in self.channel_bytes().items():
            per_task = total / self.num_tasks
            request_size = self.extras.get(f"{kind}_request_size")
            if request_size is None:
                if kind == "shuffle_read" and self.num_mappers and self.num_reducers:
                    request_size = shuffle_read_request_size(
                        total, self.num_mappers, self.num_reducers
                    )
                else:
                    request_size = min(per_task, default_request_size)
            throughput = (throughputs or {}).get(kind)
            channel = ChannelSpec(
                kind=kind,
                bytes_per_task=per_task,
                request_size=request_size,
                per_core_throughput=throughput,
            )
            (writes if channel.is_write else reads).append(channel)
        group = TaskGroupSpec(
            name="tasks",
            count=self.num_tasks,
            read_channels=tuple(reads),
            compute_seconds=self.compute_seconds_per_task,
            write_channels=tuple(writes),
        )
        return StageSpec(name=self.name, groups=(group,))


def profiles_to_workload(
    name: str, profiles: list[StageRuntimeProfile], **spec_kwargs
) -> WorkloadSpec:
    """Bundle executed-stage profiles into a workload spec."""
    if not profiles:
        raise WorkloadError("cannot build a workload from zero stage profiles")
    return WorkloadSpec(
        name=name,
        stages=tuple(profile.to_stage_spec(**spec_kwargs) for profile in profiles),
        description=f"derived from {len(profiles)} executed stages",
    )
