"""A functional, lazily evaluated RDD.

This is the semantic half of the library: transformations build a lineage
graph; actions hand the graph to the scheduler, which splits it into
stages at shuffle boundaries and really executes the closures over
partitioned Python data.  ``groupByKey`` really groups; ``sortByKey``
really sorts.  The engine exists so the reproduction's mechanisms (stage
splitting, M x R shuffles, caching decisions) can be tested end to end
against real data, not just modeled.

The API mirrors the subset of Spark 1.6 the paper's applications use:
``map``, ``filter``, ``flatMap``, ``mapPartitions``, ``union``,
``groupByKey``, ``reduceByKey``, ``repartition``, ``sortByKey``,
``persist``/``cache``, and the actions ``collect``, ``count``, ``take``,
``reduce``, ``countByKey``.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

from repro.errors import SchedulerError
from repro.spark.partition import HashPartitioner, RangePartitioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spark.context import DoppioContext

_rdd_ids = itertools.count()

#: Persistence levels supported by the engine.
MEMORY_ONLY = "MEMORY_ONLY"
DISK_ONLY = "DISK_ONLY"
NONE = "NONE"


class RDD:
    """Base class: a lazily computed, partitioned dataset.

    Subclasses define ``parents`` (lineage), ``num_partitions`` and
    ``compute_partition`` (how to produce partition ``i`` given the
    runtime).  User code never instantiates subclasses directly — it calls
    transformations.
    """

    def __init__(self, context: "DoppioContext", parents: tuple["RDD", ...]) -> None:
        self.context = context
        self.parents = parents
        self.rdd_id = next(_rdd_ids)
        self.storage_level = NONE
        self.name = type(self).__name__

    # -- to be provided by subclasses ---------------------------------------

    @property
    def num_partitions(self) -> int:
        """Partition count of this RDD."""
        raise NotImplementedError

    def compute_partition(self, index: int, runtime) -> list:
        """Materialize partition ``index`` (narrow computation only)."""
        raise NotImplementedError

    @property
    def is_shuffle_boundary(self) -> bool:
        """True for RDDs whose parents are a shuffle dependency."""
        return False

    # -- persistence ----------------------------------------------------------

    def persist(self, level: str = MEMORY_ONLY) -> "RDD":
        """Mark this RDD for caching at ``level``."""
        if level not in (MEMORY_ONLY, DISK_ONLY):
            raise SchedulerError(f"unsupported storage level: {level!r}")
        self.storage_level = level
        return self

    def cache(self) -> "RDD":
        """Alias for ``persist(MEMORY_ONLY)``."""
        return self.persist(MEMORY_ONLY)

    def unpersist(self) -> "RDD":
        """Drop the persistence mark and any cached blocks."""
        self.storage_level = NONE
        self.context.runtime.drop_cached(self)
        return self

    # -- transformations (narrow) --------------------------------------------

    def map(self, fn: Callable) -> "RDD":
        """Apply ``fn`` to every row."""
        return MappedRDD(self, lambda rows: [fn(row) for row in rows], "map")

    def filter(self, predicate: Callable) -> "RDD":
        """Keep rows where ``predicate`` is truthy."""
        return MappedRDD(
            self, lambda rows: [row for row in rows if predicate(row)], "filter"
        )

    def flat_map(self, fn: Callable) -> "RDD":
        """Apply ``fn`` and flatten one level."""
        return MappedRDD(
            self,
            lambda rows: [item for row in rows for item in fn(row)],
            "flatMap",
        )

    def map_partitions(self, fn: Callable[[list], Iterable]) -> "RDD":
        """Apply ``fn`` to each whole partition."""
        return MappedRDD(self, lambda rows: list(fn(rows)), "mapPartitions")

    def key_by(self, fn: Callable) -> "RDD":
        """Turn rows into ``(fn(row), row)`` pairs."""
        return MappedRDD(self, lambda rows: [(fn(row), row) for row in rows], "keyBy")

    def map_values(self, fn: Callable) -> "RDD":
        """Apply ``fn`` to the value of each key/value pair."""
        return MappedRDD(
            self, lambda rows: [(key, fn(value)) for key, value in rows], "mapValues"
        )

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs' partition lists (no shuffle)."""
        return UnionRDD(self, other)

    # -- transformations (wide: shuffle) --------------------------------------

    def group_by_key(self, num_partitions: int | None = None) -> "RDD":
        """Group pair rows by key (the paper's Fig. 4 operation)."""
        partitioner = HashPartitioner(num_partitions or self.num_partitions)
        return ShuffledRDD(
            self, partitioner, combine=_group_values, name="groupByKey"
        )

    def reduce_by_key(self, fn: Callable, num_partitions: int | None = None) -> "RDD":
        """Merge values per key with ``fn``."""
        partitioner = HashPartitioner(num_partitions or self.num_partitions)

        def combine(pairs: list) -> list:
            merged: dict = {}
            for key, value in pairs:
                merged[key] = fn(merged[key], value) if key in merged else value
            return list(merged.items())

        return ShuffledRDD(self, partitioner, combine=combine, name="reduceByKey")

    def repartition(self, num_partitions: int) -> "RDD":
        """Redistribute rows round-robin into ``num_partitions`` (a shuffle)."""
        keyed = MappedRDD(
            self,
            lambda rows: [(index, row) for index, row in enumerate(rows)],
            "repartition-key",
        )
        partitioner = HashPartitioner(num_partitions)
        return ShuffledRDD(
            keyed,
            partitioner,
            combine=lambda pairs: [row for _, row in pairs],
            name="repartition",
        )

    def sort_by_key(self, num_partitions: int | None = None) -> "RDD":
        """Globally sort pair rows by key via range partitioning (a shuffle).

        The boundary sample triggers a small pre-pass job, as in Spark.
        """
        target = num_partitions or self.num_partitions
        sample = [key for key, _ in self.take(10_000)]
        partitioner = RangePartitioner.from_sample(sample, target)
        return ShuffledRDD(
            self,
            partitioner,
            combine=lambda pairs: sorted(pairs, key=lambda pair: pair[0]),
            name="sortByKey",
        )

    def sort_by(self, key_fn: Callable, num_partitions: int | None = None) -> "RDD":
        """Globally sort rows by ``key_fn(row)`` (a shuffle)."""
        keyed = self.key_by(key_fn)
        return keyed.sort_by_key(num_partitions).map(lambda pair: pair[1])

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        """Deduplicate rows (a shuffle, like Spark's reduceByKey trick)."""
        keyed = MappedRDD(self, lambda rows: [(row, None) for row in rows],
                          "distinct-key")
        reduced = keyed.reduce_by_key(lambda a, b: a, num_partitions)
        return reduced.map(lambda pair: pair[0])

    def cogroup(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Group two pair-RDDs by key: ``(key, (left_values, right_values))``."""
        if other.context is not self.context:
            raise SchedulerError("cannot cogroup RDDs from different contexts")
        left = self.map_values(lambda value: ("L", value))
        right = other.map_values(lambda value: ("R", value))
        target = num_partitions or max(self.num_partitions, other.num_partitions)

        def split(pair):
            key, tagged = pair
            lefts = [value for tag, value in tagged if tag == "L"]
            rights = [value for tag, value in tagged if tag == "R"]
            return (key, (lefts, rights))

        return left.union(right).group_by_key(target).map(split)

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Inner join of two pair-RDDs: ``(key, (left, right))`` pairs."""

        def expand(pair):
            key, (lefts, rights) = pair
            return [(key, (lv, rv)) for lv in lefts for rv in rights]

        return self.cogroup(other, num_partitions).flat_map(expand)

    # -- actions --------------------------------------------------------------

    def collect(self) -> list:
        """Materialize every partition, in partition order."""
        return [
            row
            for partition in self.context.runtime.run_job(self)
            for row in partition
        ]

    def count(self) -> int:
        """Number of rows."""
        return sum(len(partition) for partition in self.context.runtime.run_job(self))

    def take(self, limit: int) -> list:
        """First ``limit`` rows in partition order."""
        taken: list = []
        for partition in self.context.runtime.run_job(self):
            taken.extend(partition[: limit - len(taken)])
            if len(taken) >= limit:
                break
        return taken

    def reduce(self, fn: Callable):
        """Fold all rows with ``fn``; raises on an empty RDD."""
        rows = self.collect()
        if not rows:
            raise SchedulerError("reduce() of an empty RDD")
        result = rows[0]
        for row in rows[1:]:
            result = fn(result, row)
        return result

    def count_by_key(self) -> dict:
        """Count pair rows per key."""
        counts: dict = {}
        for key, _ in self.collect():
            counts[key] = counts.get(key, 0) + 1
        return counts

    def take_ordered(self, limit: int, key_fn: Callable | None = None) -> list:
        """Smallest ``limit`` rows by ``key_fn`` (or natural order)."""
        return sorted(self.collect(), key=key_fn)[:limit]

    def glom(self) -> list[list]:
        """Materialize partitions as lists (debug/test helper)."""
        return self.context.runtime.run_job(self)

    def __repr__(self) -> str:
        return f"{self.name}(id={self.rdd_id}, partitions={self.num_partitions})"


def _group_values(pairs: list) -> list:
    grouped: dict = {}
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    return [(key, values) for key, values in grouped.items()]


class SourceRDD(RDD):
    """An RDD materialized from in-memory data (``parallelize``)."""

    def __init__(self, context: "DoppioContext", slices: list[list]) -> None:
        super().__init__(context, parents=())
        if not slices:
            raise SchedulerError("cannot build an RDD with zero partitions")
        self._slices = [list(chunk) for chunk in slices]
        self.name = "SourceRDD"

    @property
    def num_partitions(self) -> int:
        return len(self._slices)

    def compute_partition(self, index: int, runtime) -> list:
        return list(self._slices[index])


class MappedRDD(RDD):
    """Narrow one-parent transformation applying ``fn`` per partition."""

    def __init__(self, parent: RDD, fn: Callable[[list], list], name: str) -> None:
        super().__init__(parent.context, parents=(parent,))
        self._fn = fn
        self.name = name

    @property
    def num_partitions(self) -> int:
        return self.parents[0].num_partitions

    def compute_partition(self, index: int, runtime) -> list:
        return self._fn(runtime.partition_of(self.parents[0], index))


class UnionRDD(RDD):
    """Concatenation of two parents' partitions (narrow)."""

    def __init__(self, left: RDD, right: RDD) -> None:
        if left.context is not right.context:
            raise SchedulerError("cannot union RDDs from different contexts")
        super().__init__(left.context, parents=(left, right))
        self.name = "UnionRDD"

    @property
    def num_partitions(self) -> int:
        return self.parents[0].num_partitions + self.parents[1].num_partitions

    def compute_partition(self, index: int, runtime) -> list:
        left, right = self.parents
        if index < left.num_partitions:
            return runtime.partition_of(left, index)
        return runtime.partition_of(right, index - left.num_partitions)


class ShuffledRDD(RDD):
    """A wide dependency: rows are redistributed by a partitioner.

    ``combine`` post-processes each reduce partition (group, merge, sort).
    The scheduler materializes the map outputs (the shuffle files) and
    feeds each reduce partition the segments destined for it.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner,
        combine: Callable[[list], list],
        name: str,
    ) -> None:
        super().__init__(parent.context, parents=(parent,))
        self.partitioner = partitioner
        self.combine = combine
        self.name = name

    @property
    def num_partitions(self) -> int:
        return self.partitioner.num_partitions

    @property
    def is_shuffle_boundary(self) -> bool:
        return True

    def compute_partition(self, index: int, runtime) -> list:
        segments = runtime.shuffle_segments_for(self, index)
        return self.combine(segments)
