"""The functional engine's runtime: job execution, caching, shuffles.

``LocalRuntime`` executes action jobs over the lineage graph:

1. :func:`~repro.spark.dag.build_stages` plans the stages;
2. map stages compute their boundary RDD's partitions, split every row by
   the shuffle's partitioner and materialize the buckets as "shuffle
   files" (an in-memory ``(shuffle, map_index) -> {reduce_index: rows}``
   map, with byte accounting);
3. the result stage computes the target partitions, reading shuffle
   segments instead of recomputing across boundaries;
4. RDDs marked ``persist()`` are cached through a
   :class:`~repro.spark.memory.StorageMemoryManager`; memory-level blocks
   that do not fit fall through to the disk block store, exactly the
   spill path whose I/O the paper models.

Every executed stage appends a
:class:`~repro.spark.stageinfo.StageRuntimeProfile` to ``stage_profiles``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import SchedulerError
from repro.spark.dag import Stage, build_stages
from repro.spark.memory import StorageMemoryManager
from repro.spark.partition import estimate_bytes
from repro.spark.rdd import DISK_ONLY, MEMORY_ONLY, NONE, RDD, ShuffledRDD
from repro.spark.shuffle import shuffle_read_request_size
from repro.spark.stageinfo import StageRuntimeProfile


class LocalRuntime:
    """Executes jobs for one :class:`~repro.spark.context.DoppioContext`."""

    def __init__(self, storage_memory_bytes: float) -> None:
        self.memory = StorageMemoryManager(storage_memory_bytes)
        # Cached partition data: block id -> rows.  Memory- and disk-level
        # blocks live in separate maps so eviction can demote correctly.
        self._memory_blocks: dict[str, list] = {}
        self._disk_blocks: dict[str, list] = {}
        # (shuffle rdd_id, map_index) -> {reduce_index: rows}
        self._shuffle_outputs: dict[tuple[int, int], dict[int, list]] = {}
        self._completed_shuffles: set[int] = set()
        self.stage_profiles: list[StageRuntimeProfile] = []
        self.disk_spill_bytes = 0.0
        # Shuffle reads of the currently executing stage:
        # shuffle rdd_id -> [bytes, num_mappers, num_reducers].
        self._stage_shuffle_reads: dict[int, list] = {}

    # -- job driver ----------------------------------------------------------

    def run_job(self, target: RDD) -> list[list]:
        """Materialize every partition of ``target``, running needed stages."""
        stages = build_stages(target)
        for stage in stages[:-1]:
            assert stage.shuffle is not None
            self._run_map_stage(stage)
        result_stage = stages[-1]
        self._stage_shuffle_reads = {}
        partitions = [
            self.partition_of(target, index)
            for index in range(target.num_partitions)
        ]
        profile = StageRuntimeProfile(
            name=result_stage.name,
            num_tasks=result_stage.num_tasks,
        )
        self._record_shuffle_reads(profile)
        self.stage_profiles.append(profile)
        return partitions

    # -- partition materialization --------------------------------------------

    def partition_of(self, rdd: RDD, index: int) -> list:
        """Partition ``index`` of ``rdd``, honouring the cache."""
        if rdd.storage_level == NONE:
            return rdd.compute_partition(index, self)
        block_id = f"rdd_{rdd.rdd_id}_part_{index}"
        cached = self._lookup_block(block_id)
        if cached is not None:
            return cached
        rows = rdd.compute_partition(index, self)
        self._store_block(block_id, rows, rdd.storage_level)
        return rows

    def _lookup_block(self, block_id: str) -> list | None:
        if self.memory.get(block_id):
            return self._memory_blocks[block_id]
        if block_id in self._disk_blocks:
            return self._disk_blocks[block_id]
        return None

    def _store_block(self, block_id: str, rows: list, level: str) -> None:
        size = estimate_bytes(rows)
        if level == MEMORY_ONLY:
            evicted = self.memory.put(block_id, size)
            if self.memory.contains(block_id):
                self._memory_blocks[block_id] = rows
            else:
                # Too big for the pool: Spark drops MEMORY_ONLY blocks.
                pass
            for event in evicted:
                # Demote evicted blocks to the disk store (spill).
                demoted = self._memory_blocks.pop(event.block_id, None)
                if demoted is not None:
                    self._disk_blocks[event.block_id] = demoted
                    self.disk_spill_bytes += event.size_bytes
        elif level == DISK_ONLY:
            self._disk_blocks[block_id] = rows
            self.disk_spill_bytes += size
        else:  # pragma: no cover - persist() validates levels
            raise SchedulerError(f"unsupported storage level: {level!r}")

    def drop_cached(self, rdd: RDD) -> None:
        """Remove all cached blocks of an RDD (unpersist)."""
        prefix = f"rdd_{rdd.rdd_id}_part_"
        for block_id in [b for b in self._memory_blocks if b.startswith(prefix)]:
            self.memory.remove(block_id)
            del self._memory_blocks[block_id]
        for block_id in [b for b in self._disk_blocks if b.startswith(prefix)]:
            del self._disk_blocks[block_id]

    # -- shuffle machinery ------------------------------------------------------

    def _run_map_stage(self, stage: Stage) -> None:
        shuffled = stage.shuffle
        assert shuffled is not None
        if shuffled.rdd_id in self._completed_shuffles:
            return
        parent = shuffled.parents[0]
        partitioner = shuffled.partitioner
        write_bytes = 0.0
        self._stage_shuffle_reads = {}
        for map_index in range(parent.num_partitions):
            rows = self.partition_of(parent, map_index)
            buckets: dict[int, list] = defaultdict(list)
            for row in rows:
                try:
                    key = row[0]
                except (TypeError, IndexError):
                    raise SchedulerError(
                        f"{shuffled.name} requires (key, value) rows;"
                        f" got {row!r}"
                    ) from None
                buckets[partitioner.partition_of(key)].append(row)
            self._shuffle_outputs[(shuffled.rdd_id, map_index)] = dict(buckets)
            write_bytes += estimate_bytes(rows)
        self._completed_shuffles.add(shuffled.rdd_id)
        profile = StageRuntimeProfile(
            name=stage.name,
            num_tasks=parent.num_partitions,
            shuffle_write_bytes=write_bytes,
            num_mappers=parent.num_partitions,
            num_reducers=shuffled.num_partitions,
        )
        self._record_shuffle_reads(profile)
        self.stage_profiles.append(profile)

    def shuffle_segments_for(self, shuffled: ShuffledRDD, reduce_index: int) -> list:
        """All map-side segments destined for one reduce partition.

        Mirrors a reducer touching ``M`` separate map output files
        (Section III-C2).
        """
        if shuffled.rdd_id not in self._completed_shuffles:
            raise SchedulerError(
                f"shuffle for {shuffled.name} (rdd {shuffled.rdd_id}) has not"
                " been materialized; run the map stage first"
            )
        segments: list = []
        parent = shuffled.parents[0]
        for map_index in range(parent.num_partitions):
            output = self._shuffle_outputs.get((shuffled.rdd_id, map_index), {})
            segments.extend(output.get(reduce_index, []))
        accum = self._stage_shuffle_reads.setdefault(
            shuffled.rdd_id,
            [0.0, parent.num_partitions, shuffled.num_partitions],
        )
        accum[0] += estimate_bytes(segments)
        return segments

    def _record_shuffle_reads(self, profile: StageRuntimeProfile) -> None:
        """Attach the finished stage's accumulated shuffle reads.

        Bytes sum over every shuffle the stage consumed; the request size
        is the byte-weighted ``(D/R)/M`` segment size of those shuffles,
        stored as an ``extras`` override so
        :meth:`StageRuntimeProfile.to_stage_spec` keeps the per-shuffle
        geometry even when a stage reads several shuffles.
        """
        reads = self._stage_shuffle_reads
        self._stage_shuffle_reads = {}
        total = sum(bytes_read for bytes_read, _, _ in reads.values())
        if total <= 0:
            return
        profile.shuffle_read_bytes = total
        profile.extras["shuffle_read_request_size"] = (
            sum(
                bytes_read * shuffle_read_request_size(bytes_read, mappers, reducers)
                for bytes_read, mappers, reducers in reads.values()
            )
            / total
        )
        if not profile.num_mappers:
            _, mappers, reducers = max(reads.values(), key=lambda v: v[0])
            profile.num_mappers = mappers
            profile.num_reducers = reducers

    # -- introspection ------------------------------------------------------------

    @property
    def cached_memory_bytes(self) -> float:
        """Bytes currently held by the memory cache."""
        return self.memory.used_bytes

    def shuffle_segment_count(self, shuffled: ShuffledRDD) -> int:
        """Number of non-empty (map, reduce) segments a shuffle produced."""
        count = 0
        for (rdd_id, _), buckets in self._shuffle_outputs.items():
            if rdd_id == shuffled.rdd_id:
                count += sum(1 for rows in buckets.values() if rows)
        return count
