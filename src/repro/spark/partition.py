"""Partitions and partitioners for the functional RDD engine."""

from __future__ import annotations

import sys
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import SchedulerError


@dataclass(frozen=True)
class Partition:
    """One materialized data partition."""

    index: int
    rows: tuple

    @property
    def num_rows(self) -> int:
        """Row count."""
        return len(self.rows)


def estimate_bytes(rows: Iterable) -> float:
    """Rough in-memory footprint of a row collection.

    Good enough for shuffle/persist accounting in the functional engine;
    paper-scale workloads use explicit byte sizes instead.
    """
    return float(sum(sys.getsizeof(row) for row in rows))


class HashPartitioner:
    """Spark's default partitioner: ``hash(key) % numPartitions``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise SchedulerError("partitioner needs a positive partition count")
        self.num_partitions = num_partitions

    def partition_of(self, key) -> int:
        """Target partition for a key."""
        return hash(key) % self.num_partitions

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.num_partitions == self.num_partitions
        )

    def __hash__(self) -> int:
        return hash(("hash", self.num_partitions))


class RangePartitioner:
    """Range partitioner over sorted split points (used by sortByKey)."""

    def __init__(self, boundaries: Sequence) -> None:
        self.boundaries = tuple(boundaries)
        self.num_partitions = len(self.boundaries) + 1

    def partition_of(self, key) -> int:
        """Index of the first range whose upper boundary exceeds the key."""
        # Linear scan: boundary lists are tiny (numPartitions - 1 entries).
        for index, boundary in enumerate(self.boundaries):
            if key <= boundary:
                return index
        return len(self.boundaries)

    @staticmethod
    def from_sample(keys: Sequence, num_partitions: int) -> "RangePartitioner":
        """Derive balanced boundaries from a sample of keys."""
        if num_partitions <= 0:
            raise SchedulerError("partitioner needs a positive partition count")
        if num_partitions == 1 or not keys:
            return RangePartitioner(())
        ordered = sorted(keys)
        boundaries = []
        for i in range(1, num_partitions):
            position = int(round(i * len(ordered) / num_partitions)) - 1
            position = min(max(position, 0), len(ordered) - 1)
            boundaries.append(ordered[position])
        # De-duplicate while preserving order to keep ranges disjoint.
        unique = []
        for boundary in boundaries:
            if not unique or boundary > unique[-1]:
                unique.append(boundary)
        return RangePartitioner(unique)
