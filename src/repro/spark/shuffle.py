"""The shuffle file model: why shuffle read issues tiny requests.

Section III-C2: with ``M`` map tasks, each mapper writes one local output
file indexed by all ``R`` reducer ids (sort-based shuffle).  Each reducer
then reads its segment out of *every* map file, so a reducer moving
``reducer_bytes`` of data issues ``M`` reads of ``reducer_bytes / M`` each.
For GATK4: 27 MB per reducer across M = 973 map files → ~30 KB per read,
which is where HDDs lose 32x to SSDs.

Shuffle *write*, in contrast, emits large sorted chunks (~365 MB in GATK4),
where HDDs do fine — the reason the MD stage is insensitive to the local
device even though it moves the same 334 GB.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import WorkloadError


def shuffle_read_request_size(total_shuffle_bytes: float, num_mappers: int, num_reducers: int) -> float:
    """Average size of one shuffle-read request: ``(D/R) / M``."""
    if total_shuffle_bytes <= 0:
        raise WorkloadError("shuffle size must be positive")
    if num_mappers <= 0 or num_reducers <= 0:
        raise WorkloadError("mapper and reducer counts must be positive")
    per_reducer = total_shuffle_bytes / num_reducers
    return per_reducer / num_mappers


def reducers_for_target_input(total_shuffle_bytes: float, target_bytes_per_reducer: float) -> int:
    """``R`` such that each reduce task reads ~``target_bytes_per_reducer``.

    This is how GATK4 tunes its reducer count (27 MB per reducer).
    """
    if total_shuffle_bytes <= 0 or target_bytes_per_reducer <= 0:
        raise WorkloadError("shuffle size and reducer target must be positive")
    return max(1, round(total_shuffle_bytes / target_bytes_per_reducer))


@dataclass(frozen=True)
class ShufflePlan:
    """Geometry of one shuffle: sizes and request sizes on both sides.

    Attributes
    ----------
    total_bytes:
        Bytes moved through the shuffle (Table IV's "Shuffle write" =
        "Shuffle read" size).
    num_mappers:
        ``M`` — map-side tasks (one output file each).
    num_reducers:
        ``R`` — reduce-side tasks (one segment per map file each).
    """

    total_bytes: float
    num_mappers: int
    num_reducers: int

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise WorkloadError("shuffle plan needs positive total bytes")
        if self.num_mappers <= 0 or self.num_reducers <= 0:
            raise WorkloadError("shuffle plan needs positive mapper/reducer counts")

    @property
    def bytes_per_mapper(self) -> float:
        """Map-side output per task — also the sorted-chunk write size."""
        return self.total_bytes / self.num_mappers

    @property
    def bytes_per_reducer(self) -> float:
        """Reduce-side input per task."""
        return self.total_bytes / self.num_reducers

    @property
    def write_request_size(self) -> float:
        """Shuffle-write request size: one sorted chunk (large)."""
        return self.bytes_per_mapper

    @property
    def read_request_size(self) -> float:
        """Shuffle-read request size: one segment of one map file (small)."""
        return shuffle_read_request_size(
            self.total_bytes, self.num_mappers, self.num_reducers
        )

    @property
    def total_segments(self) -> int:
        """``M * R`` — the number of distinct segments reducers fetch."""
        return self.num_mappers * self.num_reducers

    def reads_per_reducer(self) -> int:
        """How many separate files each reducer touches (= ``M``)."""
        return self.num_mappers

    def avgrq_sz_sectors(self) -> float:
        """Read request size in 512-byte sectors, as iostat reports it.

        The paper measures ~60 sectors during GATK4's BR/SF stages.
        """
        return self.read_request_size / 512.0

    def segments_matrix_shape(self) -> tuple[int, int]:
        """(M, R): the logical matrix of shuffle segments."""
        return (self.num_mappers, self.num_reducers)

    @staticmethod
    def from_reducer_target(
        total_bytes: float, num_mappers: int, target_bytes_per_reducer: float
    ) -> "ShufflePlan":
        """Build a plan the way GATK4 does: fix the per-reducer input size."""
        return ShufflePlan(
            total_bytes=total_bytes,
            num_mappers=num_mappers,
            num_reducers=reducers_for_target_input(
                total_bytes, target_bytes_per_reducer
            ),
        )


def mappers_for_hdfs_input(input_bytes: float, block_size: float) -> int:
    """``M`` for a stage reading an HDFS file: one task per block."""
    if input_bytes <= 0 or block_size <= 0:
        raise WorkloadError("input and block sizes must be positive")
    return int(math.ceil(input_bytes / block_size))
