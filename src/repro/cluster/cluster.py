"""Cluster assembly and the paper's named configurations.

Builds the paper's testbeds:

- Table I node (2x Xeon E5-2699v3 = 36 cores, 128 GB RAM, 10 Gb/s);
- Table III's four hybrid HDD/SSD placements for HDFS vs. Spark-local;
- the four-node motivation cluster (Section III: 1 master + 3 slaves) and
  the eleven-node evaluation cluster (Section V: 1 master + 10 slaves).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import NetworkModel
from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.storage.device import StorageDevice, make_hdd, make_ssd
from repro.storage.hdfs import Hdfs
from repro.units import GB, MB, TB

#: Table I values.
PAPER_CORES_PER_NODE = 36
PAPER_RAM_BYTES = 128 * GB


@dataclass(frozen=True)
class HybridDiskConfig:
    """One column of Table III: device kinds for HDFS and Spark-local.

    ``"ssd"`` / ``"hdd"`` per role.  The shorthand names follow the paper's
    prose: config 1 = "2SSD", config 4 = "2HDD".
    """

    config_id: int
    hdfs_kind: str
    local_kind: str

    @property
    def label(self) -> str:
        """Readable label, e.g. ``"HDFS=SSD, Local=HDD"``."""
        return f"HDFS={self.hdfs_kind.upper()}, Local={self.local_kind.upper()}"

    @property
    def shorthand(self) -> str:
        """``"2SSD"``, ``"2HDD"``, or the mixed forms."""
        if self.hdfs_kind == self.local_kind:
            return f"2{self.hdfs_kind.upper()}"
        return f"{self.hdfs_kind.upper()}+{self.local_kind.upper()}local"


#: Table III, columns 1-4.
HYBRID_CONFIGS: tuple[HybridDiskConfig, ...] = (
    HybridDiskConfig(1, hdfs_kind="ssd", local_kind="ssd"),
    HybridDiskConfig(2, hdfs_kind="hdd", local_kind="ssd"),
    HybridDiskConfig(3, hdfs_kind="ssd", local_kind="hdd"),
    HybridDiskConfig(4, hdfs_kind="hdd", local_kind="hdd"),
)


class Cluster:
    """A master plus ``N`` slave nodes, an HDFS namespace, and a network."""

    def __init__(
        self,
        slaves: list[Node],
        network: NetworkModel | None = None,
        hdfs_block_size: float = 128 * MB,
        hdfs_replication: int = 2,
    ) -> None:
        if not slaves:
            raise ConfigurationError("a cluster needs at least one slave node")
        names = [node.name for node in slaves]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        self.slaves = list(slaves)
        self.network = network or NetworkModel()
        replication = min(hdfs_replication, len(slaves))
        self.hdfs = Hdfs(
            devices=[node.hdfs_device for node in slaves],
            block_size=hdfs_block_size,
            replication=replication,
        )

    @property
    def num_slaves(self) -> int:
        """``N`` in the model: slave (worker) node count."""
        return len(self.slaves)

    @property
    def total_cores(self) -> int:
        """Sum of slave cores."""
        return sum(node.num_cores for node in self.slaves)

    @property
    def cores_per_node(self) -> int:
        """Core count of the (homogeneous) slaves.

        Raises when slaves are heterogeneous — the model's ``P`` assumes a
        uniform worker pool, as do the paper's clusters.
        """
        counts = {node.num_cores for node in self.slaves}
        if len(counts) != 1:
            raise ConfigurationError(f"heterogeneous slave core counts: {sorted(counts)}")
        return counts.pop()

    def node(self, name: str) -> Node:
        """Look up a slave by name."""
        for candidate in self.slaves:
            if candidate.name == name:
                return candidate
        raise ConfigurationError(f"no such node: {name}")

    def local_devices(self) -> list[StorageDevice]:
        """Each slave's Spark-local device."""
        return [node.local_device for node in self.slaves]

    def hdfs_devices(self) -> list[StorageDevice]:
        """Each slave's HDFS device."""
        return [node.hdfs_device for node in self.slaves]

    def __repr__(self) -> str:
        sample = self.slaves[0]
        return (
            f"Cluster({self.num_slaves} slaves x {sample.num_cores} cores,"
            f" hdfs={sample.hdfs_device.kind}, local={sample.local_device.kind})"
        )


def _make_device(kind: str, name: str, capacity_bytes: float | None) -> StorageDevice:
    if kind == "hdd":
        return make_hdd(name=name, capacity_bytes=capacity_bytes or 4 * TB)
    if kind == "ssd":
        # The physical testbed SSD is 240 GB; give simulated SSDs enough
        # room for paper-scale shuffles unless the caller limits them.
        return make_ssd(name=name, capacity_bytes=capacity_bytes or 4 * TB)
    raise ConfigurationError(f"unknown device kind: {kind!r}")


def make_paper_cluster(
    num_slaves: int,
    config: HybridDiskConfig,
    cores_per_node: int = PAPER_CORES_PER_NODE,
    ram_bytes: float = PAPER_RAM_BYTES,
    device_capacity: float | None = None,
) -> Cluster:
    """Build a Table-I-style cluster under one Table III disk placement.

    ``num_slaves`` counts workers only (the paper's "four-node cluster" is
    ``num_slaves=3`` plus a master; the Section V cluster is
    ``num_slaves=10``).
    """
    if num_slaves <= 0:
        raise ConfigurationError("need at least one slave")
    slaves = []
    for index in range(num_slaves):
        hdfs_dev = _make_device(
            config.hdfs_kind, f"slave{index}-hdfs-{config.hdfs_kind}", device_capacity
        )
        local_dev = _make_device(
            config.local_kind, f"slave{index}-local-{config.local_kind}", device_capacity
        )
        slaves.append(
            Node(
                name=f"slave-{index}",
                num_cores=cores_per_node,
                ram_bytes=ram_bytes,
                hdfs_device=hdfs_dev,
                local_device=local_dev,
            )
        )
    return Cluster(slaves=slaves)
