"""Cluster network model.

The paper's clusters use a 10 Gb/s network and note (after [5]) that it is
usually not the Spark bottleneck; shuffle read moves roughly
``(N - 1) / N`` of its bytes across the network, the rest being local.

The model serves two consumers:

- offline assumption checks (``transfer_floor_seconds`` /
  ``is_bottleneck``): assert that the disk floor dominates, flagging
  configurations where it would not; and
- the simulator: passing a :class:`NetworkModel` to
  :class:`~repro.simulator.engine.SimulationEngine` gives every node a
  NIC :class:`~repro.resources.LinkResource` at ``link_bandwidth`` and
  splits each shuffle read into local and remote streams in the
  ``remote_fraction`` proportion.  With no model passed the wire is
  treated as infinite — the paper's assumption, and the default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: 10 Gb/s in bytes per second.
TEN_GBPS = 10e9 / 8.0


@dataclass(frozen=True)
class NetworkModel:
    """Full-bisection network with a per-node link bandwidth.

    Attributes
    ----------
    link_bandwidth:
        Per-node link speed in bytes/s (default 10 Gb/s, Table I).
    """

    link_bandwidth: float = TEN_GBPS

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise ConfigurationError("network link bandwidth must be positive")

    @classmethod
    def from_gbps(cls, gbps: float) -> NetworkModel:
        """Build from a link speed in gigabits per second."""
        return cls(link_bandwidth=gbps * 1e9 / 8.0)

    def remote_fraction(self, num_slaves: int) -> float:
        """Fraction of shuffle bytes that cross the network.

        With uniformly distributed keys each reducer pulls ``1/N`` of its
        data from its own node, so ``(N-1)/N`` crosses the wire.
        """
        if num_slaves <= 0:
            raise ConfigurationError("slave count must be positive")
        return (num_slaves - 1) / num_slaves

    def transfer_floor_seconds(self, total_bytes: float, num_slaves: int) -> float:
        """Lower bound on moving ``total_bytes`` of shuffle over the network.

        Every node sends/receives its ``1/N`` share of the remote bytes in
        parallel over its own link.
        """
        if total_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        remote_bytes = total_bytes * self.remote_fraction(num_slaves)
        per_node = remote_bytes / num_slaves
        return per_node / self.link_bandwidth

    def is_bottleneck(
        self, total_bytes: float, num_slaves: int, disk_floor_seconds: float
    ) -> bool:
        """True when the network floor exceeds the disk floor.

        For every configuration the paper studies this is False — the
        justification for modeling I/O only (Section III-B1).
        """
        return self.transfer_floor_seconds(total_bytes, num_slaves) > disk_floor_seconds
