"""Cluster substrate: nodes, devices, and the network.

Reproduces the paper's testbeds: the four-node motivation cluster
(Section III), the eleven-node evaluation cluster (Section V), and the
Google Cloud worker pools of Section VI — all as parametric models.
"""

from repro.cluster.node import Node
from repro.cluster.network import NetworkModel
from repro.cluster.cluster import (
    Cluster,
    HybridDiskConfig,
    HYBRID_CONFIGS,
    make_paper_cluster,
)

__all__ = [
    "Node",
    "NetworkModel",
    "Cluster",
    "HybridDiskConfig",
    "HYBRID_CONFIGS",
    "make_paper_cluster",
]
