"""A slave/worker node: cores, memory, and its two storage roles.

Each node carries (Table I) a CPU core count and RAM size, plus the two
directories whose device placement the paper varies (Table III):

- ``hdfs_device`` — where the HDFS datanode stores blocks;
- ``local_device`` — where ``spark.local.dir`` points.

The two roles may share one physical device or use separate ones; both
arrangements appear in the paper's configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.storage.device import StorageDevice
from repro.storage.local import SparkLocalDir
from repro.units import GB


@dataclass
class Node:
    """One cluster node.

    Attributes
    ----------
    name:
        Node label, e.g. ``"slave-3"``.
    num_cores:
        Physical cores available to the Spark worker (36 in Table I).
    ram_bytes:
        Total RAM (128 GB in Table I).
    hdfs_device:
        Device backing the HDFS datanode directory.
    local_device:
        Device backing ``spark.local.dir``.
    """

    name: str
    num_cores: int
    ram_bytes: float
    hdfs_device: StorageDevice
    local_device: StorageDevice
    local_dir: SparkLocalDir = field(init=False)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError(f"node {self.name}: core count must be positive")
        if self.ram_bytes <= 0:
            raise ConfigurationError(f"node {self.name}: RAM must be positive")
        self.local_dir = SparkLocalDir(self.local_device)

    @property
    def shares_device(self) -> bool:
        """True when HDFS and Spark-local live on the same physical device."""
        return self.hdfs_device is self.local_device

    def device_for(self, role: str) -> StorageDevice:
        """Device backing ``"hdfs"`` or ``"local"``."""
        if role == "hdfs":
            return self.hdfs_device
        if role == "local":
            return self.local_device
        raise ConfigurationError(f"unknown storage role: {role!r}")

    def __repr__(self) -> str:
        return (
            f"Node({self.name}, {self.num_cores} cores,"
            f" {self.ram_bytes / GB:.0f}GB RAM,"
            f" hdfs={self.hdfs_device.kind}, local={self.local_device.kind})"
        )
