"""Metamorphic invariants the simulator/model pipeline must satisfy.

Doppio's credibility rests on the simulator and the Equation-1 model
agreeing under *every* configuration, not just the figures' defaults.
These checks encode properties that must hold for any workload spec, any
``(N, P)`` shape, and any fault plan — the property suite in
``tests/properties/`` sweeps randomized grids against them:

- **conservation** — a stage moves exactly the bytes its spec declares,
  faults or not: faults reshape the schedule, never the data.
- **dominance** — a stage's simulated makespan is bounded below by the
  Eq.-1 physical floor ``max(t_scale, t_read, t_write)`` evaluated at
  each term's most optimistic value (uncapped bandwidth at the channel's
  own request size, zero contention, zero pipeline-fill).  Faults only
  remove capacity, so the clean floor bounds faulted runs too.
- **monotonicity** — more nodes or faster disks never increase makespan
  (checked along axes where it is a theorem for the engine's round-robin
  placement, e.g. doubling N splits every per-node queue).
- **fault dominance** — injecting faults never *speeds up* a run.
- **mitigation dominance** — under one fault plan, arming resilience
  mitigations never makes the run slower than the unmitigated run plus
  the mitigation costs it recorded (duplicated attempts, blacklisted
  capacity, backoff and stall-detection delay), and never faster than
  the clean run.
- **mix conservation / interference dominance** — in a multi-job mix,
  every job still moves exactly its (volume-scaled) spec's bytes, and no
  job runs faster with neighbors than alone.  The dominance check uses
  :data:`INTERFERENCE_REL_TOL` rather than float epsilon: co-location
  shifts event timestamps by ~1e-13, which can flip an event across the
  engine's 1e-9 batching window and let HDD water-filling amplify the
  reordering to ~0.3% of a stage makespan (see docs/MULTITENANT.md).

Checkers return :class:`Violation` lists (empty = invariant holds) so a
property test can assert emptiness and print every breach at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.cluster import Cluster
from repro.resilience import ResiliencePolicy, merge_summaries
from repro.schedule.mix import MixJob, MixMeasurement, canonical_jobs
from repro.simulator.run import ApplicationMeasurement, StageMeasurement
from repro.workloads.base import StageSpec, WorkloadSpec, scale_workload_volume

#: Default relative tolerance: invariants are exact in real arithmetic,
#: the slack only absorbs float summation-order drift.
DEFAULT_REL_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which property, where, and the numbers."""

    invariant: str
    context: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.context}: {self.detail}"


# -- conservation -----------------------------------------------------------


def expected_stage_bytes(spec: StageSpec) -> tuple[float, float]:
    """(read, write) bytes one stage must move, straight from its spec."""
    read = 0.0
    write = 0.0
    for group in spec.groups:
        for channel in group.channels:
            total = group.count * channel.bytes_per_task * spec.repeat
            if channel.is_write:
                write += total
            else:
                read += total
    return read, write


def check_conservation(
    workload: WorkloadSpec,
    measurement: ApplicationMeasurement,
    rel_tol: float = DEFAULT_REL_TOL,
) -> list[Violation]:
    """Measured per-stage byte totals match the spec, per direction."""
    violations: list[Violation] = []
    for spec, stage in zip(workload.stages, measurement.stages):
        expected_read, expected_write = expected_stage_bytes(spec)
        for direction, expected, actual in (
            ("read", expected_read, stage.read_bytes),
            ("write", expected_write, stage.write_bytes),
        ):
            if not _close(actual, expected, rel_tol):
                violations.append(Violation(
                    "conservation",
                    f"{workload.name}/{stage.name}",
                    f"{direction} bytes {actual!r} != spec total {expected!r}",
                ))
    return violations


# -- Eq.-1 dominance --------------------------------------------------------


def stage_floor_seconds(
    spec: StageSpec, cluster: Cluster, cores_per_node: int
) -> float:
    """The Eq.-1 lower bound on one stage's makespan.

    Mirrors ``max(t_scale, t_read, t_write)`` with every term at its
    physical optimum, so no schedule — faulted or not — can beat it:

    - per device direction, aggregate bytes over the cluster's summed
      bandwidth at the most favourable active request size (bandwidth
      tables are monotone in request size, so this bounds every in-flight
      profile);
    - the scale term: total task core-seconds (compute + GC + each
      channel at ``min(T, BW)``) spread perfectly over ``N * P`` cores.

    Nodes are homogeneous (the library's clusters are built that way), so
    the first slave's devices stand in for all ``N``.
    """
    nodes = cluster.num_slaves
    node = cluster.slaves[0]
    # I/O floors, per physical device direction.
    io_totals: dict[tuple[int, bool], float] = {}
    io_best_bw: dict[tuple[int, bool], float] = {}
    task_seconds = 0.0
    for group in spec.groups:
        per_task = group.compute_seconds + group.gc_coeff * cores_per_node
        for channel in group.channels:
            device = node.device_for(channel.role)
            bandwidth = device.bandwidth(channel.request_size, channel.is_write)
            key = (id(device), channel.is_write)
            io_totals[key] = (
                io_totals.get(key, 0.0)
                + group.count * channel.bytes_per_task * spec.repeat
            )
            io_best_bw[key] = max(io_best_bw.get(key, 0.0), bandwidth)
            if bandwidth > 0.0:
                rate = bandwidth
                if channel.per_core_throughput is not None:
                    rate = min(rate, channel.per_core_throughput)
                per_task += channel.bytes_per_task / rate
        task_seconds += group.count * per_task * spec.repeat
    floor = task_seconds / (nodes * cores_per_node)
    for key, total in io_totals.items():
        bandwidth = io_best_bw[key]
        if total > 0.0 and bandwidth > 0.0:
            floor = max(floor, total / (nodes * bandwidth))
    return floor


def check_dominance(
    workload: WorkloadSpec,
    measurement: ApplicationMeasurement,
    cluster: Cluster,
    cores_per_node: int,
    rel_tol: float = DEFAULT_REL_TOL,
) -> list[Violation]:
    """Every measured stage makespan is at or above its Eq.-1 floor."""
    violations: list[Violation] = []
    for spec, stage in zip(workload.stages, measurement.stages):
        floor = stage_floor_seconds(spec, cluster, cores_per_node)
        if stage.makespan < floor * (1.0 - rel_tol):
            violations.append(Violation(
                "dominance",
                f"{workload.name}/{stage.name}",
                f"makespan {stage.makespan!r} beats the Eq.-1 floor {floor!r}",
            ))
    return violations


# -- monotonicity -----------------------------------------------------------


def check_monotonic(
    points: Sequence[tuple[float, float]],
    invariant: str,
    context: str = "",
    rel_tol: float = DEFAULT_REL_TOL,
) -> list[Violation]:
    """Makespans must not increase along an improving axis.

    ``points`` are ``(axis_value, makespan)`` pairs; for every pair with
    a larger axis value (more nodes, faster disks, lighter faults) the
    makespan must be no larger, within tolerance.
    """
    violations: list[Violation] = []
    ordered = sorted(points)
    for (axis_a, makespan_a), (axis_b, makespan_b) in zip(ordered, ordered[1:]):
        if axis_b > axis_a and makespan_b > makespan_a * (1.0 + rel_tol):
            violations.append(Violation(
                invariant,
                context,
                f"makespan rose from {makespan_a!r} (at {axis_a}) to"
                f" {makespan_b!r} (at {axis_b})",
            ))
    return violations


def check_fault_dominance(
    clean: ApplicationMeasurement,
    faulted: ApplicationMeasurement,
    rel_tol: float = DEFAULT_REL_TOL,
) -> list[Violation]:
    """Faults never make a stage faster than its clean run."""
    violations: list[Violation] = []
    for clean_stage, faulted_stage in zip(clean.stages, faulted.stages):
        if faulted_stage.makespan < clean_stage.makespan * (1.0 - rel_tol):
            violations.append(Violation(
                "fault-dominance",
                f"{clean.name}/{clean_stage.name}",
                f"faulted makespan {faulted_stage.makespan!r} beats the"
                f" clean {clean_stage.makespan!r}",
            ))
    return violations


#: Multiplicative tolerance for the mitigation bounds.  Mitigations are
#: heuristics layered on a greedy scheduler, so unlike the exact
#: invariants above they admit bounded Graham-style list-scheduling
#: anomalies; 5% absorbs those while still catching a broken mechanism
#: (which overshoots by whole task durations, not percents).
MITIGATION_REL_TOL = 0.05


def check_mitigation_dominance(
    clean: ApplicationMeasurement,
    unmitigated: ApplicationMeasurement,
    mitigated: ApplicationMeasurement,
    policy: ResiliencePolicy,
    rel_tol: float = MITIGATION_REL_TOL,
) -> list[Violation]:
    """Mitigations bounded on both sides: no free lunch, no net harm.

    All three measurements share one spec and shape; ``unmitigated`` and
    ``mitigated`` share one fault plan.  Two application-level bounds:

    - **Lower** — mitigation cannot beat the clean run: faults only
      remove capacity and mitigations only reshuffle attempts onto what
      remains, so ``mitigated >= clean * (1 - rel_tol)``.
    - **Upper** — mitigation's cost is accounted for.  Relative to the
      unmitigated faulted run it may add (a) duplicated work, bounded by
      the attempt-inflation factor ``attempts / tasks``; (b) capacity
      surrendered to the blacklist, bounded by ``N / (N - excluded)``;
      (c) serial detection-and-wait time, bounded by the recorded
      backoff plus one stall timeout per failure-driven resubmission.
      Anything beyond ``unmitigated * inflation * degradation *
      (1 + rel_tol) + detection`` means a mechanism is hurting the run
      it was meant to save.
    """
    summary = merge_summaries(stage.resilience for stage in mitigated.stages)
    context = mitigated.name
    violations: list[Violation] = []

    floor = clean.total_seconds * (1.0 - rel_tol)
    if mitigated.total_seconds < floor:
        violations.append(Violation(
            "mitigation-dominance", context,
            f"mitigated makespan {mitigated.total_seconds!r} beats the"
            f" clean run {clean.total_seconds!r}",
        ))

    tasks = sum(stage.num_tasks for stage in mitigated.stages)
    inflation = max(1.0, summary.attempts / tasks) if tasks else 1.0
    nodes = mitigated.stages[0].nodes if mitigated.stages else 1
    remaining = nodes - len(summary.blacklisted)
    degradation = nodes / remaining if remaining > 0 else float("inf")
    detection = summary.backoff_seconds + (
        (summary.task_retries + summary.stage_reattempts)
        * policy.retry.stall_timeout_seconds
    )
    ceiling = (
        unmitigated.total_seconds * inflation * degradation * (1.0 + rel_tol)
        + detection
    )
    if mitigated.total_seconds > ceiling:
        violations.append(Violation(
            "mitigation-dominance", context,
            f"mitigated makespan {mitigated.total_seconds!r} exceeds the"
            f" accounted bound {ceiling!r} (unmitigated"
            f" {unmitigated.total_seconds!r}, inflation {inflation:.3f},"
            f" degradation {degradation:.3f}, detection {detection!r})",
        ))
    return violations


# -- multi-tenant mixes -----------------------------------------------------

#: Relative tolerance for cross-job interference comparisons.  Unlike
#: the exact invariants, mixed-vs-solo comparisons run *different event
#: sequences*: co-location perturbs timestamps by ~1e-13, which can move
#: an event in or out of the engine's 1e-9 batching window, and the HDD
#: model's water-filling amplifies such a reorder to ~0.3% of a stage
#: makespan (measured on the paper's Terasort at 2HDD).  2% absorbs that
#: chaos with margin while still catching any real anti-interference bug,
#: which would undershoot by whole task durations.
INTERFERENCE_REL_TOL = 0.02


def check_mix_conservation(
    jobs: Sequence[MixJob],
    mix: MixMeasurement,
    rel_tol: float = DEFAULT_REL_TOL,
) -> list[Violation]:
    """Every job in a mix moves exactly its (scaled) spec's bytes.

    Contention reshapes schedules, never data: per job and per stage, the
    measured byte totals must match the volume-scaled spec — regardless
    of co-tenants, arrival times, or the scheduling policy.
    """
    violations: list[Violation] = []
    for (name, job), timeline in zip(canonical_jobs(jobs), mix.jobs):
        scaled = scale_workload_volume(job.spec, job.volume_scale)
        violations.extend(
            check_conservation(scaled, timeline.measurement, rel_tol)
        )
    return violations


def check_interference_dominance(
    mix: MixMeasurement,
    solos: dict[str, ApplicationMeasurement],
    rel_tol: float = INTERFERENCE_REL_TOL,
) -> list[Violation]:
    """No job runs faster with neighbors than alone.

    ``solos`` maps each mix job name to that job's solo measurement (same
    scaled spec, shape, and run index, alone on the same cluster).  Per
    job: mixed runtime >= solo runtime within :data:`INTERFERENCE_REL_TOL`,
    turnaround >= mixed runtime (queueing only adds), and the mix
    makespan covers every job's finish.
    """
    violations: list[Violation] = []
    for timeline in mix.jobs:
        solo = solos[timeline.name]
        mixed = timeline.measurement.total_seconds
        if mixed < solo.total_seconds * (1.0 - rel_tol):
            violations.append(Violation(
                "interference-dominance",
                timeline.name,
                f"mixed runtime {mixed!r} beats the solo run"
                f" {solo.total_seconds!r}",
            ))
        if timeline.turnaround < mixed * (1.0 - DEFAULT_REL_TOL):
            violations.append(Violation(
                "interference-dominance",
                timeline.name,
                f"turnaround {timeline.turnaround!r} below the job's own"
                f" runtime {mixed!r}",
            ))
        if timeline.finish > mix.makespan * (1.0 + DEFAULT_REL_TOL):
            violations.append(Violation(
                "interference-dominance",
                timeline.name,
                f"finish {timeline.finish!r} exceeds the mix makespan"
                f" {mix.makespan!r}",
            ))
    return violations


def check_measurements_identical(
    first: ApplicationMeasurement,
    second: ApplicationMeasurement,
    context: str = "",
) -> list[Violation]:
    """Bit-identity of two measurements (determinism / cache replay)."""
    violations: list[Violation] = []
    if len(first.stages) != len(second.stages):
        return [Violation(
            "bit-identity", context,
            f"{len(first.stages)} stages vs {len(second.stages)}",
        )]
    for stage_a, stage_b in zip(first.stages, second.stages):
        for label, value_a, value_b in (
            ("makespan", stage_a.makespan, stage_b.makespan),
            ("read_bytes", stage_a.read_bytes, stage_b.read_bytes),
            ("write_bytes", stage_a.write_bytes, stage_b.write_bytes),
            ("first_finish", stage_a.first_finish_seconds,
             stage_b.first_finish_seconds),
            ("core_utilization", stage_a.core_utilization,
             stage_b.core_utilization),
        ):
            if value_a != value_b:
                violations.append(Violation(
                    "bit-identity",
                    f"{context}/{stage_a.name}" if context else stage_a.name,
                    f"{label} {value_a!r} != {value_b!r}",
                ))
    return violations


def _close(actual: float, expected: float, rel_tol: float) -> bool:
    if actual == expected:
        return True
    scale = max(abs(actual), abs(expected))
    return abs(actual - expected) <= rel_tol * scale


__all__ = [
    "DEFAULT_REL_TOL",
    "INTERFERENCE_REL_TOL",
    "MITIGATION_REL_TOL",
    "StageMeasurement",
    "Violation",
    "check_conservation",
    "check_dominance",
    "check_fault_dominance",
    "check_interference_dominance",
    "check_measurements_identical",
    "check_mitigation_dominance",
    "check_mix_conservation",
    "check_monotonic",
    "expected_stage_bytes",
    "stage_floor_seconds",
]
