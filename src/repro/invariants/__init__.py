"""Metamorphic invariant checkers for simulated runs.

See :mod:`repro.invariants.checks` for the catalogue (conservation,
Eq.-1 dominance, monotonicity, fault dominance, mitigation dominance,
mix conservation, interference dominance, bit-identity) and
``docs/TESTING.md`` for how the property suite sweeps them.
"""

from repro.invariants.checks import (
    DEFAULT_REL_TOL,
    INTERFERENCE_REL_TOL,
    MITIGATION_REL_TOL,
    Violation,
    check_conservation,
    check_dominance,
    check_fault_dominance,
    check_interference_dominance,
    check_measurements_identical,
    check_mitigation_dominance,
    check_mix_conservation,
    check_monotonic,
    expected_stage_bytes,
    stage_floor_seconds,
)

__all__ = [
    "DEFAULT_REL_TOL",
    "INTERFERENCE_REL_TOL",
    "MITIGATION_REL_TOL",
    "Violation",
    "check_conservation",
    "check_dominance",
    "check_fault_dominance",
    "check_interference_dominance",
    "check_measurements_identical",
    "check_mitigation_dominance",
    "check_mix_conservation",
    "check_monotonic",
    "expected_stage_bytes",
    "stage_floor_seconds",
]
