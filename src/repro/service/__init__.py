"""Optimizer-as-a-service: the concurrent what-if query engine.

``repro.service`` turns the library's one-shot entry points
(:class:`~repro.pipeline.experiment.Experiment`,
:class:`~repro.cloud.optimizer.CostOptimizer`) into a long-running
query engine with a thin HTTP/JSON front (``python -m repro serve``).
The layers, bottom up:

- :mod:`repro.service.query` — the query schema: validation, canonical
  form, content fingerprints.
- :mod:`repro.service.batcher` — the time/size-bounded micro-batcher
  that turns concurrent model-only queries into one vectorized kernel
  call.
- :mod:`repro.service.engine` — the three-tier read path (LRU →
  persistent :class:`~repro.pipeline.cache.ResultCache` → coalesced,
  batched, admission-bounded compute).
- :mod:`repro.service.http` — the stdlib ``asyncio.start_server``
  front: ``POST /query``, ``GET /stats``, ``GET /healthz``.
- :mod:`repro.service.loadgen` — the load generator and naive baseline
  backing the ``service`` benchmark section and the CI smoke test.

Semantics, limits, and the exit-code/HTTP-status mapping are documented
in ``docs/SERVICE.md``.
"""

from repro.service.batcher import MicroBatcher
from repro.service.engine import QueryEngine, config_dict
from repro.service.http import QueryServer, serve
from repro.service.query import (
    DEFAULT_OPTIMIZE_VCPU_GRID,
    QUERY_KINDS,
    Query,
    parse_query,
)

__all__ = [
    "DEFAULT_OPTIMIZE_VCPU_GRID",
    "MicroBatcher",
    "QUERY_KINDS",
    "Query",
    "QueryEngine",
    "QueryServer",
    "config_dict",
    "parse_query",
    "serve",
]
