"""Time/size-bounded micro-batcher for model-only queries.

The array kernel's throughput comes from batch width: scoring one
candidate costs almost as much as scoring thirty-two (backend dispatch,
per-unique-disk bandwidth lookups), so the serving hot path must not
translate "one HTTP request" into "one kernel call".  The batcher
accumulates pending predict queries and flushes them as one
:class:`~repro.model.arrays.CandidateBatch` when either bound trips:

- **size** — ``max_batch`` pending entries flush immediately (a full
  batch gains nothing by waiting);
- **time** — the first entry arms a ``max_delay`` timer, so a lone
  query is answered within one delay window instead of waiting for
  company that may never come.

The flush callback runs on the event loop (the kernel scores tens of
microseconds per batch at service sizes — far below the delay bound),
and the batcher never reorders entries: flushes preserve arrival order,
which keeps result attribution positional and deterministic.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable, Sequence
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Accumulate entries; flush by size or by deadline, whichever first."""

    def __init__(
        self,
        flush: Callable[[Sequence[Any]], None],
        max_batch: int = 32,
        max_delay: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be at least 1, got {max_batch}"
            )
        if max_delay < 0:
            raise ConfigurationError(
                f"max_delay must be >= 0, got {max_delay}"
            )
        self._flush_fn = flush
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._pending: list[Any] = []
        self._timer: asyncio.TimerHandle | None = None
        # Observability: the coalescing story the bench section reports.
        self.batches_flushed = 0
        self.entries_flushed = 0
        self.max_batch_seen = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, entry: Any) -> None:
        """Queue one entry; may flush synchronously on the size bound."""
        self._pending.append(entry)
        if len(self._pending) >= self.max_batch:
            self.flush()
        elif self._timer is None:
            self._timer = asyncio.get_running_loop().call_later(
                self.max_delay, self.flush
            )

    def flush(self) -> None:
        """Flush whatever is pending now (idempotent when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self.batches_flushed += 1
        self.entries_flushed += len(pending)
        self.max_batch_seen = max(self.max_batch_seen, len(pending))
        self._flush_fn(pending)

    def close(self) -> None:
        """Cancel the timer and flush the remainder."""
        self.flush()

    def stats(self) -> dict:
        """Counters for ``/stats`` and the bench section."""
        return {
            "flushed": self.batches_flushed,
            "entries": self.entries_flushed,
            "max_size": self.max_batch_seen,
            "pending": len(self._pending),
            "max_batch": self.max_batch,
            "max_delay_seconds": self.max_delay,
        }
