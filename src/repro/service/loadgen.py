"""Load generator: the service benchmark's traffic and its baseline.

Builds a deterministic what-if query mix (``distinct`` predict
configurations, each repeated ``duplicates`` times, interleaved so
repeats land while the original is often still in flight), fires it at
an engine — in-process or over HTTP — under bounded concurrency, and
reports throughput, latency percentiles, and the engine's coalescing
counters.

The **naive baseline** answers the same mix the way a one-query-one-
evaluation server would: a fresh scalar
:meth:`~repro.cloud.optimizer.CostOptimizer.evaluate` per query, no
LRU, no coalescing, no batching.  The service's ≥5x throughput claim in
``repro bench`` is measured against exactly this baseline over the
identical query list, and the results are asserted bit-identical.
"""

from __future__ import annotations

import asyncio
import json
import time
from urllib.parse import urlsplit

from repro.errors import ServiceError
from repro.service.query import parse_query

__all__ = [
    "build_queries",
    "naive_baseline",
    "percentile",
    "run_against_engine",
    "run_against_url",
    "summarize",
]

#: The vcpu sizes the generated mix cycles through.
_VCPU_CYCLE = (4, 8, 16, 32)
_DISK_CYCLE = ("pd-standard", "pd-ssd")


#: Optimize-query grid variants the mix cycles through.
_GRID_CYCLE = ((4, 8, 16, 32), (8, 16, 32), (4, 16, 32), (4, 8, 32))


def build_queries(
    workload: str,
    distinct: int = 40,
    duplicates: int = 5,
    num_workers: int = 10,
    hdfs_gb: float = 512.0,
    local_gb: float = 1024.0,
    optimize_distinct: int = 0,
    optimize_duplicates: int | None = None,
) -> list[dict]:
    """A deterministic interleaved what-if query mix.

    ``distinct`` unique predict configurations are laid out round-robin
    ``duplicates`` times — ``a b c ... a b c ...`` — so every duplicate
    of a query arrives separated from its twin by the full distinct set.
    Under concurrency that exercises both the single-flight table (twins
    in flight together) and the LRU (twins arriving after completion).

    ``optimize_distinct`` > 0 weaves repeated ``optimize`` queries (grid
    searches — the expensive, hot, dashboard-style questions) evenly
    through the predict stream, each unique one appearing
    ``optimize_duplicates`` times (default: ``duplicates``).
    """
    uniques = []
    for index in range(distinct):
        uniques.append(
            {
                "kind": "predict",
                "workload": workload,
                "vcpus": _VCPU_CYCLE[index % len(_VCPU_CYCLE)],
                "hdfs_kind": _DISK_CYCLE[index % len(_DISK_CYCLE)],
                "hdfs_gb": hdfs_gb + 16.0 * (index // len(_VCPU_CYCLE)),
                "local_kind": _DISK_CYCLE[(index + 1) % len(_DISK_CYCLE)],
                "local_gb": local_gb + 16.0 * (index // len(_VCPU_CYCLE)),
                "num_workers": num_workers,
            }
        )
    mix = [query for _ in range(duplicates) for query in uniques]
    if optimize_distinct <= 0:
        return mix
    opt_uniques = [
        {
            "kind": "optimize",
            "workload": workload,
            "vcpu_grid": list(_GRID_CYCLE[index % len(_GRID_CYCLE)]),
            "prune": bool(index % 2),
            "num_workers": num_workers,
        }
        for index in range(optimize_distinct)
    ]
    repeats = optimize_duplicates if optimize_duplicates is not None else duplicates
    opt_mix = [query for _ in range(repeats) for query in opt_uniques]
    combined: list[dict] = []
    stride = max(1, len(mix) // max(1, len(opt_mix)))
    cursor = 0
    for index, query in enumerate(mix):
        combined.append(query)
        if index % stride == stride - 1 and cursor < len(opt_mix):
            combined.append(opt_mix[cursor])
            cursor += 1
    combined.extend(opt_mix[cursor:])
    return combined


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (q in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]


def summarize(latencies: list[float], wall_seconds: float) -> dict:
    """Throughput and latency stats for one run."""
    ordered = sorted(latencies)
    return {
        "queries": len(latencies),
        "wall_seconds": wall_seconds,
        "qps": len(latencies) / wall_seconds if wall_seconds > 0 else 0.0,
        "p50_ms": percentile(ordered, 50) * 1e3,
        "p99_ms": percentile(ordered, 99) * 1e3,
        "max_ms": (ordered[-1] if ordered else 0.0) * 1e3,
    }


async def _drive(queries: list[dict], concurrency: int, call) -> dict:
    """Pump the mix through ``call`` with a fixed worker pool.

    A pool of ``concurrency`` workers pulling the next index keeps the
    dispatch overhead per query to one coroutine resumption — a
    task-per-query gather would charge the engine for 10x the event-loop
    bookkeeping and distort the comparison against the plain-loop naive
    baseline.
    """
    latencies: list[float] = [0.0] * len(queries)
    results: list = [None] * len(queries)
    next_index = 0

    async def worker() -> None:
        nonlocal next_index
        while next_index < len(queries):
            index = next_index
            next_index += 1  # safe: no await between read and increment
            start = time.perf_counter()
            results[index] = await call(queries[index])
            latencies[index] = time.perf_counter() - start

    pool = max(1, min(concurrency, len(queries)))
    wall_start = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(pool)))
    wall = time.perf_counter() - wall_start
    summary = summarize(latencies, wall)
    summary["results"] = results
    return summary


async def run_against_engine(
    engine, queries: list[dict], concurrency: int = 25
) -> dict:
    """Fire the mix at an in-process engine; returns stats + results.

    ``results`` preserves query order, so callers can spot-check any
    answer against the equivalent direct library call.
    """
    summary = await _drive(queries, concurrency, engine.submit)
    summary["engine"] = engine.stats()
    return summary


async def _http_post(host: str, port: int, path: str, payload: dict) -> dict:
    """One POST over a fresh connection (server is Connection: close)."""
    body = json.dumps(payload).encode()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"POST {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    try:
        status = int(status_line.split()[1])
    except (IndexError, ValueError) as exc:
        raise ServiceError(f"malformed response: {status_line!r}") from exc
    try:
        parsed = json.loads(rest.decode() or "null")
    except json.JSONDecodeError as exc:
        raise ServiceError(f"non-JSON response body: {exc}") from exc
    if status != 200:
        message = parsed.get("message", status_line) if isinstance(parsed, dict) else status_line
        raise ServiceError(f"HTTP {status}: {message}")
    return parsed


async def _http_get(host: str, port: int, path: str) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    _, _, rest = raw.partition(b"\r\n\r\n")
    return json.loads(rest.decode() or "{}")


def _split_url(url: str) -> tuple[str, int]:
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if not parts.hostname:
        raise ServiceError(f"cannot parse service URL {url!r}")
    return parts.hostname, parts.port or 80


async def run_against_url(
    url: str, queries: list[dict], concurrency: int = 25
) -> dict:
    """Fire the mix at a running server over HTTP."""
    host, port = _split_url(url)

    async def call(payload: dict) -> dict:
        return await _http_post(host, port, "/query", payload)

    summary = await _drive(queries, concurrency, call)
    summary["engine"] = await _http_get(host, port, "/stats")
    return summary


def naive_baseline(optimizer, queries: list[dict]) -> dict:
    """One-query-one-evaluation reference over the same mix.

    ``optimizer`` must be a cache-less
    :class:`~repro.cloud.optimizer.CostOptimizer` for the mix's
    workload, built with the same worker count and capacity floors the
    engine applies.  Each ``predict`` becomes one scalar
    :meth:`evaluate` call and each ``optimize`` one full
    :meth:`grid_search` — no batching, no dedup, no caching — which is
    what a service without the coalescing tiers would do per request.
    """
    latencies: list[float] = []
    results = []
    wall_start = time.perf_counter()
    for payload in queries:
        query = parse_query(payload)
        start = time.perf_counter()
        if query.kind == "predict":
            config = optimizer.make_config(
                query.vcpus,
                query.hdfs_kind,
                query.hdfs_gb,
                query.local_kind,
                query.local_gb,
            )
            results.append(optimizer.evaluate(config))
        elif query.kind == "optimize":
            results.append(
                optimizer.grid_search(
                    vcpu_grid=query.vcpu_grid, prune=query.prune
                )
            )
        else:
            raise ServiceError(
                f"naive baseline cannot answer {query.kind!r} queries"
            )
        latencies.append(time.perf_counter() - start)
    wall = time.perf_counter() - wall_start
    summary = summarize(latencies, wall)
    summary["results"] = results
    return summary
