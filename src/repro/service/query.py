"""What-if query schema: validation, canonical form, fingerprints.

A query is one JSON object a client POSTs to ``/query`` (or hands to
:meth:`~repro.service.engine.QueryEngine.submit` directly).  Three kinds
cover the paper's product surface:

- ``predict`` — a model-only cloud what-if: "what does this workload
  cost on ``vcpus``/``hdfs``/``local`` machines?"  Answered by the
  Eq.-1 array kernel, micro-batched with other predict queries.
- ``simulate`` — a simulation-backed cluster what-if: "what makespan
  does the discrete-event simulator give at ``(slaves, cores)``?"
  Routed to the supervised compute backend under bounded admission.
- ``optimize`` — the full Section-VI grid search: "what should I buy?"

Every query reduces to a **canonical dictionary** (defaults filled,
floats normalized) whose content fingerprint is the engine's identity
for the query: the in-process LRU, the single-flight table, and the
coalescing counters all key on it, so two clients asking the same
question in different field orders share one evaluation.

Shape problems raise :class:`~repro.errors.QueryError` (HTTP 400 /
exit 2) — a malformed query is the caller's mistake, never the
service's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.pipeline.fingerprint import fingerprint

__all__ = [
    "QUERY_KINDS",
    "DEFAULT_OPTIMIZE_VCPU_GRID",
    "Query",
    "parse_query",
]

#: The query kinds the engine answers.
QUERY_KINDS = ("predict", "simulate", "optimize")

#: The CLI ``optimize`` command's vcpu grid, reused as the query default
#: so a bare optimize query matches ``repro optimize`` exactly.
DEFAULT_OPTIMIZE_VCPU_GRID = (4, 8, 16, 32)

#: Cluster disk kinds the simulator accepts (``ClusterPlatform``).
_CLUSTER_DISK_KINDS = ("hdd", "ssd")

#: Fields every kind accepts, beyond the common ``kind``/``workload``.
_FIELDS_BY_KIND = {
    "predict": {
        "vcpus", "hdfs_kind", "hdfs_gb", "local_kind", "local_gb",
        "num_workers",
    },
    "simulate": {"slaves", "cores", "hdfs", "local"},
    "optimize": {"vcpu_grid", "prune", "num_workers"},
}


@dataclass(frozen=True)
class Query:
    """One validated what-if query in canonical form.

    Fields irrelevant to the query's kind are ``None`` (or the empty
    tuple); :meth:`canonical` emits only the relevant ones, so the
    fingerprint of a predict query can never collide with a simulate
    query over the same workload.
    """

    kind: str
    workload: str
    # predict
    vcpus: int | None = None
    hdfs_kind: str | None = None
    hdfs_gb: float | None = None
    local_kind: str | None = None
    local_gb: float | None = None
    num_workers: int | None = None
    # simulate
    slaves: int | None = None
    cores: int | None = None
    hdfs: str | None = None
    local: str | None = None
    # optimize
    vcpu_grid: tuple[int, ...] = ()
    prune: bool = False

    def canonical(self) -> dict:
        """The kind-relevant fields, defaults filled — the cache identity."""
        base = {"kind": self.kind, "workload": self.workload}
        if self.kind == "predict":
            base.update(
                vcpus=self.vcpus,
                hdfs_kind=self.hdfs_kind,
                hdfs_gb=self.hdfs_gb,
                local_kind=self.local_kind,
                local_gb=self.local_gb,
                num_workers=self.num_workers,
            )
        elif self.kind == "simulate":
            base.update(
                slaves=self.slaves, cores=self.cores,
                hdfs=self.hdfs, local=self.local,
            )
        else:  # optimize
            base.update(
                vcpu_grid=list(self.vcpu_grid),
                prune=self.prune,
                num_workers=self.num_workers,
            )
        return base

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the canonical form."""
        return fingerprint(self.canonical())


def _require(payload: dict, field: str, where: str):
    if field not in payload:
        raise QueryError(f"{where}: missing required field {field!r}")
    return payload[field]


def _as_int(value, field: str, where: str, minimum: int = 1) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        else:
            raise QueryError(f"{where}: {field} must be an integer, got {value!r}")
    if value < minimum:
        raise QueryError(f"{where}: {field} must be >= {minimum}, got {value}")
    return value


def _as_size(value, field: str, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"{where}: {field} must be a number, got {value!r}")
    if value <= 0:
        raise QueryError(f"{where}: {field} must be positive, got {value}")
    return float(value)


def _as_choice(value, field: str, where: str, choices) -> str:
    if value not in choices:
        raise QueryError(
            f"{where}: {field} must be one of {sorted(choices)}, got {value!r}"
        )
    return value


def parse_query(payload, known_workloads=None) -> Query:
    """Validate a raw payload into a :class:`Query`.

    ``known_workloads``, when given, is the set of workload names the
    engine serves; a query naming anything else is rejected here (the
    400 path) instead of surfacing as a server-side failure later.
    """
    where = "query"
    if not isinstance(payload, dict):
        raise QueryError(f"{where} must be a JSON object, got {type(payload).__name__}")
    kind = _require(payload, "kind", where)
    if kind not in QUERY_KINDS:
        raise QueryError(
            f"{where}: unknown kind {kind!r}; expected one of {list(QUERY_KINDS)}"
        )
    where = f"{kind} query"
    workload = _require(payload, "workload", where)
    if not isinstance(workload, str) or not workload:
        raise QueryError(f"{where}: workload must be a non-empty string")
    if known_workloads is not None and workload not in known_workloads:
        raise QueryError(
            f"{where}: unknown workload {workload!r};"
            f" serving {sorted(known_workloads)}"
        )
    unknown = set(payload) - {"kind", "workload"} - _FIELDS_BY_KIND[kind]
    if unknown:
        raise QueryError(f"{where} has unknown field(s) {sorted(unknown)}")

    if kind == "predict":
        # The cloud disk catalogue: validated against the real spec table
        # so the 400 message lists exactly what the optimizer can price.
        from repro.cloud.disks import SPEC_BY_KIND

        return Query(
            kind=kind,
            workload=workload,
            vcpus=_as_int(_require(payload, "vcpus", where), "vcpus", where),
            hdfs_kind=_as_choice(
                _require(payload, "hdfs_kind", where), "hdfs_kind", where,
                SPEC_BY_KIND,
            ),
            hdfs_gb=_as_size(_require(payload, "hdfs_gb", where), "hdfs_gb", where),
            local_kind=_as_choice(
                _require(payload, "local_kind", where), "local_kind", where,
                SPEC_BY_KIND,
            ),
            local_gb=_as_size(
                _require(payload, "local_gb", where), "local_gb", where
            ),
            num_workers=_as_int(
                payload.get("num_workers", 10), "num_workers", where
            ),
        )
    if kind == "simulate":
        return Query(
            kind=kind,
            workload=workload,
            slaves=_as_int(_require(payload, "slaves", where), "slaves", where),
            cores=_as_int(_require(payload, "cores", where), "cores", where),
            hdfs=_as_choice(
                payload.get("hdfs", "ssd"), "hdfs", where, _CLUSTER_DISK_KINDS
            ),
            local=_as_choice(
                payload.get("local", "ssd"), "local", where, _CLUSTER_DISK_KINDS
            ),
        )
    # optimize
    grid = payload.get("vcpu_grid", list(DEFAULT_OPTIMIZE_VCPU_GRID))
    if not isinstance(grid, (list, tuple)) or not grid:
        raise QueryError(f"{where}: vcpu_grid must be a non-empty list")
    vcpu_grid = tuple(
        _as_int(value, "vcpu_grid entry", where) for value in grid
    )
    prune = payload.get("prune", False)
    if not isinstance(prune, bool):
        raise QueryError(f"{where}: prune must be a boolean, got {prune!r}")
    return Query(
        kind=kind,
        workload=workload,
        vcpu_grid=vcpu_grid,
        prune=prune,
        num_workers=_as_int(payload.get("num_workers", 10), "num_workers", where),
    )
