"""Thin stdlib HTTP/JSON front over the query engine.

One ``asyncio.start_server`` listener, no frameworks: the protocol is a
minimal HTTP/1.1 subset (request line, headers, ``Content-Length``
body, ``Connection: close`` responses), which is all the load generator
and CI smoke test need and keeps the service dependency-free.

Routes
------
- ``GET /healthz`` — liveness: ``{"status": "ok"}``.
- ``GET /stats`` — the engine's serving counters
  (:meth:`QueryEngine.stats`).
- ``POST /query`` — one what-if query per request; the JSON body is a
  query payload (see :mod:`repro.service.query`), the response the
  engine's result payload.

Error mapping mirrors the CLI's exit codes: a malformed query
(:class:`QueryError`, :class:`ConfigurationError`,
:class:`WorkloadError`) is **400**, admission rejection
(:class:`AdmissionError`) is **429** with the queue depth/cap in the
body, anything else inside the engine is **500**.  Every error body is
``{"error": type, "message": str, ...}`` so clients can branch without
parsing prose.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DoppioError,
    QueryError,
    WorkloadError,
)
from repro.service.engine import QueryEngine

__all__ = ["QueryServer", "serve"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Largest query body accepted, in bytes (queries are small objects).
MAX_BODY_BYTES = 64 * 1024


class QueryServer:
    """The HTTP listener wrapping one :class:`QueryEngine`."""

    def __init__(self, engine: QueryEngine, host: str = "127.0.0.1", port: int = 8642):
        self.engine = engine
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — authoritative once started."""
        if self._server is None or not self._server.sockets:
            return (self.host, self.port)
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return (name[0], name[1])

    async def start(self) -> None:
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.host, self.port = self.address

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.engine.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status, payload = 500, {
                "error": type(exc).__name__, "message": str(exc),
            }
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {"error": "BadRequest", "message": "empty request"}
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {
                "error": "BadRequest",
                "message": f"malformed request line {request_line!r}",
            }
        method, path = parts[0], parts[1]
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok"}
        if method == "GET" and path == "/stats":
            return 200, self.engine.stats()
        if path == "/query":
            if method != "POST":
                return 405, {
                    "error": "MethodNotAllowed",
                    "message": "use POST /query",
                }
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                return 400, {
                    "error": "BadRequest",
                    "message": "invalid Content-Length",
                }
            if length > MAX_BODY_BYTES:
                return 413, {
                    "error": "PayloadTooLarge",
                    "message": f"body exceeds {MAX_BODY_BYTES} bytes",
                }
            raw = await reader.readexactly(length) if length else b""
            try:
                payload = json.loads(raw.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {
                    "error": "BadRequest",
                    "message": f"body is not valid JSON: {exc}",
                }
            return await self._query(payload)
        return 404, {"error": "NotFound", "message": f"no route {method} {path}"}

    async def _query(self, payload) -> tuple[int, dict]:
        try:
            result = await self.engine.submit(payload)
        except AdmissionError as exc:
            return 429, {
                "error": "AdmissionError",
                "message": str(exc),
                "queue_depth": exc.queue_depth,
                "queue_cap": exc.queue_cap,
            }
        except (QueryError, ConfigurationError, WorkloadError) as exc:
            return 400, {"error": type(exc).__name__, "message": str(exc)}
        except DoppioError as exc:
            return 500, {"error": type(exc).__name__, "message": str(exc)}
        return 200, result


async def serve(
    engine: QueryEngine,
    host: str = "127.0.0.1",
    port: int = 8642,
    ready=None,
) -> None:
    """Run the server until cancelled; ``ready(host, port)`` fires once bound."""
    server = QueryServer(engine, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(*server.address)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
