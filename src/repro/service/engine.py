"""The asyncio query engine: three-tier reads over the model stack.

One :class:`QueryEngine` serves predict / simulate / optimize what-if
queries (see :mod:`repro.service.query`) through a three-tier read path:

1. **LRU** — an in-process, bounded map over canonical query
   fingerprints holding fully composed result payloads.  Hits cost a
   dictionary move-to-end.
2. **ResultCache** — the pipeline's persistent content-addressed store,
   opened as a multi-reader: measurements and predictions written by
   any past ``repro pipeline`` / ``repro optimize`` run (or by this
   service) are served without recomputation, under exactly the keys
   the batch pipeline uses.
3. **Compute** — misses are coalesced and batched:

   - identical fingerprints *in flight* share one evaluation
     (single-flight: N concurrent identical queries cost one compute);
   - distinct model-only (predict) queries are micro-batched into one
     :class:`~repro.model.arrays.CandidateBatch` kernel call
     (:class:`~repro.service.batcher.MicroBatcher`);
   - simulation-backed queries run on the supervised execution backend
     (:func:`~repro.parallel.resolve_backend` — the same ``workers=0``
     affinity auto-sizing as the batch pipeline) behind a bounded
     admission queue: at the cap, new simulate queries are rejected
     with a structured :class:`~repro.errors.AdmissionError` (HTTP
     429) instead of growing latency without bound.

Results are **bit-identical** to the equivalent library calls:
``predict`` matches :meth:`CostOptimizer.evaluate`, ``simulate``
matches :meth:`Experiment.measure`, ``optimize`` matches
:meth:`CostOptimizer.grid_search` — pinned by
``tests/unit/service/test_engine.py``.

Threading model: the event loop owns every shared structure (LRU,
in-flight table, batcher, the ResultCache).  Heavy work (profiling,
simulation batches, grid searches) runs through one background worker
coroutine that hops into a thread via ``asyncio.to_thread`` and hands
*pure results* back to the loop, so cache mutation and persistence
always happen on the loop — no locks, no torn saves.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.cloud.instance import machine_for_vcpus
from repro.cloud.optimizer import CostOptimizer
from repro.cloud.pricing import CloudConfiguration
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ExecutionError,
    QueryError,
    ServiceError,
)
from repro.model.arrays import backend_name
from repro.parallel import ExecutionPolicy, TaskSupervisor, resolve_backend
from repro.pipeline.cache import ResultCache, prediction_key, run_key
from repro.pipeline.fingerprint import fingerprint as content_fingerprint
from repro.pipeline.platforms import ClusterPlatform, CloudPlatform
from repro.pipeline.sources import ResolvedWorkload, SpecSource
from repro.service.batcher import MicroBatcher
from repro.service.query import Query, parse_query
from repro.workloads.base import WorkloadSpec
from repro.workloads.runner import measure_workload

__all__ = ["QueryEngine", "config_dict"]


def config_dict(config: CloudConfiguration) -> dict:
    """A CloudConfiguration as a JSON-ready mapping (the CLI's shape)."""
    return {
        "machine": config.machine.name,
        "vcpus": config.machine.vcpus,
        "num_workers": config.num_workers,
        "hdfs_disk_kind": config.hdfs_disk_kind,
        "hdfs_disk_gb": config.hdfs_disk_gb,
        "local_disk_kind": config.local_disk_kind,
        "local_disk_gb": config.local_disk_gb,
        "label": config.label(),
    }


@dataclass(frozen=True)
class _SimPayload:
    """Picklable simulate-query work unit for the supervised backend."""

    spec: WorkloadSpec
    platform: ClusterPlatform
    nodes: int
    cores: int


def _simulate_item(payload: _SimPayload):
    """Module-level task fn (process pools must pickle it).

    Exactly the call :meth:`Experiment._measure_cell` makes for a clean
    run, which is what makes service simulate results bit-identical to
    ``Experiment.measure``.
    """
    return measure_workload(
        payload.platform.cluster(payload.nodes),
        payload.cores,
        payload.spec,
    )


@dataclass
class _SimItem:
    """One admitted simulate query waiting on the compute tier."""

    payload: _SimPayload
    key: str
    future: asyncio.Future


@dataclass
class _PredictEntry:
    """One predict query waiting in the micro-batcher."""

    state: "_WorkloadState"
    config: CloudConfiguration
    future: asyncio.Future


@dataclass
class _WorkloadState:
    """Per-workload serving state: spec, profiled report, scorer."""

    spec: WorkloadSpec
    resolved: ResolvedWorkload
    # One scorer per workload: `score_candidates` only depends on the
    # report, so configs with different num_workers share a batch.
    scorer: CostOptimizer
    # Capacity floors per num_workers (feasibility is N-dependent).
    capacity: dict[int, tuple[float, float]] = field(default_factory=dict)

    def capacity_for(self, num_workers: int) -> tuple[float, float]:
        mins = self.capacity.get(num_workers)
        if mins is None:
            mins = CostOptimizer.capacity_requirements(
                self.spec, num_workers=num_workers
            )
            self.capacity[num_workers] = mins
        return mins


class QueryEngine:
    """Concurrent what-if query engine over a set of workloads.

    Parameters
    ----------
    workloads:
        ``{name: WorkloadSpec}`` — the specs this engine serves.
    cache:
        Optional shared :class:`ResultCache` (tier 2).  File-backed
        caches are checkpointed after every fresh simulation batch.
    lru_size:
        Capacity of the tier-1 result LRU (canonical-fingerprint keyed).
    batch_max / batch_delay:
        Micro-batcher bounds for model-only queries (entries / seconds).
    sim_queue_cap:
        Maximum simulate queries admitted but not yet completed; beyond
        it, :class:`~repro.errors.AdmissionError` (the structured 429).
    workers:
        Compute-tier sizing with the pipeline's ``workers=`` semantics —
        ``None``/``1`` serial, ``0`` affinity auto-sized, ``k`` processes
        — resolved by :func:`repro.parallel.resolve_backend`, the single
        source of truth shared with ``run_grid``.
    profile_nodes:
        Cluster size for the four-sample-run profiling a predict or
        optimize query triggers on first touch of a workload.
    execution:
        Optional :class:`~repro.parallel.ExecutionPolicy` for the
        supervised simulation batches (per-item timeout, retries).
    """

    def __init__(
        self,
        workloads: dict[str, WorkloadSpec],
        cache: ResultCache | None = None,
        *,
        lru_size: int = 1024,
        batch_max: int = 32,
        batch_delay: float = 0.002,
        sim_queue_cap: int = 16,
        workers: int | None = None,
        profile_nodes: int = 3,
        execution: ExecutionPolicy | None = None,
    ) -> None:
        if not workloads:
            raise ConfigurationError("the query engine needs at least one workload")
        if lru_size < 1:
            raise ConfigurationError(f"lru_size must be >= 1, got {lru_size}")
        if sim_queue_cap < 1:
            raise ConfigurationError(
                f"sim_queue_cap must be >= 1, got {sim_queue_cap}"
            )
        self.workloads = dict(workloads)
        self.cache = cache if cache is not None else ResultCache()
        self.lru_size = lru_size
        self.sim_queue_cap = sim_queue_cap
        self.profile_nodes = profile_nodes
        self._backend = resolve_backend(workers)
        self._policy = execution if execution is not None else ExecutionPolicy()
        self._batcher = MicroBatcher(
            self._flush_predicts, max_batch=batch_max, max_delay=batch_delay
        )
        # Hot-path identity is the parsed Query itself: a frozen
        # dataclass in canonical form, so equality/hash ARE canonical
        # equivalence — no content hashing on the LRU path.
        self._lru: OrderedDict[Query, dict] = OrderedDict()
        self._inflight: dict[Query, asyncio.Future] = {}
        self._states: dict[str, _WorkloadState] = {}
        self._spec_fps: dict[str, str] = {}
        self._platforms: dict[tuple[str, str], tuple[ClusterPlatform, str]] = {}
        self._state_futures: dict[str, asyncio.Future] = {}
        self._jobs: deque = deque()
        self._sim_pending: list[_SimItem] = []
        self._sim_running = 0
        self._work_event = asyncio.Event()
        self._worker_task: asyncio.Task | None = None
        self._closed = False
        self.counters = {
            "queries": 0,
            "lru_hits": 0,
            "lru_evictions": 0,
            "coalesced": 0,
            "tier2_hits": 0,
            "sim_completed": 0,
            "sim_rejected": 0,
            "errors": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start the background compute worker (idempotent)."""
        if self._closed:
            raise ServiceError("query engine is closed")
        if self._worker_task is None:
            self._worker_task = asyncio.create_task(self._worker())

    async def close(self) -> None:
        """Drain nothing, stop the worker, release the backend."""
        self._closed = True
        self._batcher.close()
        if self._worker_task is not None:
            self._worker_task.cancel()
            try:
                await self._worker_task
            except asyncio.CancelledError:
                pass
            self._worker_task = None
        for item in self._sim_pending:
            if not item.future.done():
                item.future.set_exception(ServiceError("engine closed"))
                item.future.exception()
        self._sim_pending.clear()
        self._backend.shutdown()
        if self.cache.path is not None:
            self.cache.save()

    async def __aenter__(self) -> "QueryEngine":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def warm(self, names=None) -> None:
        """Resolve (profile) workload states up front, off the hot path."""
        for name in names if names is not None else sorted(self.workloads):
            if name not in self.workloads:
                raise QueryError(f"unknown workload {name!r}")
            await self._state(name)

    # -- the hot path --------------------------------------------------------

    async def submit(self, query) -> dict:
        """Answer one query (dict payload or parsed :class:`Query`)."""
        if self._closed:
            raise ServiceError("query engine is closed")
        await self.start()
        if not isinstance(query, Query):
            query = parse_query(query, known_workloads=self.workloads)
        self.counters["queries"] += 1

        cached = self._lru.get(query)
        if cached is not None:
            self._lru.move_to_end(query)
            self.counters["lru_hits"] += 1
            return dict(cached)

        inflight = self._inflight.get(query)
        if inflight is not None:
            self.counters["coalesced"] += 1
            return dict(await asyncio.shield(inflight))

        future = asyncio.get_running_loop().create_future()
        self._inflight[query] = future
        try:
            result = await self._compute(query, query.fingerprint)
        except BaseException as exc:
            self.counters["errors"] += 1
            future.set_exception(exc)
            future.exception()  # mark retrieved for waiterless failures
            raise
        else:
            future.set_result(result)
        finally:
            self._inflight.pop(query, None)
        self._lru_put(query, result)
        return dict(result)

    def _lru_put(self, query: Query, result: dict) -> None:
        self._lru[query] = result
        self._lru.move_to_end(query)
        while len(self._lru) > self.lru_size:
            self._lru.popitem(last=False)
            self.counters["lru_evictions"] += 1

    # -- dispatch ------------------------------------------------------------

    async def _compute(self, query: Query, fp: str) -> dict:
        if query.kind == "predict":
            return await self._compute_predict(query, fp)
        if query.kind == "simulate":
            return await self._compute_simulate(query, fp)
        return await self._compute_optimize(query, fp)

    async def _compute_predict(self, query: Query, fp: str) -> dict:
        state = await self._state(query.workload)
        config = CloudConfiguration(
            machine=machine_for_vcpus(query.vcpus),
            num_workers=query.num_workers,
            hdfs_disk_kind=query.hdfs_kind,
            hdfs_disk_gb=query.hdfs_gb,
            local_disk_kind=query.local_kind,
            local_disk_gb=query.local_gb,
        )
        min_hdfs, min_local = state.capacity_for(query.num_workers)
        if config.hdfs_disk_gb < min_hdfs or config.local_disk_gb < min_local:
            raise QueryError(
                f"infeasible configuration {config.label()}: {query.workload}"
                f" needs >= {min_hdfs:.0f}GB HDFS and >= {min_local:.0f}GB"
                f" local per node at N={query.num_workers}"
            )
        # Tier 2: the pipeline's content-addressed prediction key — the
        # very key `repro optimize --cache` writes candidate scores
        # under.  The key is itself a content hash, so against a store
        # with no predictions it is skipped outright.
        prediction = None
        if self.cache.num_predictions:
            key = prediction_key(
                state.resolved.report_fingerprint,
                CloudPlatform(config).fingerprint(),
                config.num_workers,
                config.cores_per_node,
            )
            prediction = self.cache.get_prediction(key)
        if prediction is not None:
            self.counters["tier2_hits"] += 1
            runtime = prediction.t_app
            cost = config.cost_for_runtime(runtime)
        else:
            entry = _PredictEntry(
                state=state,
                config=config,
                future=asyncio.get_running_loop().create_future(),
            )
            self._batcher.add(entry)
            evaluated = await entry.future
            runtime = evaluated.runtime_seconds
            cost = evaluated.cost_dollars
        return {
            "kind": "predict",
            "workload": query.workload,
            "fingerprint": fp,
            "config": config_dict(config),
            "runtime_seconds": runtime,
            "cost_dollars": cost,
            "backend": backend_name(),
        }

    def _flush_predicts(self, entries) -> None:
        """Micro-batch flush: one kernel call per distinct workload state."""
        groups: dict[int, list[_PredictEntry]] = {}
        for entry in entries:
            groups.setdefault(id(entry.state), []).append(entry)
        for group in groups.values():
            configs = [entry.config for entry in group]
            try:
                evaluated = group[0].state.scorer.score_candidates(configs)
            except Exception as exc:  # noqa: BLE001 - fan the failure out
                for entry in group:
                    if not entry.future.done():
                        entry.future.set_exception(exc)
                        entry.future.exception()
                continue
            for entry, record in zip(group, evaluated):
                if not entry.future.done():
                    entry.future.set_result(record)

    async def _compute_simulate(self, query: Query, fp: str) -> dict:
        spec = self.workloads[query.workload]
        spec_fp = self._spec_fps.get(query.workload)
        if spec_fp is None:
            spec_fp = content_fingerprint(spec)
            self._spec_fps[query.workload] = spec_fp
        disks = (query.hdfs, query.local)
        entry = self._platforms.get(disks)
        if entry is None:
            platform = ClusterPlatform(hdfs_kind=query.hdfs, local_kind=query.local)
            entry = (platform, platform.fingerprint())
            self._platforms[disks] = entry
        platform, platform_fp = entry
        # Tier 2: the pipeline's measurement key (clean run, no network,
        # no faults) — `Experiment.measure` reads and writes the same one.
        key = run_key(spec_fp, platform_fp, query.slaves, query.cores)
        if self.cache.contains_measurement(key):
            measurement = self.cache.get_measurement(key)
            self.counters["tier2_hits"] += 1
        else:
            outstanding = len(self._sim_pending) + self._sim_running
            if outstanding >= self.sim_queue_cap:
                self.counters["sim_rejected"] += 1
                raise AdmissionError(
                    f"simulation queue is full ({outstanding} outstanding,"
                    f" cap {self.sim_queue_cap}); retry later",
                    queue_depth=outstanding,
                    queue_cap=self.sim_queue_cap,
                )
            item = _SimItem(
                payload=_SimPayload(
                    spec=spec, platform=platform,
                    nodes=query.slaves, cores=query.cores,
                ),
                key=key,
                future=asyncio.get_running_loop().create_future(),
            )
            self._sim_pending.append(item)
            self._work_event.set()
            measurement = await item.future
            self.counters["sim_completed"] += 1
        return {
            "kind": "simulate",
            "workload": query.workload,
            "fingerprint": fp,
            "slaves": query.slaves,
            "cores_per_node": query.cores,
            "hdfs": query.hdfs,
            "local": query.local,
            "total_seconds": measurement.total_seconds,
            "stages": [
                {
                    "name": stage.name,
                    "num_tasks": stage.num_tasks,
                    "makespan_seconds": stage.makespan,
                }
                for stage in measurement.stages
            ],
        }

    async def _compute_optimize(self, query: Query, fp: str) -> dict:
        state = await self._state(query.workload)
        min_hdfs, min_local = state.capacity_for(query.num_workers)
        optimizer = CostOptimizer(
            state.scorer.predictor,
            num_workers=query.num_workers,
            min_hdfs_gb=min_hdfs,
            min_local_gb=min_local,
        )
        result = await self._call(
            lambda: optimizer.grid_search(
                vcpu_grid=query.vcpu_grid, prune=query.prune
            )
        )
        return {
            "kind": "optimize",
            "workload": query.workload,
            "fingerprint": fp,
            "vcpu_grid": list(query.vcpu_grid),
            "prune": query.prune,
            "num_workers": query.num_workers,
            "num_evaluated": result.num_evaluated,
            "num_pruned": result.num_pruned,
            "backend": backend_name(),
            "best": {
                "config": config_dict(result.best.config),
                "runtime_seconds": result.best.runtime_seconds,
                "cost_dollars": result.best.cost_dollars,
            },
        }

    # -- workload state ------------------------------------------------------

    async def _state(self, name: str) -> _WorkloadState:
        state = self._states.get(name)
        if state is not None:
            return state
        future = self._state_futures.get(name)
        if future is None:
            future = asyncio.get_running_loop().create_future()
            self._state_futures[name] = future
            self._jobs.append(("state", name, future))
            self._work_event.set()
        return await asyncio.shield(future)

    def _build_state(self, name: str) -> _WorkloadState:
        """Profile a workload into serving state (runs in a thread).

        The source resolves through a scratch cache seeded from the
        shared store, so a report persisted by an earlier run is a hit;
        fresh entries are merged back on the event loop by the worker.
        """
        spec = self.workloads[name]
        source = SpecSource(spec, profile_nodes=self.profile_nodes)
        resolved = source.resolve(self.cache)
        from repro.core.predictor import Predictor

        scorer = CostOptimizer(Predictor(resolved.report))
        # Prime the batch evaluator off the hot path: the kernel's first
        # call pays one-time backend dispatch setup that would otherwise
        # land on the first real micro-batch.
        scorer.score_candidates(
            [scorer.make_config(4, "pd-standard", 64.0, "pd-standard", 64.0)]
        )
        return _WorkloadState(spec=spec, resolved=resolved, scorer=scorer)

    # -- the background compute worker ---------------------------------------

    async def _call(self, fn):
        """Run ``fn`` on the worker's thread, serialized with other jobs."""
        future = asyncio.get_running_loop().create_future()
        self._jobs.append(("call", fn, future))
        self._work_event.set()
        return await asyncio.shield(future)

    async def _worker(self) -> None:
        while True:
            await self._work_event.wait()
            self._work_event.clear()
            while self._jobs or self._sim_pending:
                if self._sim_pending:
                    batch, self._sim_pending = self._sim_pending, []
                    await self._run_sim_batch(batch)
                if self._jobs:
                    await self._run_job(self._jobs.popleft())

    async def _run_job(self, job) -> None:
        kind = job[0]
        if kind == "state":
            _, name, future = job
            try:
                state = await asyncio.to_thread(self._build_state, name)
            except BaseException as exc:
                self._state_futures.pop(name, None)
                if not future.done():
                    future.set_exception(exc)
                    future.exception()
            else:
                self._states[name] = state
                self._state_futures.pop(name, None)
                if not future.done():
                    future.set_result(state)
            return
        _, fn, future = job
        try:
            result = await asyncio.to_thread(fn)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()
        else:
            if not future.done():
                future.set_result(result)

    async def _run_sim_batch(self, batch: list[_SimItem]) -> None:
        """One supervised map over the admitted simulate queries."""
        self._sim_running = len(batch)
        supervisor = TaskSupervisor(self._backend, self._policy)
        try:
            report = await asyncio.to_thread(
                supervisor.run, _simulate_item, [item.payload for item in batch]
            )
        except BaseException as exc:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(
                        ServiceError(f"simulation batch failed: {exc}")
                    )
                    item.future.exception()
            return
        finally:
            self._sim_running = 0
        failures = {failure.index: failure for failure in report.failures}
        fresh = False
        for index, item in enumerate(batch):
            if item.future.done():
                continue
            failure = failures.get(index)
            if failure is not None:
                item.future.set_exception(ExecutionError(
                    f"simulate query failed after {failure.attempts}"
                    f" attempt(s): {failure.message}",
                    failures=(failure,),
                ))
                item.future.exception()
            elif report.results[index] is None:
                item.future.set_exception(
                    ServiceError("simulation batch aborted before this query")
                )
                item.future.exception()
            else:
                measurement = report.results[index]
                self.cache.put_measurement(item.key, measurement)
                fresh = True
                item.future.set_result(measurement)
        if fresh and self.cache.path is not None:
            self.cache.save()

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """The serving counters ``/stats`` and the load generator read."""
        return {
            "workloads": sorted(self.workloads),
            "queries": self.counters["queries"],
            "errors": self.counters["errors"],
            "coalesced": self.counters["coalesced"],
            "inflight": len(self._inflight),
            "lru": {
                "size": len(self._lru),
                "capacity": self.lru_size,
                "hits": self.counters["lru_hits"],
                "evictions": self.counters["lru_evictions"],
            },
            "batches": self._batcher.stats(),
            "sim": {
                "queued": len(self._sim_pending),
                "running": self._sim_running,
                "cap": self.sim_queue_cap,
                "completed": self.counters["sim_completed"],
                "rejected": self.counters["sim_rejected"],
                "workers": self._backend.workers,
                "backend": type(self._backend).__name__,
            },
            "tier2_hits": self.counters["tier2_hits"],
            "tier2": self.cache.stats(),
        }
