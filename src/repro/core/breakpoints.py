"""Break-point theory: ``b = BW / T`` and ``B = lambda * b`` (Section IV-B).

With ``P`` executor cores per node, a stage passes through three execution
phases as ``P`` grows (Fig. 6):

1. ``P <= b`` — no I/O contention; runtime is ``M/(N*P) * t_avg``.
2. ``b < P <= lambda*b`` — cores contend for bandwidth but the CPU
   computation of other tasks hides the queueing; the runtime formula is
   unchanged (plus an initial pipeline latency).
3. ``P > lambda*b`` — I/O is the bottleneck; runtime is ``D/(N*BW)`` and
   adding cores no longer helps.

These helpers compute the two thresholds and classify an operating point.
The numbers quoted in Section V-A (HDFS read b = 4.3 on HDD and 16 on SSD;
shuffle read b = 8 and B = 160 on SSD; b = 1, lambda = 5, B = 5 on HDD) are
reproduced by the Section V-A benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resources import Resource


class ExecutionPhase(enum.Enum):
    """Which of Fig. 6's three regimes a ``(P, b, B)`` operating point is in."""

    NO_CONTENTION = "no_contention"
    """``P <= b``: I/O proceeds at full per-core throughput."""

    CONTENTION_HIDDEN = "contention_hidden"
    """``b < P <= B``: contention exists but computation hides it."""

    IO_BOUND = "io_bound"
    """``P > B``: the stage is limited by ``D / (N * BW)``."""


def break_point(bandwidth: float, per_core_throughput: float) -> float:
    """``b = BW / T``: cores that saturate the device.

    ``bandwidth`` is the effective device bandwidth at the operation's
    request size; ``per_core_throughput`` is ``T``, what a single
    uncontended core achieves (including its software path).
    """
    if bandwidth <= 0:
        raise ModelError(f"bandwidth must be positive, got {bandwidth}")
    if per_core_throughput <= 0:
        raise ModelError(
            f"per-core throughput must be positive, got {per_core_throughput}"
        )
    return bandwidth / per_core_throughput


def turning_point(bandwidth: float, per_core_throughput: float, lam: float) -> float:
    """``B = lambda * b``: cores past which I/O is the hard bottleneck.

    ``lam`` is the ratio of total task time to its I/O time; it must be at
    least 1 (a task cannot spend more than all of its time on I/O).
    """
    if lam < 1.0:
        raise ModelError(f"lambda is total/I-O time and must be >= 1, got {lam}")
    return lam * break_point(bandwidth, per_core_throughput)


def classify_phase(cores: float, b: float, big_b: float) -> ExecutionPhase:
    """Classify an operating point into one of Fig. 6's three phases."""
    if cores <= 0:
        raise ModelError(f"core count must be positive, got {cores}")
    if b <= 0 or big_b < b:
        raise ModelError(f"need 0 < b <= B, got b={b}, B={big_b}")
    if cores <= b:
        return ExecutionPhase.NO_CONTENTION
    if cores <= big_b:
        return ExecutionPhase.CONTENTION_HIDDEN
    return ExecutionPhase.IO_BOUND


@dataclass(frozen=True)
class BreakPointAnalysis:
    """A stage/channel break-point summary, as quoted throughout Section V-A.

    Attributes
    ----------
    per_core_throughput:
        ``T`` in bytes/s.
    bandwidth:
        ``BW`` in bytes/s at the channel's request size.
    lam:
        ``lambda``, total-task-time / I/O-time (>= 1).
    """

    per_core_throughput: float
    bandwidth: float
    lam: float

    @property
    def b(self) -> float:
        """Break point in cores."""
        return break_point(self.bandwidth, self.per_core_throughput)

    @property
    def big_b(self) -> float:
        """Turning point ``B = lambda * b`` in cores."""
        return turning_point(self.bandwidth, self.per_core_throughput, self.lam)

    def phase(self, cores: float) -> ExecutionPhase:
        """Which regime ``cores`` executor cores per node fall into."""
        return classify_phase(cores, self.b, self.big_b)

    def scales_with_cores(self, cores: float) -> bool:
        """True when adding cores at this point still reduces runtime."""
        return self.phase(cores) is not ExecutionPhase.IO_BOUND

    @classmethod
    def for_resource(
        cls,
        resource: Resource,
        request_size: float,
        per_core_throughput: float,
        lam: float,
    ) -> BreakPointAnalysis:
        """Analyze a channel against a shared resource.

        ``BW`` is read from the resource itself (the object the simulator
        allocates from — see :meth:`repro.resources.Resource.bandwidth_at`),
        so a break point quoted by this analysis is the exact core count
        at which that resource's water-filling starts cutting rates.
        """
        return cls(
            per_core_throughput=per_core_throughput,
            bandwidth=resource.bandwidth_at(request_size),
            lam=lam,
        )
