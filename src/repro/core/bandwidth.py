"""Effective I/O bandwidth as a function of the request size.

Section III-C of the paper shows that the bandwidth a device delivers
depends strongly on the size of each I/O request: the measured HDD/SSD gap
is 181x at 4 KB requests, 32x at the 30 KB requests issued by Spark shuffle
read, and only 3.7x at the 128 MB HDFS block size.  Every part of Doppio
(the analytic model, the simulator, the cloud optimizer) therefore consults
an :class:`EffectiveBandwidthTable` instead of a single peak number.

A table is a set of ``(request_size, bandwidth)`` anchor points; queries
between anchors are interpolated linearly in log-log space, which matches
the smooth curves fio produces (Fig. 5b), and queries outside the anchored
range are clamped to the nearest endpoint.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from repro.errors import ModelError
from repro.units import fmt_bandwidth, fmt_bytes


class EffectiveBandwidthTable:
    """Piecewise log-log interpolated bandwidth curve ``BW(request_size)``.

    Parameters
    ----------
    points:
        Mapping or iterable of ``(request_size_bytes, bandwidth_bytes_per_s)``
        anchor pairs.  At least one point is required; all values must be
        positive.  Points are sorted internally.
    name:
        Optional label used in ``repr`` and reports (e.g. ``"hdd-read"``).
    """

    def __init__(
        self,
        points: Mapping[float, float] | Iterable[tuple[float, float]],
        name: str = "",
    ) -> None:
        if isinstance(points, Mapping):
            pairs = sorted(points.items())
        else:
            pairs = sorted(points)
        if not pairs:
            raise ModelError("a bandwidth table needs at least one anchor point")
        for size, bandwidth in pairs:
            if size <= 0 or bandwidth <= 0:
                raise ModelError(
                    f"bandwidth anchors must be positive, got ({size}, {bandwidth})"
                )
        sizes = [size for size, _ in pairs]
        if len(set(sizes)) != len(sizes):
            raise ModelError("duplicate request sizes in bandwidth table")
        self.name = name
        self._sizes = sizes
        self._bandwidths = [bw for _, bw in pairs]
        self._log_sizes = [math.log(size) for size in sizes]
        self._log_bws = [math.log(bw) for bw in self._bandwidths]

    @property
    def anchors(self) -> list[tuple[float, float]]:
        """The sorted ``(request_size, bandwidth)`` anchor points."""
        return list(zip(self._sizes, self._bandwidths))

    @property
    def min_request_size(self) -> float:
        """Smallest anchored request size, in bytes."""
        return self._sizes[0]

    @property
    def max_request_size(self) -> float:
        """Largest anchored request size, in bytes."""
        return self._sizes[-1]

    @property
    def peak_bandwidth(self) -> float:
        """Highest bandwidth anywhere on the curve, in bytes/s."""
        return max(self._bandwidths)

    def bandwidth(self, request_size: float) -> float:
        """Effective bandwidth (bytes/s) for I/O issued at ``request_size``.

        Outside the anchored range the curve is clamped: devices do not get
        faster below the smallest measured block nor above the largest.
        """
        if request_size <= 0:
            raise ModelError(f"request size must be positive, got {request_size}")
        if request_size <= self._sizes[0]:
            return self._bandwidths[0]
        if request_size >= self._sizes[-1]:
            return self._bandwidths[-1]
        # Find the surrounding anchors via linear scan; tables are tiny.
        for i in range(1, len(self._sizes)):
            if request_size <= self._sizes[i]:
                x0, x1 = self._log_sizes[i - 1], self._log_sizes[i]
                y0, y1 = self._log_bws[i - 1], self._log_bws[i]
                frac = (math.log(request_size) - x0) / (x1 - x0)
                return math.exp(y0 + frac * (y1 - y0))
        raise ModelError("unreachable: anchor search fell through")  # pragma: no cover

    def iops(self, request_size: float) -> float:
        """Operations per second at ``request_size`` (Fig. 5a's y-axis)."""
        return self.bandwidth(request_size) / request_size

    def transfer_time(self, total_bytes: float, request_size: float) -> float:
        """Seconds to move ``total_bytes`` issued at ``request_size``."""
        if total_bytes < 0:
            raise ModelError(f"cannot transfer negative bytes: {total_bytes}")
        if total_bytes == 0:
            return 0.0
        return total_bytes / self.bandwidth(request_size)

    def gap_versus(self, other: "EffectiveBandwidthTable", request_size: float) -> float:
        """Bandwidth ratio ``self / other`` at one request size.

        This is how the paper quotes device gaps, e.g. SSD/HDD = 32x at the
        30 KB shuffle-read block size.
        """
        return self.bandwidth(request_size) / other.bandwidth(request_size)

    def scaled(self, factor: float, name: str = "") -> "EffectiveBandwidthTable":
        """A new table with every bandwidth multiplied by ``factor``.

        Used by the cloud disk model, where a virtual disk's bandwidth
        scales with its provisioned size.
        """
        if factor <= 0:
            raise ModelError(f"scale factor must be positive, got {factor}")
        return EffectiveBandwidthTable(
            [(size, bw * factor) for size, bw in self.anchors],
            name=name or self.name,
        )

    def capped(self, ceiling: float, name: str = "") -> "EffectiveBandwidthTable":
        """A new table with bandwidths clamped to at most ``ceiling``.

        Virtual disks in Google Cloud have hard throughput caps regardless
        of provisioned size (Section VI); this models them.
        """
        if ceiling <= 0:
            raise ModelError(f"bandwidth ceiling must be positive, got {ceiling}")
        return EffectiveBandwidthTable(
            [(size, min(bw, ceiling)) for size, bw in self.anchors],
            name=name or self.name,
        )

    def iops_capped(self, max_iops: float, name: str = "") -> "EffectiveBandwidthTable":
        """A new table limited to ``max_iops`` operations per second.

        At each anchor the bandwidth becomes
        ``min(bw, max_iops * request_size)`` — the IOPS ceiling binds at
        small request sizes, the throughput curve at large ones.  This is
        exactly how Google Cloud persistent disks behave.
        """
        if max_iops <= 0:
            raise ModelError(f"IOPS cap must be positive, got {max_iops}")
        return EffectiveBandwidthTable(
            [(size, min(bw, max_iops * size)) for size, bw in self.anchors],
            name=name or self.name,
        )

    def __repr__(self) -> str:
        label = self.name or "table"
        anchors = ", ".join(
            f"{fmt_bytes(size)}->{fmt_bandwidth(bw)}" for size, bw in self.anchors
        )
        return f"EffectiveBandwidthTable({label}: {anchors})"
