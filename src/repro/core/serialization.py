"""Profiling-report persistence: profile once, predict forever.

The four sample runs are the expensive part of the workflow (on a real
cluster they cost four application executions).  These helpers serialize a
:class:`~repro.core.profiler.ProfilingReport` to plain JSON — everything
Equation 1 needs, nothing environment-specific — so a report captured
today parameterizes predictions in any later session, host, or CI job.

Sample-run measurements are deliberately *not* serialized: they are raw
evidence, not model constants, and contain no information the fitted
constants do not.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.profiler import ChannelProfile, ProfilingReport, StageProfileData
from repro.errors import ModelError

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def report_to_dict(report: ProfilingReport) -> dict:
    """Plain-dict form of a profiling report (JSON-ready)."""
    return {
        "format_version": FORMAT_VERSION,
        "workload_name": report.workload_name,
        "nodes": report.nodes,
        "stages": [
            {
                "name": stage.name,
                "num_tasks": stage.num_tasks,
                "t_avg": stage.t_avg,
                "delta_scale": stage.delta_scale,
                "delta_read": stage.delta_read,
                "delta_write": stage.delta_write,
                "fill_seconds": stage.fill_seconds,
                "gc_coeff": stage.gc_coeff,
                "channels": [
                    {
                        "kind": channel.kind,
                        "role": channel.role,
                        "total_bytes": channel.total_bytes,
                        "request_size": channel.request_size,
                        "is_write": channel.is_write,
                    }
                    for channel in stage.channels
                ],
            }
            for stage in report.stages
        ],
    }


def report_from_dict(data: dict) -> ProfilingReport:
    """Rebuild a report from :func:`report_to_dict` output."""
    try:
        version = data["format_version"]
        if version != FORMAT_VERSION:
            raise ModelError(
                f"unsupported profiling-report format {version};"
                f" this library reads version {FORMAT_VERSION}"
            )
        stages = tuple(
            StageProfileData(
                name=stage["name"],
                num_tasks=int(stage["num_tasks"]),
                t_avg=float(stage["t_avg"]),
                delta_scale=float(stage["delta_scale"]),
                delta_read=float(stage["delta_read"]),
                delta_write=float(stage["delta_write"]),
                fill_seconds=float(stage["fill_seconds"]),
                gc_coeff=float(stage.get("gc_coeff", 0.0)),
                channels=tuple(
                    ChannelProfile(
                        kind=channel["kind"],
                        role=channel["role"],
                        total_bytes=float(channel["total_bytes"]),
                        request_size=float(channel["request_size"]),
                        is_write=bool(channel["is_write"]),
                    )
                    for channel in stage["channels"]
                ),
            )
            for stage in data["stages"]
        )
        return ProfilingReport(
            workload_name=data["workload_name"],
            nodes=int(data["nodes"]),
            stages=stages,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelError(f"malformed profiling-report data: {exc}") from exc


def save_report(report: ProfilingReport, path: str | Path) -> None:
    """Write a report to a JSON file."""
    Path(path).write_text(json.dumps(report_to_dict(report), indent=2))


def load_report(path: str | Path) -> ProfilingReport:
    """Read a report from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ModelError(f"cannot read profiling report {path}: {exc}") from exc
    return report_from_dict(data)
