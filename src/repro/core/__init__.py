"""Doppio's core contribution: the I/O-aware analytic performance model.

This subpackage implements Section IV of the paper:

- :mod:`repro.core.bandwidth` — effective I/O bandwidth as a function of the
  request (block) size, the quantity Fig. 5 measures with fio.
- :mod:`repro.core.variables` — the model variables of Section IV-A
  (``T``, ``lambda``, ``b``, ``B``, ``t_avg``, ``BW``, ``D``, ``M``...).
- :mod:`repro.core.breakpoints` — the break-point theory ``b = BW / T`` and
  ``B = lambda * b`` with the three execution phases of Fig. 6.
- :mod:`repro.core.stage_model` — Equation 1:
  ``t_stage = max(t_scale, t_read_limit, t_write_limit)``.
- :mod:`repro.core.app_model` — application runtime as the sum of stages.
- :mod:`repro.core.profiler` — the four-sample-run profiling procedure of
  Section VI-1 that derives every constant in Equation 1.
- :mod:`repro.core.predictor` — a facade: profile once, predict any
  configuration.
"""

from repro.core.bandwidth import EffectiveBandwidthTable
from repro.core.variables import IoChannel, StageModelVariables
from repro.core.breakpoints import (
    ExecutionPhase,
    break_point,
    classify_phase,
    turning_point,
)
from repro.core.stage_model import StageModel, StagePrediction
from repro.core.app_model import ApplicationModel, ApplicationPrediction
from repro.core.calibration import (
    fit_scale_constants,
    fit_io_delta,
    CalibrationResult,
)
from repro.core.gc import (
    fit_gc_coefficient,
    gc_scale_term_seconds,
    gc_seconds_per_task,
)
from repro.core.profiler import Profiler, ProfilingReport, SampleRun
from repro.core.predictor import Predictor
from repro.core.serialization import (
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)

__all__ = [
    "EffectiveBandwidthTable",
    "IoChannel",
    "StageModelVariables",
    "ExecutionPhase",
    "break_point",
    "classify_phase",
    "turning_point",
    "StageModel",
    "StagePrediction",
    "ApplicationModel",
    "ApplicationPrediction",
    "fit_scale_constants",
    "fit_io_delta",
    "CalibrationResult",
    "fit_gc_coefficient",
    "gc_scale_term_seconds",
    "gc_seconds_per_task",
    "Profiler",
    "ProfilingReport",
    "SampleRun",
    "Predictor",
    "load_report",
    "report_from_dict",
    "report_to_dict",
    "save_report",
]
