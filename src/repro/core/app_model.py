"""Application-level model: ``t_app = sum(t_stage)`` over all stages.

The paper models each stage independently with Equation 1 and sums them for
the application runtime.  :class:`ApplicationModel` also exposes per-stage
breakdowns, bottleneck attribution, and what-if evaluation across
``(N, P)`` sweeps — the raw material for Figs. 7-12.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.stage_model import StageModel, StagePrediction
from repro.errors import ModelError


@dataclass(frozen=True)
class ApplicationPrediction:
    """Model output for a whole application at one ``(N, P)`` point."""

    app_name: str
    nodes: int
    cores_per_node: int
    stages: tuple[StagePrediction, ...]

    @property
    def t_app(self) -> float:
        """Total predicted runtime: the sum of all stage runtimes."""
        return sum(stage.t_stage for stage in self.stages)

    def stage(self, name: str) -> StagePrediction:
        """Look up one stage's prediction by name."""
        for prediction in self.stages:
            if prediction.stage_name == name:
                return prediction
        raise ModelError(f"{self.app_name}: no stage named {name!r}")

    @property
    def bottleneck_stage(self) -> StagePrediction:
        """The stage contributing the most predicted time."""
        return max(self.stages, key=lambda stage: stage.t_stage)


class ApplicationModel:
    """A sequence of :class:`StageModel` summed into an application model."""

    def __init__(self, name: str, stages: Iterable[StageModel]) -> None:
        self.name = name
        self.stages: tuple[StageModel, ...] = tuple(stages)
        if not self.stages:
            raise ModelError(f"application {name} needs at least one stage")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ModelError(f"application {name} has duplicate stage names: {names}")

    def stage(self, name: str) -> StageModel:
        """Look up one stage model by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ModelError(f"{self.name}: no stage named {name!r}")

    def predict(self, nodes: int, cores_per_node: int) -> ApplicationPrediction:
        """Evaluate every stage at ``(N, P)``."""
        return ApplicationPrediction(
            app_name=self.name,
            nodes=nodes,
            cores_per_node=cores_per_node,
            stages=tuple(stage.predict(nodes, cores_per_node) for stage in self.stages),
        )

    def runtime(self, nodes: int, cores_per_node: int) -> float:
        """Total predicted application runtime in seconds."""
        return self.predict(nodes, cores_per_node).t_app

    def sweep_cores(
        self, nodes: int, core_counts: Sequence[int]
    ) -> list[ApplicationPrediction]:
        """Predictions across a list of per-node core counts (Fig. 3 style)."""
        return [self.predict(nodes, cores) for cores in core_counts]

    def __repr__(self) -> str:
        names = ", ".join(stage.name for stage in self.stages)
        return f"ApplicationModel({self.name}: [{names}])"
