"""The four-sample-run profiling procedure (Section VI-1).

To parameterize Equation 1 for an application, the paper performs four
profiling runs on a *small* cluster (N = 3 by default):

1. ``P = 1``, SSD for both HDFS and Spark-local — measures per-stage time
   at an operating point where I/O is provably not the bottleneck
   (sanity-checked via ``t_stage > D / (N * BW)``).
2. ``P = 2``, same disks — together with run 1 this solves ``t_avg`` and
   ``delta_scale`` per stage (see :mod:`repro.core.calibration`).
3. ``P = 16``, HDD for Spark-local, SSD for HDFS — forces Spark-local I/O
   to be the bottleneck so ``delta_read`` / ``delta_write`` of local
   channels can be extracted.
4. ``P = 16``, HDD for HDFS, SSD for Spark-local — same for HDFS channels.

Against the simulator the "runs" are simulated executions of the workload
spec; everything else (the fitting, the sanity checks, the iostat
cross-check of request sizes) is the paper's procedure verbatim.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.calibration import (
    fit_io_delta,
    fit_scale_constants,
    sanity_check_not_io_bound,
)
from repro.errors import ProfilingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.simulator.run import ApplicationMeasurement
    from repro.workloads.base import StageSpec, WorkloadSpec

# NOTE: cluster/simulator/workload imports happen lazily inside methods; the
# storage layer imports repro.core at module load, so eager imports here
# would create a cycle.

#: Factory signature: (hdfs_kind, local_kind) -> Cluster.
ClusterFactory = Callable[[str, str], "Cluster"]


@dataclass(frozen=True)
class ChannelProfile:
    """Device-independent facts about one stage channel.

    ``request_size`` is what iostat observed; ``total_bytes`` is the
    stage-level volume.  Bandwidth is *not* stored — it depends on the
    device being predicted for and is looked up at prediction time.
    """

    kind: str
    role: str
    total_bytes: float
    request_size: float
    is_write: bool


@dataclass(frozen=True)
class StageProfileData:
    """Everything Equation 1 needs for one stage, minus target bandwidths.

    ``fill_seconds`` is the pipeline-fill latency of the I/O limit terms:
    ``t_avg`` for ordinary stages, ``t_avg / K`` for stages whose tasks
    stream their I/O in K chunks.
    """

    name: str
    num_tasks: int
    t_avg: float
    delta_scale: float
    delta_read: float
    delta_write: float
    channels: tuple[ChannelProfile, ...]
    fill_seconds: float = 0.0
    #: JVM GC coefficient (seconds per task per co-resident task), fitted
    #: from task metrics when the profiler runs with ``fit_gc=True``.
    gc_coeff: float = 0.0


@dataclass(frozen=True)
class SampleRun:
    """One profiling execution and its measurements."""

    label: str
    cores_per_node: int
    hdfs_kind: str
    local_kind: str
    measurement: ApplicationMeasurement


@dataclass(frozen=True)
class ProfilingReport:
    """The output of :class:`Profiler.profile`: per-stage model constants."""

    workload_name: str
    nodes: int
    stages: tuple[StageProfileData, ...]
    sample_runs: tuple[SampleRun, ...] = field(default=())

    def stage(self, name: str) -> StageProfileData:
        """Look up one stage's profile."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ProfilingError(f"{self.workload_name}: no profiled stage {name!r}")


def _default_cluster_factory(nodes: int) -> ClusterFactory:
    from repro.cluster.cluster import HybridDiskConfig, make_paper_cluster

    def factory(hdfs_kind: str, local_kind: str) -> Cluster:
        config = HybridDiskConfig(0, hdfs_kind=hdfs_kind, local_kind=local_kind)
        return make_paper_cluster(num_slaves=nodes, config=config)

    return factory


def _channel_kinds() -> dict[str, str]:
    from repro.workloads.base import CHANNEL_KINDS

    return CHANNEL_KINDS


class Profiler:
    """Runs the four sample runs and fits every Equation-1 constant.

    Parameters
    ----------
    workload:
        The application to profile.
    nodes:
        ``N`` for the sample runs (the paper suggests a small 3).
    cluster_factory:
        Builds a fresh profiling cluster per run given the
        ``(hdfs_kind, local_kind)`` device kinds.  Defaults to
        Table-I-style nodes.
    calibration_cores:
        The ``(P, P)`` pair for runs 1-2; the paper uses ``(1, 2)``.
    stress_cores:
        ``P`` for runs 3-4; the paper uses 16 (predictability threshold
        from HCloud [33]).
    """

    def __init__(
        self,
        workload: WorkloadSpec,
        nodes: int = 3,
        cluster_factory: ClusterFactory | None = None,
        calibration_cores: tuple[int, int] = (1, 2),
        stress_cores: int = 16,
        fit_gc: bool = False,
    ) -> None:
        if nodes <= 0:
            raise ProfilingError("profiling node count must be positive")
        if calibration_cores[0] == calibration_cores[1]:
            raise ProfilingError("calibration runs need two distinct core counts")
        self.workload = workload
        self.nodes = nodes
        self.cluster_factory = cluster_factory or _default_cluster_factory(nodes)
        self.calibration_cores = calibration_cores
        self.stress_cores = stress_cores
        #: With ``fit_gc=True`` the profiler reads per-task GC time from
        #: the sample runs' task metrics (as real Spark exposes it),
        #: removes the GC contribution from the scale-term calibration,
        #: and reports a per-stage ``gc_coeff`` (see :mod:`repro.core.gc`).
        self.fit_gc = fit_gc

    # -- public API ---------------------------------------------------------

    def profile(self) -> ProfilingReport:
        """Execute all four sample runs and fit the per-stage constants."""
        run1 = self._run("sample-1 (P=%d, 2xSSD)" % self.calibration_cores[0],
                         self.calibration_cores[0], "ssd", "ssd")
        run2 = self._run("sample-2 (P=%d, 2xSSD)" % self.calibration_cores[1],
                         self.calibration_cores[1], "ssd", "ssd")
        run3 = self._run(f"sample-3 (P={self.stress_cores}, local=HDD)",
                         self.stress_cores, "ssd", "hdd")
        run4 = self._run(f"sample-4 (P={self.stress_cores}, HDFS=HDD)",
                         self.stress_cores, "hdd", "ssd")

        stages = []
        for spec in self.workload.stages:
            stages.append(self._fit_stage(spec, run1, run2, run3, run4))
        return ProfilingReport(
            workload_name=self.workload.name,
            nodes=self.nodes,
            stages=tuple(stages),
            sample_runs=(run1, run2, run3, run4),
        )

    # -- sample-run machinery ------------------------------------------------

    def _run(self, label: str, cores: int, hdfs_kind: str, local_kind: str) -> SampleRun:
        from repro.workloads.runner import measure_workload

        cluster = self.cluster_factory(hdfs_kind, local_kind)
        measurement = measure_workload(cluster, cores, self.workload)
        self._cross_check_request_sizes(cluster, measurement)
        return SampleRun(
            label=label,
            cores_per_node=cores,
            hdfs_kind=hdfs_kind,
            local_kind=local_kind,
            measurement=measurement,
        )

    def _cross_check_request_sizes(
        self, cluster: Cluster, measurement: ApplicationMeasurement
    ) -> None:
        """Verify iostat-observed request sizes agree with the spec's.

        On a real deployment the spec's request sizes would *come from*
        iostat; here both exist, so the profiler checks they agree within
        20 % (byte-weighted, per stage/kind) and refuses to fit otherwise.
        """
        role_of_device = _device_roles(cluster)
        for spec in self.workload.stages:
            measured = measurement.stage(spec.name)
            summary = spec.channel_summary()
            for kind, (_, spec_rs) in summary.items():
                role = _channel_kinds()[kind]
                is_write = kind.endswith("_write")
                observed = _observed_request_size(measured, role_of_device, role, is_write)
                if observed is None:
                    continue
                if not 0.8 <= observed / spec_rs <= 1.25:
                    raise ProfilingError(
                        f"stage {spec.name} channel {kind}: iostat request size"
                        f" {observed:.0f}B disagrees with the spec's {spec_rs:.0f}B"
                    )

    # -- fitting -------------------------------------------------------------

    def _fit_stage(
        self,
        spec: StageSpec,
        run1: SampleRun,
        run2: SampleRun,
        run3: SampleRun,
        run4: SampleRun,
    ) -> StageProfileData:
        time1 = run1.measurement.stage(spec.name).makespan
        time2 = run2.measurement.stage(spec.name).makespan
        self._sanity_check(spec, run1, time1)
        self._sanity_check(spec, run2, time2)
        gc_coeff = 0.0
        if self.fit_gc:
            # The task metric reports gc_coeff * P per task; read it from
            # run 1 (P = calibration_cores[0]) and correct the measured
            # stage times by the P-independent GC term M * gc / N before
            # fitting t_avg and delta_scale.
            metric = run1.measurement.stage(spec.name).avg_gc_seconds
            gc_coeff = metric / run1.cores_per_node
            gc_term = spec.num_tasks * gc_coeff / self.nodes
            time1 = max(time1 - gc_term, 0.0)
            time2 = max(time2 - gc_term, 0.0)
        calibration = fit_scale_constants(
            num_tasks=spec.num_tasks,
            nodes=self.nodes,
            point_a=(run1.cores_per_node, time1),
            point_b=(run2.cores_per_node, time2),
        )
        channels = tuple(
            ChannelProfile(
                kind=kind,
                role=_channel_kinds()[kind],
                total_bytes=total,
                request_size=request_size,
                is_write=kind.endswith("_write"),
            )
            for kind, (total, request_size) in sorted(spec.channel_summary().items())
        )
        fill_seconds = calibration.t_avg / spec.max_stream_chunks
        delta_read_local, delta_write_local = self._fit_deltas(
            spec, run3, "local", calibration.t_avg, calibration.delta_scale,
            channels, fill_seconds, gc_coeff
        )
        delta_read_hdfs, delta_write_hdfs = self._fit_deltas(
            spec, run4, "hdfs", calibration.t_avg, calibration.delta_scale,
            channels, fill_seconds, gc_coeff
        )
        return StageProfileData(
            name=spec.name,
            num_tasks=spec.num_tasks,
            t_avg=calibration.t_avg,
            delta_scale=calibration.delta_scale,
            delta_read=max(delta_read_local, delta_read_hdfs),
            delta_write=max(delta_write_local, delta_write_hdfs),
            channels=channels,
            fill_seconds=fill_seconds,
            gc_coeff=gc_coeff,
        )

    def _sanity_check(self, spec: StageSpec, run: SampleRun, measured: float) -> None:
        cluster = self.cluster_factory(run.hdfs_kind, run.local_kind)
        for kind, (total, request_size) in spec.channel_summary().items():
            role = _channel_kinds()[kind]
            is_write = kind.endswith("_write")
            device = cluster.slaves[0].device_for(role)
            bandwidth = device.bandwidth(request_size, is_write)
            sanity_check_not_io_bound(
                measured_seconds=measured,
                total_bytes=total,
                nodes=self.nodes,
                bandwidth=bandwidth,
                label=f"{spec.name}/{kind} in {run.label}",
            )

    def _fit_deltas(
        self,
        spec: StageSpec,
        run: SampleRun,
        role: str,
        t_avg: float,
        delta_scale: float,
        channels: tuple[ChannelProfile, ...],
        fill_seconds: float,
        gc_coeff: float = 0.0,
    ) -> tuple[float, float]:
        """delta_read/delta_write from a stress run, for one device role.

        Returns ``(0, 0)`` when the stage was not I/O-bound on that role in
        the stress run (the scale term explains the measurement).
        """
        measured = run.measurement.stage(spec.name).makespan
        predicted_scale = (
            spec.num_tasks / (self.nodes * run.cores_per_node) * t_avg
            + spec.num_tasks * gc_coeff / self.nodes
            + delta_scale
        )
        cluster = self.cluster_factory(run.hdfs_kind, run.local_kind)
        device = cluster.slaves[0].device_for(role)

        floors = {False: 0.0, True: 0.0}
        totals = {False: 0.0, True: 0.0}
        for channel in channels:
            if channel.role != role:
                continue
            bandwidth = device.bandwidth(channel.request_size, channel.is_write)
            floors[channel.is_write] += channel.total_bytes / (self.nodes * bandwidth)
            totals[channel.is_write] += channel.total_bytes
        dominant_is_write = floors[True] > floors[False]
        if totals[dominant_is_write] <= 0.0:
            # The stage moves no bytes on this role; tiny stages can still
            # clear the floor test below on fill time alone, so bail out
            # before fitting a delta against a zero-byte channel.
            return (0.0, 0.0)
        floor = floors[dominant_is_write] + fill_seconds  # limit term + fill
        # Fit a delta only when the I/O floor *clearly* dominates the scale
        # term in the stress run: near the crossover the measurement mixes
        # both effects and the residual is not the paper's "linear part"
        # constant — applying it to fast-disk predictions would mislead.
        if floor <= predicted_scale * 1.3 or measured <= predicted_scale * 1.05:
            return (0.0, 0.0)
        total = totals[dominant_is_write]
        delta = fit_io_delta(
            measured_seconds=measured - fill_seconds,
            total_bytes=total,
            nodes=self.nodes,
            bandwidth=total / (self.nodes * floors[dominant_is_write]),
        )
        if dominant_is_write:
            return (0.0, delta)
        return (delta, 0.0)


def _device_roles(cluster: Cluster) -> dict[str, str]:
    """Map device names to their role on the profiling cluster."""
    roles: dict[str, str] = {}
    for node in cluster.slaves:
        roles[node.hdfs_device.name] = "hdfs"
        roles[node.local_device.name] = "local"
    return roles


def _observed_request_size(
    measured, role_of_device: dict[str, str], role: str, is_write: bool
) -> float | None:
    """Byte-weighted request size iostat saw on one role/direction."""
    total_bytes = 0.0
    total_requests = 0.0
    for sample in measured.iostat_samples:
        if sample.is_write != is_write:
            continue
        if role_of_device.get(sample.device_name) != role:
            continue
        total_bytes += sample.total_bytes
        total_requests += sample.num_requests
    if total_requests == 0.0:
        return None
    return total_bytes / total_requests
