"""Predictor facade: profile once, predict any configuration.

Binds a device-independent :class:`~repro.core.profiler.ProfilingReport`
to a *target* cluster: each profiled channel's effective bandwidth is
read from a :class:`~repro.resources.ResourceRegistry` built over the
target devices — the *same* resource abstraction the simulator allocates
from, so Equation 1 and the simulation can never disagree on ``BW`` —
and the resulting :class:`~repro.core.app_model.ApplicationModel`
evaluates Equation 1 at any ``(N, P)``.

This is the workflow of Sections V and VI: four sample runs on a small
cluster, then predictions across core counts, disk types, disk sizes, and
node counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.app_model import ApplicationModel, ApplicationPrediction
from repro.core.profiler import ProfilingReport, StageProfileData
from repro.core.stage_model import StageModel
from repro.core.variables import IoChannel, StageModelVariables
from repro.errors import ModelError
from repro.resources import ResourceRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.storage.device import StorageDevice


class Predictor:
    """Turns a profiling report into runtime predictions for any target."""

    def __init__(self, report: ProfilingReport) -> None:
        self.report = report

    def model_for_devices(
        self,
        devices_by_role: dict[str, StorageDevice],
        network_bandwidth: float | None = None,
        remote_fraction: float = 1.0,
    ) -> ApplicationModel:
        """Build the application model for explicit per-role devices.

        ``devices_by_role`` maps ``"hdfs"`` and ``"local"`` to the device
        models of one (representative) slave node.

        ``network_bandwidth`` (bytes/s per node link) enables the network
        extension: shuffle-read bytes also cross the wire, so each
        shuffle-read channel contributes an extra read-limit group on a
        virtual ``"network"`` device — ``remote_fraction * D_shuffle /
        (N * link_bw)``.  ``remote_fraction`` is the share of shuffle
        bytes living on *other* nodes (``(N-1)/N`` under a uniform
        spread; the default 1.0 is the conservative whole-shuffle bound).
        The paper omits this term because its 10 Gb/s links never bind
        (Section III-B1, after [5]); on slow links it dominates, as
        Trivedi et al. [34] observed moving from 1 Gb/s to 10 Gb/s.
        """
        if network_bandwidth is not None and network_bandwidth <= 0:
            raise ModelError("network bandwidth must be positive when given")
        if not 0.0 <= remote_fraction <= 1.0:
            raise ModelError("remote fraction must be within [0, 1]")
        registry = ResourceRegistry.for_devices(
            devices_by_role, network_bandwidth=network_bandwidth
        )
        stage_models = [
            StageModel(self._stage_variables(stage, registry, remote_fraction))
            for stage in self.report.stages
        ]
        return ApplicationModel(self.report.workload_name, stage_models)

    def model_for_cluster(
        self, cluster: Cluster, network_bandwidth: float | None = None
    ) -> ApplicationModel:
        """Build the application model for a (homogeneous) cluster.

        When ``network_bandwidth`` is given, the remote fraction is taken
        from the cluster's own :class:`~repro.cluster.network.NetworkModel`
        at the cluster's node count — matching what the simulator does
        with a finite network configured.
        """
        sample = cluster.slaves[0]
        for node in cluster.slaves:
            if (
                node.hdfs_device.kind != sample.hdfs_device.kind
                or node.local_device.kind != sample.local_device.kind
            ):
                raise ModelError(
                    "prediction requires homogeneous slave storage; node"
                    f" {node.name} differs from {sample.name}"
                )
        remote_fraction = 1.0
        if network_bandwidth is not None:
            remote_fraction = cluster.network.remote_fraction(cluster.num_slaves)
        return self.model_for_devices(
            {"hdfs": sample.hdfs_device, "local": sample.local_device},
            network_bandwidth=network_bandwidth,
            remote_fraction=remote_fraction,
        )

    def predict(
        self, cluster: Cluster, cores_per_node: int
    ) -> ApplicationPrediction:
        """Predict the full application at ``(cluster, P)``."""
        model = self.model_for_cluster(cluster)
        return model.predict(cluster.num_slaves, cores_per_node)

    def predict_runtime(self, cluster: Cluster, cores_per_node: int) -> float:
        """Predicted application seconds at ``(cluster, P)``."""
        return self.predict(cluster, cores_per_node).t_app

    # -- internals -----------------------------------------------------------

    def _stage_variables(
        self,
        stage: StageProfileData,
        registry: ResourceRegistry,
        remote_fraction: float = 1.0,
    ) -> StageModelVariables:
        channels = []
        for profile in stage.channels:
            if profile.total_bytes == 0:
                continue
            key = ("role", profile.role, profile.is_write)
            if key not in registry:
                raise ModelError(
                    f"stage {stage.name}: no target device for role"
                    f" {profile.role!r}"
                )
            bandwidth = registry.bandwidth(key, profile.request_size)
            channels.append(
                IoChannel(
                    kind=profile.kind,
                    total_bytes=profile.total_bytes,
                    request_size=profile.request_size,
                    bandwidth=bandwidth,
                    is_write=profile.is_write,
                    device=profile.role,
                )
            )
            if ("network",) in registry and profile.kind == "shuffle_read":
                # Reducer-side remote bytes also cross the network; a
                # separate per-device group means the slower of disk and
                # wire sets the read floor.
                network_bytes = profile.total_bytes * remote_fraction
                if network_bytes > 0:
                    channels.append(
                        IoChannel(
                            kind=profile.kind,
                            total_bytes=network_bytes,
                            request_size=profile.request_size,
                            bandwidth=registry.bandwidth(
                                ("network",), profile.request_size
                            ),
                            is_write=False,
                            device="network",
                        )
                    )
        return StageModelVariables(
            name=stage.name,
            num_tasks=stage.num_tasks,
            t_avg=stage.t_avg,
            delta_scale=stage.delta_scale,
            channels=tuple(channels),
            delta_read=stage.delta_read,
            delta_write=stage.delta_write,
            fill_seconds=stage.fill_seconds,
            gc_coeff=stage.gc_coeff,
        )
