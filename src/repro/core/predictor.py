"""Predictor facade: profile once, predict any configuration.

Binds a device-independent :class:`~repro.core.profiler.ProfilingReport`
to a *target* cluster: each profiled channel's effective bandwidth is
looked up in the target device's curve at the channel's request size, and
the resulting :class:`~repro.core.app_model.ApplicationModel` evaluates
Equation 1 at any ``(N, P)``.

This is the workflow of Sections V and VI: four sample runs on a small
cluster, then predictions across core counts, disk types, disk sizes, and
node counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.app_model import ApplicationModel, ApplicationPrediction
from repro.core.profiler import ProfilingReport, StageProfileData
from repro.core.stage_model import StageModel
from repro.core.variables import IoChannel, StageModelVariables
from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.storage.device import StorageDevice


class Predictor:
    """Turns a profiling report into runtime predictions for any target."""

    def __init__(self, report: ProfilingReport) -> None:
        self.report = report

    def model_for_devices(
        self,
        devices_by_role: dict[str, StorageDevice],
        network_bandwidth: float | None = None,
    ) -> ApplicationModel:
        """Build the application model for explicit per-role devices.

        ``devices_by_role`` maps ``"hdfs"`` and ``"local"`` to the device
        models of one (representative) slave node.

        ``network_bandwidth`` (bytes/s per node link) enables the network
        extension: shuffle-read bytes also cross the wire, so each
        shuffle-read channel contributes an extra read-limit group on a
        virtual ``"network"`` device — ``D_shuffle / (N * link_bw)``.  The
        paper omits this term because its 10 Gb/s links never bind
        (Section III-B1, after [5]); on slow links it dominates, as
        Trivedi et al. [34] observed moving from 1 Gb/s to 10 Gb/s.
        """
        if network_bandwidth is not None and network_bandwidth <= 0:
            raise ModelError("network bandwidth must be positive when given")
        stage_models = [
            StageModel(
                self._stage_variables(stage, devices_by_role, network_bandwidth)
            )
            for stage in self.report.stages
        ]
        return ApplicationModel(self.report.workload_name, stage_models)

    def model_for_cluster(self, cluster: Cluster) -> ApplicationModel:
        """Build the application model for a (homogeneous) cluster."""
        sample = cluster.slaves[0]
        for node in cluster.slaves:
            if (
                node.hdfs_device.kind != sample.hdfs_device.kind
                or node.local_device.kind != sample.local_device.kind
            ):
                raise ModelError(
                    "prediction requires homogeneous slave storage; node"
                    f" {node.name} differs from {sample.name}"
                )
        return self.model_for_devices(
            {"hdfs": sample.hdfs_device, "local": sample.local_device}
        )

    def predict(
        self, cluster: Cluster, cores_per_node: int
    ) -> ApplicationPrediction:
        """Predict the full application at ``(cluster, P)``."""
        model = self.model_for_cluster(cluster)
        return model.predict(cluster.num_slaves, cores_per_node)

    def predict_runtime(self, cluster: Cluster, cores_per_node: int) -> float:
        """Predicted application seconds at ``(cluster, P)``."""
        return self.predict(cluster, cores_per_node).t_app

    # -- internals -----------------------------------------------------------

    def _stage_variables(
        self,
        stage: StageProfileData,
        devices_by_role: dict[str, StorageDevice],
        network_bandwidth: float | None = None,
    ) -> StageModelVariables:
        channels = []
        for profile in stage.channels:
            if profile.total_bytes == 0:
                continue
            try:
                device = devices_by_role[profile.role]
            except KeyError:
                raise ModelError(
                    f"stage {stage.name}: no target device for role"
                    f" {profile.role!r}"
                ) from None
            bandwidth = device.bandwidth(profile.request_size, profile.is_write)
            channels.append(
                IoChannel(
                    kind=profile.kind,
                    total_bytes=profile.total_bytes,
                    request_size=profile.request_size,
                    bandwidth=bandwidth,
                    is_write=profile.is_write,
                    device=profile.role,
                )
            )
            if network_bandwidth is not None and profile.kind == "shuffle_read":
                # Reducer-side bytes also cross the network (remote
                # fraction (N-1)/N ~ 1); a separate per-device group means
                # the slower of disk and wire sets the read floor.
                channels.append(
                    IoChannel(
                        kind=profile.kind,
                        total_bytes=profile.total_bytes,
                        request_size=profile.request_size,
                        bandwidth=network_bandwidth,
                        is_write=False,
                        device="network",
                    )
                )
        return StageModelVariables(
            name=stage.name,
            num_tasks=stage.num_tasks,
            t_avg=stage.t_avg,
            delta_scale=stage.delta_scale,
            channels=tuple(channels),
            delta_read=stage.delta_read,
            delta_write=stage.delta_write,
            fill_seconds=stage.fill_seconds,
            gc_coeff=stage.gc_coeff,
        )
