"""Model variable definitions (Section IV-A of the paper).

The paper defines, per stage and per I/O channel:

- ``T`` — I/O throughput per core when there is no bandwidth contention
  (measured with a single-core executor on SSD).
- ``t_avg`` — average execution time of a single task.
- ``t_lat`` — initial latency of the pipelined batches (smaller than
  ``t_avg``; folded into the delta constants in Equation 1).
- ``lambda`` — ratio of entire task execution time to its I/O access time.
- ``BW`` — effective bandwidth at the channel's average request size.
- ``b = BW / T`` — break point in cores, after which cores contend for I/O.
- ``B = lambda * b`` — turning point after which I/O is the bottleneck.
- ``D`` — total data size moved on the channel.
- ``P`` — executor cores per node; ``N`` — slave nodes; ``M`` — tasks.

:class:`StageModelVariables` bundles everything Equation 1 needs for one
stage.  The per-channel quantities live in :class:`IoChannel` so a stage can
carry an arbitrary set of channels (HDFS read, shuffle read, persist read,
HDFS write, shuffle write, persist write ...), of which the model uses the
aggregate read side and write side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError


@dataclass(frozen=True)
class IoChannel:
    """One I/O channel of a stage (e.g. "shuffle read" or "HDFS write").

    Attributes
    ----------
    kind:
        Free-form label; the canonical kinds used by the library are
        ``hdfs_read``, ``hdfs_write``, ``shuffle_read``, ``shuffle_write``,
        ``persist_read`` and ``persist_write``.
    total_bytes:
        ``D`` — total bytes moved on this channel across the whole stage.
    request_size:
        Average request (block) size in bytes, the quantity ``iostat``
        reports as ``avgrq-sz`` (in sectors) and that the effective
        bandwidth tables are keyed on.
    bandwidth:
        ``BW`` — effective bandwidth (bytes/s) of the backing device at
        ``request_size``, i.e. ``table.bandwidth(request_size)``.
    is_write:
        Whether the channel writes (True) or reads (False).
    device:
        Label of the backing device ("hdfs"/"local"/...).  Channels on the
        *same* device serialize (their limit times add); channels on
        different devices proceed in parallel (the limit is their max).
        Defaults to the channel kind when unset.
    """

    kind: str
    total_bytes: float
    request_size: float
    bandwidth: float
    is_write: bool
    device: str = ""

    def __post_init__(self) -> None:
        if self.total_bytes < 0:
            raise ModelError(f"channel {self.kind}: negative data size")
        if self.request_size <= 0:
            raise ModelError(f"channel {self.kind}: request size must be positive")
        if self.bandwidth <= 0:
            raise ModelError(f"channel {self.kind}: bandwidth must be positive")

    @property
    def device_label(self) -> str:
        """Grouping key for the per-device I/O limits."""
        return self.device or self.kind

    @property
    def limit_seconds_per_node(self) -> float:
        """``D / BW`` without the node count: seconds if one node moved it all."""
        return self.total_bytes / self.bandwidth


@dataclass(frozen=True)
class StageModelVariables:
    """Everything Equation 1 needs to predict one stage's runtime.

    Attributes
    ----------
    name:
        Stage label (``"MD"``, ``"BR"``, ``"iteration"``...).
    num_tasks:
        ``M`` — number of tasks / data partitions in the stage.
    t_avg:
        Average single-task execution time in seconds (at the no-contention
        operating point; see :mod:`repro.core.calibration`).
    delta_scale:
        ``delta_scale`` — serial seconds that do not parallelize.
    channels:
        The stage's I/O channels.  For each direction, the limit term is
        computed per device (channels sharing a device add their ``D/BW``
        times) and the slowest device sets the limit (devices work in
        parallel).
    delta_read, delta_write:
        Constants added to the I/O-limit terms in Equation 1.
    """

    name: str
    num_tasks: int
    t_avg: float
    delta_scale: float = 0.0
    channels: tuple[IoChannel, ...] = field(default=())
    delta_read: float = 0.0
    delta_write: float = 0.0
    #: Pipeline-fill latency added to the I/O limit terms (Section IV-B's
    #: "+ t_avg").  ``None`` means one full task time; stages whose tasks
    #: stream their I/O in K chunks fill the pipeline after t_avg / K.
    fill_seconds: float | None = None
    #: JVM garbage-collection coefficient: extra seconds per task per
    #: co-resident task.  Adds a P-independent ``M * gc / N`` term to
    #: ``t_scale`` (see :mod:`repro.core.gc`); 0 recovers the paper's model.
    gc_coeff: float = 0.0

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ModelError(f"stage {self.name}: M must be positive")
        if self.t_avg < 0:
            raise ModelError(f"stage {self.name}: t_avg must be non-negative")
        if self.fill_seconds is not None and self.fill_seconds < 0:
            raise ModelError(f"stage {self.name}: fill time must be non-negative")
        if self.gc_coeff < 0:
            raise ModelError(f"stage {self.name}: gc_coeff must be non-negative")

    @property
    def effective_fill_seconds(self) -> float:
        """Fill latency used by the limit terms (defaults to ``t_avg``)."""
        if self.fill_seconds is None:
            return self.t_avg
        return self.fill_seconds

    @property
    def read_channels(self) -> tuple[IoChannel, ...]:
        """Channels that read data."""
        return tuple(ch for ch in self.channels if not ch.is_write)

    @property
    def write_channels(self) -> tuple[IoChannel, ...]:
        """Channels that write data."""
        return tuple(ch for ch in self.channels if ch.is_write)

    @property
    def read_bytes(self) -> float:
        """``D_read`` — total bytes read in the stage."""
        return sum(ch.total_bytes for ch in self.read_channels)

    @property
    def write_bytes(self) -> float:
        """``D_write`` — total bytes written in the stage."""
        return sum(ch.total_bytes for ch in self.write_channels)

    def read_limit_seconds_per_node(self) -> float:
        """Slowest-device read floor: ``max over devices of sum(D_i / BW_i)``."""
        return _per_device_limit(self.read_channels)

    def write_limit_seconds_per_node(self) -> float:
        """Slowest-device write floor: ``max over devices of sum(D_i / BW_i)``."""
        return _per_device_limit(self.write_channels)


def _per_device_limit(channels: tuple[IoChannel, ...]) -> float:
    """Sum ``D/BW`` within each device group, take the max across groups."""
    per_device: dict[str, float] = {}
    for channel in channels:
        label = channel.device_label
        per_device[label] = per_device.get(label, 0.0) + channel.limit_seconds_per_node
    if not per_device:
        return 0.0
    return max(per_device.values())
