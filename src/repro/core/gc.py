"""JVM garbage-collection overhead: the paper's acknowledged model gap.

Section V-A1 notes that GATK4's MD stage does not scale with cores on SSDs
"because the garbage collection time increases with larger P and dominates
the execution time of MD, which is currently not included in our model and
will be dealt with in future work."  This module is that future work.

Model: concurrent tasks share one JVM heap, so allocation pressure — and
with it each task's GC stall time — grows with the number of co-resident
tasks ``P``.  With a per-task overhead of ``gc_coeff * P`` seconds, the
scale term becomes::

    t_scale = M / (N * P) * (t_avg + gc_coeff * P) + delta_scale
            = M * t_avg / (N * P) + M * gc_coeff / N + delta_scale

The GC contribution is *independent of P*: adding cores stops helping once
``gc_coeff * P`` rivals ``t_avg`` — exactly the flat MD curve of Fig. 3.

:func:`fit_gc_coefficient` extracts ``gc_coeff`` from one extra
high-``P`` sample run on fast disks (a fifth profiling run), the natural
extension of the Section VI-1 procedure.
"""

from __future__ import annotations

from repro.errors import ProfilingError


def gc_seconds_per_task(gc_coeff: float, cores_per_node: int) -> float:
    """Per-task GC stall time at ``P`` co-resident tasks."""
    if gc_coeff < 0:
        raise ProfilingError("GC coefficient must be non-negative")
    if cores_per_node <= 0:
        raise ProfilingError("core count must be positive")
    return gc_coeff * cores_per_node


def gc_scale_term_seconds(
    gc_coeff: float, num_tasks: int, nodes: int
) -> float:
    """The P-independent GC contribution to ``t_scale``: ``M * gc / N``."""
    if num_tasks <= 0 or nodes <= 0:
        raise ProfilingError("task and node counts must be positive")
    return gc_seconds_per_task(gc_coeff, 1) * num_tasks / nodes


def fit_gc_coefficient(
    measured_seconds: float,
    baseline_prediction_seconds: float,
    num_tasks: int,
    nodes: int,
    min_residual_fraction: float = 0.10,
) -> float:
    """Solve ``gc_coeff`` from a high-P sample run on fast disks.

    ``baseline_prediction_seconds`` is the GC-free Equation-1 prediction at
    the sample run's operating point; the residual above it is attributed
    to GC: ``gc_coeff = (measured - baseline) * N / M``.

    Residuals below ``min_residual_fraction`` of the measurement are
    treated as noise and yield 0 — most stages are not GC-bound.
    """
    if num_tasks <= 0 or nodes <= 0:
        raise ProfilingError("task and node counts must be positive")
    if measured_seconds < 0 or baseline_prediction_seconds < 0:
        raise ProfilingError("times must be non-negative")
    residual = measured_seconds - baseline_prediction_seconds
    if residual <= min_residual_fraction * measured_seconds:
        return 0.0
    return residual * nodes / num_tasks
