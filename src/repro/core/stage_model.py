"""Equation 1: the per-stage runtime model.

For each stage ``i``::

    t_stage = max(t_scale, t_read_limit, t_write_limit)

    t_scale       = M / (N * P) * t_avg + delta_scale
    t_read_limit  = D_read  / (N * BW_read)  + fill + delta_read
    t_write_limit = D_write / (N * BW_write) + fill + delta_write

``t_scale`` is the compute-bound estimate that scales with ``N * P``;
the two limit terms are the floor set by the stage's aggregate read and
write traffic against the effective bandwidth at the stage's request
sizes.  Following Section IV-B's phase-3 formula (``D/(N*BW) + t_avg``),
each limit term carries a pipeline-fill latency on top of the transfer
floor — one task time by default, ``t_avg / K`` for stages whose tasks
stream their I/O in K chunks.  Whichever term is largest is the stage's
bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.variables import StageModelVariables
from repro.errors import ModelError

#: Equation-1 term labels in tie-break order.  The *first* maximal term
#: wins the ``max`` in :meth:`StagePrediction.bottleneck`, and the array
#: kernel (:mod:`repro.model.arrays`) encodes per-stage bottlenecks as
#: indexes into this tuple — the two representations are interchangeable
#: by construction.
BOTTLENECK_LABELS: tuple[str, str, str] = ("scale", "read", "write")


@dataclass(frozen=True)
class StagePrediction:
    """The model's output for one stage at one ``(N, P)`` operating point.

    All times are in seconds.  ``bottleneck`` names the term that won the
    ``max`` in Equation 1: ``"scale"``, ``"read"`` or ``"write"``.
    """

    stage_name: str
    nodes: int
    cores_per_node: int
    t_scale: float
    t_read_limit: float
    t_write_limit: float

    @property
    def t_stage(self) -> float:
        """``max(t_scale, t_read_limit, t_write_limit)``."""
        return max(self.t_scale, self.t_read_limit, self.t_write_limit)

    @property
    def bottleneck(self) -> str:
        """Which Equation-1 term dominates this operating point."""
        terms = (self.t_scale, self.t_read_limit, self.t_write_limit)
        # ``max`` keeps the first maximal entry, so ties resolve in
        # BOTTLENECK_LABELS order (scale, then read, then write).
        return BOTTLENECK_LABELS[max(range(3), key=terms.__getitem__)]

    @property
    def io_bound(self) -> bool:
        """True when an I/O limit term (read or write) is the bottleneck."""
        return self.bottleneck != "scale"


class StageModel:
    """Equation 1 for a single stage.

    Parameters
    ----------
    variables:
        The calibrated :class:`~repro.core.variables.StageModelVariables`.
    """

    def __init__(self, variables: StageModelVariables) -> None:
        self.variables = variables

    @property
    def name(self) -> str:
        """Stage label."""
        return self.variables.name

    def t_scale(self, nodes: int, cores_per_node: int) -> float:
        """``M / (N * P) * (t_avg + gc * P) + delta_scale``.

        The GC term (zero by default) expands to a P-independent
        ``M * gc / N`` — the mechanism behind stages whose runtime stops
        improving with cores on fast disks (see :mod:`repro.core.gc`).
        """
        self._check_operating_point(nodes, cores_per_node)
        v = self.variables
        per_task = v.t_avg + v.gc_coeff * cores_per_node
        value = v.num_tasks / (nodes * cores_per_node) * per_task + v.delta_scale
        # A fitted delta_scale can come out negative (two-point calibration
        # on a noisy pair); extrapolating to large N*P must clamp at zero —
        # a stage cannot take negative time, and a negative term would also
        # hand the bottleneck label to the wrong Eq.-1 term.
        return value if value > 0.0 else 0.0

    def t_read_limit(self, nodes: int) -> float:
        """``D_read / (N * BW_read) + fill + delta_read`` (0 when nothing is read)."""
        self._check_nodes(nodes)
        v = self.variables
        per_node = v.read_limit_seconds_per_node()
        if per_node == 0.0:
            return 0.0
        value = per_node / nodes + v.effective_fill_seconds + v.delta_read
        return value if value > 0.0 else 0.0

    def t_write_limit(self, nodes: int) -> float:
        """``D_write / (N * BW_write) + fill + delta_write`` (0 when nothing is written)."""
        self._check_nodes(nodes)
        v = self.variables
        per_node = v.write_limit_seconds_per_node()
        if per_node == 0.0:
            return 0.0
        value = per_node / nodes + v.effective_fill_seconds + v.delta_write
        return value if value > 0.0 else 0.0

    def predict(self, nodes: int, cores_per_node: int) -> StagePrediction:
        """Evaluate Equation 1 at ``(N, P)`` and return all three terms."""
        return StagePrediction(
            stage_name=self.name,
            nodes=nodes,
            cores_per_node=cores_per_node,
            t_scale=self.t_scale(nodes, cores_per_node),
            t_read_limit=self.t_read_limit(nodes),
            t_write_limit=self.t_write_limit(nodes),
        )

    def runtime(self, nodes: int, cores_per_node: int) -> float:
        """``t_stage`` in seconds at ``(N, P)``."""
        return self.predict(nodes, cores_per_node).t_stage

    def saturation_cores(self, nodes: int) -> float | None:
        """Cores per node past which Equation 1 stops improving, or None.

        This is where ``t_scale`` crosses the larger I/O limit term: the
        Equation-1 view of the turning point ``B``.  Returns ``None`` when
        the stage has no I/O floor (no channels), i.e. it scales forever.
        """
        self._check_nodes(nodes)
        v = self.variables
        floor = max(self.t_read_limit(nodes), self.t_write_limit(nodes))
        if floor <= v.delta_scale or v.t_avg == 0.0:
            return None
        return v.num_tasks * v.t_avg / (nodes * (floor - v.delta_scale))

    def _check_operating_point(self, nodes: int, cores_per_node: int) -> None:
        self._check_nodes(nodes)
        if cores_per_node <= 0:
            raise ModelError(
                f"stage {self.name}: cores per node must be positive,"
                f" got {cores_per_node}"
            )

    def _check_nodes(self, nodes: int) -> None:
        if nodes <= 0:
            raise ModelError(f"stage {self.name}: node count must be positive, got {nodes}")

    def __repr__(self) -> str:
        v = self.variables
        return (
            f"StageModel({v.name}: M={v.num_tasks}, t_avg={v.t_avg:.3f}s,"
            f" D_read={v.read_bytes:.0f}B, D_write={v.write_bytes:.0f}B)"
        )
