"""Deriving Equation-1 constants from sample-run measurements.

Section VI-1 explains that ``t_avg`` and ``delta_scale`` cannot be measured
directly; instead the profiler measures ``t_scale`` at two different core
counts (both chosen so that I/O is *not* the bottleneck) and solves the
two-equation linear system::

    t1 = M / (N * P1) * t_avg + delta_scale
    t2 = M / (N * P2) * t_avg + delta_scale

Likewise the I/O delta constants come from a run where the corresponding
channel *is* the bottleneck: ``delta_io = t_measured - D / (N * BW)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProfilingError


@dataclass(frozen=True)
class CalibrationResult:
    """The solved scale-term constants for one stage."""

    t_avg: float
    delta_scale: float


def fit_scale_constants(
    num_tasks: int,
    nodes: int,
    point_a: tuple[int, float],
    point_b: tuple[int, float],
) -> CalibrationResult:
    """Solve ``t_avg`` and ``delta_scale`` from two ``(P, t_scale)`` samples.

    Parameters
    ----------
    num_tasks:
        ``M`` for the stage.
    nodes:
        ``N`` used in both sample runs.
    point_a, point_b:
        ``(cores_per_node, measured_stage_seconds)`` pairs from the first
        and second sample runs (the paper uses ``P = 1`` and ``P = 2``).

    Raises
    ------
    ProfilingError
        If the two samples use the same core count, or the solved constants
        are non-physical (negative ``t_avg``), which indicates the sanity
        check "I/O is not the bottleneck" was violated.
    """
    (cores_a, time_a), (cores_b, time_b) = point_a, point_b
    if cores_a <= 0 or cores_b <= 0:
        raise ProfilingError("sample-run core counts must be positive")
    if cores_a == cores_b:
        raise ProfilingError(
            "calibration needs two different core counts, got"
            f" P={cores_a} twice"
        )
    if nodes <= 0:
        raise ProfilingError(f"node count must be positive, got {nodes}")
    if num_tasks <= 0:
        raise ProfilingError(f"task count must be positive, got {num_tasks}")

    coeff_a = num_tasks / (nodes * cores_a)
    coeff_b = num_tasks / (nodes * cores_b)
    t_avg = (time_a - time_b) / (coeff_a - coeff_b)
    delta_scale = time_a - coeff_a * t_avg
    if t_avg < 0:
        raise ProfilingError(
            "solved a negative t_avg"
            f" ({t_avg:.3f}s) — the runtime did not shrink when cores"
            " increased, so I/O was probably the bottleneck in a sample run;"
            " re-sample with a larger/faster disk (Section VI-1)"
        )
    # A slightly negative delta (measurement noise) is clamped to zero; a
    # large negative delta means the scale term does not describe the stage.
    if delta_scale < 0:
        if abs(delta_scale) > 0.05 * max(time_a, time_b):
            raise ProfilingError(
                f"solved delta_scale={delta_scale:.3f}s, more than 5% below"
                " zero — sample runs are inconsistent with the scale model"
            )
        delta_scale = 0.0
    return CalibrationResult(t_avg=t_avg, delta_scale=delta_scale)


def fit_io_delta(
    measured_seconds: float,
    total_bytes: float,
    nodes: int,
    bandwidth: float,
) -> float:
    """Solve an I/O delta constant: ``delta = t_measured - D / (N * BW)``.

    Used with the third/fourth sample runs where the channel is forced to be
    the bottleneck.  A small negative residual (the transfer estimate being
    slightly pessimistic) is clamped to zero.
    """
    if nodes <= 0:
        raise ProfilingError(f"node count must be positive, got {nodes}")
    if bandwidth <= 0:
        raise ProfilingError(f"bandwidth must be positive, got {bandwidth}")
    if total_bytes < 0:
        raise ProfilingError(f"data size must be non-negative, got {total_bytes}")
    delta = measured_seconds - total_bytes / (nodes * bandwidth)
    return max(delta, 0.0)


def sanity_check_not_io_bound(
    measured_seconds: float,
    total_bytes: float,
    nodes: int,
    bandwidth: float,
    label: str = "stage",
    margin: float = 0.02,
) -> None:
    """Section VI-1's sanity check: require ``t_stage > D / (N * BW)``.

    The first two sample runs are only usable for solving the scale term if
    I/O was genuinely not the bottleneck.  Raises :class:`ProfilingError`
    when the measured time is at (or within ``margin`` of) the I/O floor —
    a measurement *at* the floor means the device, not the CPU, paced the
    stage.
    """
    if total_bytes == 0:
        return
    floor = total_bytes / (nodes * bandwidth)
    if measured_seconds <= floor * (1.0 + margin):
        raise ProfilingError(
            f"{label}: measured {measured_seconds:.1f}s is not above the I/O"
            f" floor {floor:.1f}s — I/O was the bottleneck; double the sampled"
            " disk size and re-run (Section VI-1)"
        )
