"""Workload models: GATK4 plus the five Section-V benchmark applications.

Each workload is a :class:`~repro.workloads.base.WorkloadSpec` — an ordered
list of stages, each stage an ordered list of task groups with per-task I/O
channels and compute time.  The specs carry the paper's exact data sizes
and software-path parameters (``T`` per channel, ``lambda`` per task kind),
and can be rendered into simulator tasks or summarized for the analytic
model.
"""

from repro.workloads.base import (
    ChannelSpec,
    TaskGroupSpec,
    StageSpec,
    WorkloadSpec,
    CHANNEL_KINDS,
)
from repro.workloads.gatk4 import make_gatk4_workload, Gatk4Parameters
from repro.workloads.logistic_regression import (
    make_logistic_regression_workload,
    LogisticRegressionParameters,
)
from repro.workloads.svm import make_svm_workload, SvmParameters
from repro.workloads.pagerank import make_pagerank_workload, PageRankParameters
from repro.workloads.triangle_count import (
    make_triangle_count_workload,
    TriangleCountParameters,
)
from repro.workloads.terasort import make_terasort_workload, TerasortParameters

__all__ = [
    "ChannelSpec",
    "TaskGroupSpec",
    "StageSpec",
    "WorkloadSpec",
    "CHANNEL_KINDS",
    "make_gatk4_workload",
    "Gatk4Parameters",
    "make_logistic_regression_workload",
    "LogisticRegressionParameters",
    "make_svm_workload",
    "SvmParameters",
    "make_pagerank_workload",
    "PageRankParameters",
    "make_triangle_count_workload",
    "TriangleCountParameters",
    "make_terasort_workload",
    "TerasortParameters",
]
