"""Workload specification abstractions.

A workload is described bottom-up:

- :class:`ChannelSpec` — one I/O channel of a task (e.g. "read my 27 MB
  shuffle segment at 30 KB requests from the local device, software path
  capped at T = 60 MB/s").
- :class:`TaskGroupSpec` — ``count`` identical tasks: ordered read
  channels, a compute phase, ordered write channels.
- :class:`StageSpec` — the task groups that run concurrently in one Spark
  stage.
- :class:`WorkloadSpec` — the ordered stages of an application.

Specs can be rendered into :class:`~repro.simulator.task.SimTask` lists for
the simulator, and aggregated (total bytes / request size per channel kind)
for the analytic model and the profiler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.errors import WorkloadError
from repro.simulator.task import ComputePhase, IoPhase, SimTask, TaskPhase

#: Canonical channel kinds and the device role each one targets.
CHANNEL_KINDS: dict[str, str] = {
    "hdfs_read": "hdfs",
    "hdfs_write": "hdfs",
    "shuffle_read": "local",
    "shuffle_write": "local",
    "persist_read": "local",
    "persist_write": "local",
}

_WRITE_KINDS = frozenset(kind for kind in CHANNEL_KINDS if kind.endswith("_write"))


@dataclass(frozen=True)
class ChannelSpec:
    """One per-task I/O channel.

    Attributes
    ----------
    kind:
        One of :data:`CHANNEL_KINDS` — fixes the device role and direction.
    bytes_per_task:
        Bytes each task of the group moves on this channel.
    request_size:
        Request (block) size of the channel's I/O.
    per_core_throughput:
        The software-path cap ``T`` (bytes/s) of one task's stream; ``None``
        means device-limited only.
    """

    kind: str
    bytes_per_task: float
    request_size: float
    per_core_throughput: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in CHANNEL_KINDS:
            raise WorkloadError(
                f"unknown channel kind {self.kind!r}; expected one of"
                f" {sorted(CHANNEL_KINDS)}"
            )
        if self.bytes_per_task < 0:
            raise WorkloadError(f"channel {self.kind}: negative bytes per task")
        if self.request_size <= 0:
            raise WorkloadError(f"channel {self.kind}: request size must be positive")
        if self.per_core_throughput is not None and self.per_core_throughput <= 0:
            raise WorkloadError(f"channel {self.kind}: T must be positive when set")

    @property
    def role(self) -> str:
        """Device role (``"hdfs"`` or ``"local"``) this channel targets."""
        return CHANNEL_KINDS[self.kind]

    @property
    def is_write(self) -> bool:
        """Direction of the channel."""
        return self.kind in _WRITE_KINDS

    def uncontended_seconds(self) -> float:
        """Per-task channel time when only the software path limits it.

        Defined only for capped channels; it is the ``t_io`` that the
        paper's ``lambda`` is measured against.
        """
        if self.per_core_throughput is None:
            raise WorkloadError(
                f"channel {self.kind} has no per-core throughput T;"
                " its uncontended time is device-dependent"
            )
        return self.bytes_per_task / self.per_core_throughput

    def to_phase(self) -> IoPhase:
        """Render as a simulator I/O phase."""
        return IoPhase(
            role=self.role,
            total_bytes=self.bytes_per_task,
            request_size=self.request_size,
            is_write=self.is_write,
            per_stream_cap=self.per_core_throughput,
            via_network=self.kind == "shuffle_read",
        )


@dataclass(frozen=True)
class TaskGroupSpec:
    """``count`` identical tasks: reads, then compute, then writes.

    ``stream_chunks`` models tasks that *stream* their I/O instead of
    staging it: Spark reducers fetch shuffle segments, merge, and write
    output concurrently rather than read-everything-then-compute.  With
    ``stream_chunks = K`` each task executes K interleaved
    (read 1/K, compute 1/K, write 1/K) rounds, which lets one task's
    compute overlap another's I/O even when a stage has only one task
    wave per core.  Totals are unchanged.
    """

    name: str
    count: int
    read_channels: tuple[ChannelSpec, ...] = ()
    compute_seconds: float = 0.0
    write_channels: tuple[ChannelSpec, ...] = ()
    stream_chunks: int = 1
    #: JVM garbage-collection pressure: extra compute seconds per task per
    #: co-resident task (``gc_coeff * P`` per task at P executor cores).
    #: See :mod:`repro.core.gc` — this reproduces the paper's observation
    #: that GC can pin a stage's runtime regardless of core count.
    gc_coeff: float = 0.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise WorkloadError(f"task group {self.name}: count must be positive")
        if self.compute_seconds < 0:
            raise WorkloadError(f"task group {self.name}: negative compute time")
        if self.stream_chunks <= 0:
            raise WorkloadError(f"task group {self.name}: stream_chunks must be positive")
        if self.gc_coeff < 0:
            raise WorkloadError(f"task group {self.name}: gc_coeff must be non-negative")
        for channel in self.read_channels:
            if channel.is_write:
                raise WorkloadError(
                    f"task group {self.name}: write channel {channel.kind}"
                    " listed among reads"
                )
        for channel in self.write_channels:
            if not channel.is_write:
                raise WorkloadError(
                    f"task group {self.name}: read channel {channel.kind}"
                    " listed among writes"
                )

    @property
    def channels(self) -> tuple[ChannelSpec, ...]:
        """All channels, reads first."""
        return self.read_channels + self.write_channels

    def task_phases(
        self, compute_scale: float = 1.0, gc_extra_seconds: float = 0.0
    ) -> tuple[TaskPhase, ...]:
        """The simulator phases of one task of this group.

        ``compute_scale`` scales the *whole task* — compute seconds and
        I/O volumes alike — modeling the partition-size skew real Spark
        tasks have.  The stage builder draws mean-preserving scales, so
        stage totals are unchanged while tasks desynchronize.  With
        ``stream_chunks > 1`` the read/compute/write cycle repeats that
        many times over 1/K of each volume.  ``gc_extra_seconds`` is the
        per-task GC stall (``gc_coeff * P``), folded into the compute
        phase.
        """
        chunks = self.stream_chunks
        phases: list[TaskPhase] = []
        compute_per_chunk = (
            (self.compute_seconds + gc_extra_seconds) * compute_scale / chunks
        )
        for _ in range(chunks):
            for channel in self.read_channels:
                phases.append(_chunk_phase(channel, chunks, compute_scale))
            phases.append(ComputePhase(compute_per_chunk))
            for channel in self.write_channels:
                phases.append(_chunk_phase(channel, chunks, compute_scale))
        return tuple(phases)

    def uncontended_task_seconds(self) -> float:
        """Task duration with zero device contention (capped channels only)."""
        return self.compute_seconds + sum(
            ch.uncontended_seconds()
            for ch in self.channels
            if ch.per_core_throughput is not None
        )


def _chunk_phase(channel: ChannelSpec, chunks: int, scale: float = 1.0) -> IoPhase:
    """One streamed sub-transfer: ``scale``/``chunks`` of the channel.

    The request size is preserved (skew and streaming change the schedule,
    not the block size the device sees).
    """
    phase = channel.to_phase()
    scaled_bytes = phase.total_bytes * scale / chunks
    return IoPhase(
        role=phase.role,
        total_bytes=scaled_bytes,
        request_size=min(phase.request_size, max(scaled_bytes, 1.0)),
        is_write=phase.is_write,
        per_stream_cap=phase.per_stream_cap,
        via_network=phase.via_network,
    )


@dataclass(frozen=True)
class StageSpec:
    """One Spark stage: the task groups that share its task pool.

    ``repeat`` models iterative phases (e.g. 50 logistic-regression
    iterations): the stage executes ``repeat`` identical times back to
    back.  Simulation runs one execution and scales; the analytic model
    sees the aggregate task count and byte totals.
    """

    name: str
    groups: tuple[TaskGroupSpec, ...]
    repeat: int = 1
    #: Relative spread of per-task sizes (compute time and I/O volume
    #: together).  Real Spark partitions are never identical; the skew
    #: staggers tasks so that compute and I/O phases of *different* tasks
    #: overlap (the pipeline execution of Fig. 6) instead of marching in
    #: artificial lockstep waves.  The jitter is deterministic
    #: (low-discrepancy) and mean-preserving, so stage totals and average
    #: task times are unchanged.
    task_jitter: float = 0.20

    def __post_init__(self) -> None:
        if not self.groups:
            raise WorkloadError(f"stage {self.name}: needs at least one task group")
        if self.repeat <= 0:
            raise WorkloadError(f"stage {self.name}: repeat must be positive")
        if not 0.0 <= self.task_jitter < 1.0:
            raise WorkloadError(f"stage {self.name}: jitter must be in [0, 1)")
        names = [group.name for group in self.groups]
        if len(set(names)) != len(names):
            raise WorkloadError(f"stage {self.name}: duplicate group names {names}")

    @property
    def tasks_per_execution(self) -> int:
        """Tasks in one execution of the stage (one iteration)."""
        return sum(group.count for group in self.groups)

    @property
    def max_stream_chunks(self) -> int:
        """Largest ``stream_chunks`` among the stage's groups.

        Determines the pipeline-fill latency the analytic model adds to
        its I/O limit terms: streamed tasks fill the pipeline after
        ``t_avg / K`` instead of a full task time.
        """
        return max(group.stream_chunks for group in self.groups)

    @property
    def num_tasks(self) -> int:
        """``M`` — total tasks across all groups and repeats."""
        return self.tasks_per_execution * self.repeat

    def group(self, name: str) -> TaskGroupSpec:
        """Look up one task group."""
        for candidate in self.groups:
            if candidate.name == name:
                return candidate
        raise WorkloadError(f"stage {self.name}: no group named {name!r}")

    def total_bytes(self, kind: str) -> float:
        """Total bytes moved on one channel kind, including all repeats."""
        if kind not in CHANNEL_KINDS:
            raise WorkloadError(f"unknown channel kind {kind!r}")
        total = 0.0
        for group in self.groups:
            for channel in group.channels:
                if channel.kind == kind:
                    total += channel.bytes_per_task * group.count
        return total * self.repeat

    def channel_summary(self) -> dict[str, tuple[float, float]]:
        """Per channel kind: ``(total_bytes, byte-weighted request size)``.

        Totals include all ``repeat`` executions.
        """
        totals: dict[str, float] = {}
        weighted_rs: dict[str, float] = {}
        for group in self.groups:
            for channel in group.channels:
                stage_bytes = channel.bytes_per_task * group.count * self.repeat
                if stage_bytes == 0:
                    continue
                totals[channel.kind] = totals.get(channel.kind, 0.0) + stage_bytes
                weighted_rs[channel.kind] = (
                    weighted_rs.get(channel.kind, 0.0)
                    + channel.request_size * stage_bytes
                )
        return {
            kind: (totals[kind], weighted_rs[kind] / totals[kind]) for kind in totals
        }

    def build_tasks(
        self,
        cores_per_node: int | None = None,
        jitter_offset: float = 0.0,
    ) -> list[SimTask]:
        """Render ONE execution of the stage as simulator tasks.

        Iterative stages (``repeat > 1``) are simulated once and scaled by
        the workload runner.  Groups are interleaved proportionally so that
        every node receives a representative mix (Spark schedules all of a
        stage's tasks from one pool).  ``cores_per_node`` enables the GC
        pressure model for groups with a nonzero ``gc_coeff``.

        ``jitter_offset`` rotates the deterministic task-skew sequence:
        different offsets are statistically identical "runs" of the same
        stage, which is how the library reproduces the paper's
        average-of-five-runs error bars.
        """
        total = self.tasks_per_execution
        entries: list[tuple[float, int, TaskGroupSpec]] = []
        for group_index, group in enumerate(self.groups):
            stride = total / group.count
            for i in range(group.count):
                entries.append((i * stride, group_index, group))
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        golden = 0.618033988749895
        # Low-discrepancy spread in [1 - jitter, 1 + jitter], deterministic
        # per task index, then normalized per group so each group's total
        # work (bytes and compute) is *exactly* preserved.
        raw_scales = [
            1.0
            + self.task_jitter
            * (2.0 * ((index * golden + jitter_offset) % 1.0) - 1.0)
            for index in range(len(entries))
        ]
        scale_sum: dict[str, float] = {}
        group_size: dict[str, int] = {}
        for (_, _, group), scale in zip(entries, raw_scales):
            scale_sum[group.name] = scale_sum.get(group.name, 0.0) + scale
            group_size[group.name] = group_size.get(group.name, 0) + 1
        tasks = []
        for (_, _, group), scale in zip(entries, raw_scales):
            normalizer = group_size[group.name] / scale_sum[group.name]
            gc_extra = group.gc_coeff * (cores_per_node or 0)
            tasks.append(
                SimTask(
                    phases=group.task_phases(
                        compute_scale=scale * normalizer,
                        gc_extra_seconds=gc_extra,
                    ),
                    group=group.name,
                    gc_seconds=gc_extra * scale * normalizer,
                )
            )
        return tasks


@dataclass(frozen=True)
class WorkloadSpec:
    """An application: ordered stages plus descriptive metadata."""

    name: str
    stages: tuple[StageSpec, ...]
    description: str = ""
    parameters: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stages:
            raise WorkloadError(f"workload {self.name}: needs at least one stage")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise WorkloadError(f"workload {self.name}: duplicate stage names {names}")

    def stage(self, name: str) -> StageSpec:
        """Look up one stage by name."""
        for candidate in self.stages:
            if candidate.name == name:
                return candidate
        raise WorkloadError(f"workload {self.name}: no stage named {name!r}")

    def build_staged_tasks(self) -> list[tuple[str, list[SimTask]]]:
        """Render every stage for :func:`repro.simulator.run.run_application`."""
        return [(stage.name, stage.build_tasks()) for stage in self.stages]


def scale_workload_volume(spec: WorkloadSpec, factor: float) -> WorkloadSpec:
    """Scale a workload's data volume by ``factor`` (Awan-style scale-up).

    Every channel's ``bytes_per_task`` and every group's compute seconds
    (and GC pressure coefficient) scale together, modeling the same job
    run over ``factor``x the input per partition — partition *counts* are
    unchanged, matching the fixed-parallelism scale-up studies of "How
    Data Volume Affects Spark Based Data Analytics".  Request sizes and
    the software-path caps ``T`` are properties of the code path, not the
    volume, and stay put.  ``factor == 1.0`` returns ``spec`` itself so
    fingerprints are preserved exactly.
    """
    if not (factor > 0.0) or not math.isfinite(factor):
        raise WorkloadError(f"volume scale factor must be finite and > 0, got {factor}")
    if factor == 1.0:
        return spec

    def scale_channel(channel: ChannelSpec) -> ChannelSpec:
        return replace(channel, bytes_per_task=channel.bytes_per_task * factor)

    stages = tuple(
        replace(
            stage,
            groups=tuple(
                replace(
                    group,
                    read_channels=tuple(
                        scale_channel(ch) for ch in group.read_channels
                    ),
                    compute_seconds=group.compute_seconds * factor,
                    write_channels=tuple(
                        scale_channel(ch) for ch in group.write_channels
                    ),
                    gc_coeff=group.gc_coeff * factor,
                )
                for group in stage.groups
            ),
        )
        for stage in spec.stages
    )
    return replace(spec, stages=stages)


def compute_seconds_from_lambda(
    lam: float, io_seconds: float
) -> float:
    """CPU seconds of a task whose total/IO time ratio is ``lambda``.

    ``lambda = (t_io + t_cpu) / t_io``, so ``t_cpu = (lambda - 1) * t_io``.
    """
    if lam < 1.0:
        raise WorkloadError(f"lambda must be >= 1, got {lam}")
    if io_seconds < 0:
        raise WorkloadError(f"I/O seconds must be non-negative, got {io_seconds}")
    return (lam - 1.0) * io_seconds
