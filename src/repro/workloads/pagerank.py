"""PageRank on GraphX (Section V-B3, Fig. 10).

Three phases:

- ``graphLoader`` — read the edge list from HDFS, build the graph, and
  (because the working set is 420 GB against 360 GB of cluster storage
  memory) persist it to Spark-local;
- ``iteration`` — 10 rank iterations, each reading the previous
  iteration's persisted RDD and writing the next one (420 GB each way per
  iteration, at multi-megabyte serialization chunks where the HDD/SSD
  gap is moderate — the paper reports 2.2x on this phase);
- ``save`` — write the final ranks to HDFS (small).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.units import GB, MB
from repro.workloads.base import (
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadSpec,
    compute_seconds_from_lambda,
)


@dataclass(frozen=True)
class PageRankParameters:
    """PageRank workload parameters (defaults = the paper's experiment)."""

    num_vertices: int = 20_000_000
    num_partitions: int = 4800
    input_bytes: float = 50 * GB
    graph_rdd_bytes: float = 420 * GB
    ranks_bytes: float = 0.4 * GB
    iterations: int = 10
    hdfs_block_size: float = 128 * MB
    hdfs_replication: int = 2

    hdfs_read_throughput: float = 50 * MB
    hdfs_write_throughput: float = 40 * MB
    persist_read_throughput: float = 60 * MB
    persist_write_throughput: float = 40 * MB
    persist_request_size: float = 4 * MB

    loader_lambda: float = 3.0
    #: Per-task compute in one rank iteration (message aggregation).
    iteration_compute_seconds: float = 16.6
    save_compute_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise WorkloadError("PageRank partition count must be positive")
        if min(self.input_bytes, self.graph_rdd_bytes) <= 0:
            raise WorkloadError("PageRank data sizes must be positive")
        if self.iterations <= 0:
            raise WorkloadError("PageRank iteration count must be positive")


def make_pagerank_workload(params: PageRankParameters | None = None) -> WorkloadSpec:
    """Build the PageRank workload spec."""
    params = params or PageRankParameters()
    per_task_in = params.input_bytes / params.num_partitions
    per_task_graph = params.graph_rdd_bytes / params.num_partitions

    hdfs_read = ChannelSpec(
        kind="hdfs_read",
        bytes_per_task=per_task_in,
        request_size=min(per_task_in, params.hdfs_block_size),
        per_core_throughput=params.hdfs_read_throughput,
    )
    persist_write = ChannelSpec(
        kind="persist_write",
        bytes_per_task=per_task_graph,
        request_size=params.persist_request_size,
        per_core_throughput=params.persist_write_throughput,
    )
    loader_stage = StageSpec(
        name="graphLoader",
        groups=(
            TaskGroupSpec(
                name="load",
                count=params.num_partitions,
                read_channels=(hdfs_read,),
                compute_seconds=compute_seconds_from_lambda(
                    params.loader_lambda, hdfs_read.uncontended_seconds()
                ),
                write_channels=(persist_write,),
            ),
        ),
    )

    persist_read = ChannelSpec(
        kind="persist_read",
        bytes_per_task=per_task_graph,
        request_size=params.persist_request_size,
        per_core_throughput=params.persist_read_throughput,
    )
    iteration_stage = StageSpec(
        name="iteration",
        groups=(
            TaskGroupSpec(
                name="rank",
                count=params.num_partitions,
                read_channels=(persist_read,),
                compute_seconds=params.iteration_compute_seconds,
                write_channels=(persist_write,),
            ),
        ),
        repeat=params.iterations,
    )

    physical_out = params.ranks_bytes * params.hdfs_replication
    per_task_out = physical_out / params.num_partitions
    hdfs_write = ChannelSpec(
        kind="hdfs_write",
        bytes_per_task=per_task_out,
        request_size=min(per_task_out, params.hdfs_block_size),
        per_core_throughput=params.hdfs_write_throughput,
    )
    save_stage = StageSpec(
        name="save",
        groups=(
            TaskGroupSpec(
                name="saveAsTextFile",
                count=params.num_partitions,
                compute_seconds=params.save_compute_seconds,
                write_channels=(hdfs_write,),
            ),
        ),
    )

    return WorkloadSpec(
        name="PageRank",
        stages=(loader_stage, iteration_stage, save_stage),
        description=(
            f"GraphX PageRank, {params.num_vertices / 1e6:.0f}M vertices,"
            f" {params.num_partitions} partitions, {params.iterations}"
            f" iterations over a {params.graph_rdd_bytes / GB:.0f}GB persisted graph"
        ),
        parameters={"params": params},
    )
