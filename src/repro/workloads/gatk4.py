"""The GATK4 workload model (Sections II-B, III, V-A).

Pipeline stages, matching Fig. 1 and Table IV (sizes in GiB):

========  =========  =============  ============  ==========
stage     HDFS read  shuffle write  shuffle read  HDFS write
========  =========  =============  ============  ==========
MD        122        334            0             0
BR        122        0              334           0
SF        122        0              334           166
========  =========  =============  ============  ==========

Geometry and software-path parameters, all from the paper:

- ``M = 973`` map tasks (122 GB input / 128 MB HDFS blocks);
- each reducer reads 27 MB of shuffle data → ``R = 12 667`` reduce tasks,
  and each shuffle-read request is ``27 MB / 973 ≈ 28 KB`` (the measured
  ~30 KB / 60 sectors);
- shuffle write emits one sorted chunk of ``334 GB / 973 ≈ 352 MB`` per
  mapper (the paper quotes ~365 MB);
- HDFS-read per-core throughput ``T = 33 MB/s`` (so the break points are
  ``b = 142/33 = 4.3`` on HDD and ``525/33 = 16`` on SSD, as quoted);
- shuffle-read per-core throughput ``T = 60 MB/s`` with ``lambda = 20`` in
  BR (``b = 480/60 = 8``, ``B = 160`` on SSD) and a smaller ``lambda`` in
  SF;
- MD's ``lambda = 12`` against its HDFS read;
- the BR/SF stages also rescan the 122 GB input for ``nonPrimaryReads``
  with ``lambda = 1.3`` (I/O-dominated filter tasks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.spark.shuffle import ShufflePlan, mappers_for_hdfs_input
from repro.units import GB, MB
from repro.workloads.base import (
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadSpec,
    compute_seconds_from_lambda,
)


@dataclass(frozen=True)
class Gatk4Parameters:
    """Tunable GATK4 workload parameters (defaults = the paper's genome).

    The default input is the HCC1954 30x whole genome: 500 M read pairs,
    122 GB compressed BAM in, 166 GB analysis-ready BAM out, 334 GB of
    shuffle between MD and BR/SF.
    """

    input_bytes: float = 973 * 128 * MB  # ~121.6 GB -> exactly 973 blocks
    output_bytes: float = 166 * GB
    shuffle_bytes: float = 334 * GB
    hdfs_block_size: float = 128 * MB
    hdfs_replication: int = 2
    reducer_target_bytes: float = 27 * MB

    # Software-path throughputs (T, per core, uncontended).
    hdfs_read_throughput: float = 33 * MB
    hdfs_write_throughput: float = 40 * MB
    shuffle_read_throughput: float = 60 * MB
    shuffle_write_throughput: float = 50 * MB

    # Task-time-to-I/O ratios (lambda).
    md_lambda: float = 12.0  # vs. HDFS read (Section V-A1)
    #: JVM GC pressure of the MD stage (seconds per task per co-resident
    #: task).  The paper observes that GC dominates MD at high core counts
    #: on SSDs but leaves it out of the model ("future work"); enable it
    #: here to reproduce Fig. 3's flat MD curve (see repro.core.gc).
    md_gc_coeff: float = 0.0
    br_shuffle_lambda: float = 20.0  # vs. shuffle read (Section V-A2)
    sf_shuffle_lambda: float = 6.0  # "in SF lambda is smaller"
    scan_lambda: float = 1.3  # nonPrimaryReads filter tasks

    def __post_init__(self) -> None:
        for field_name in (
            "input_bytes",
            "output_bytes",
            "shuffle_bytes",
            "hdfs_block_size",
            "reducer_target_bytes",
            "hdfs_read_throughput",
            "hdfs_write_throughput",
            "shuffle_read_throughput",
            "shuffle_write_throughput",
        ):
            if getattr(self, field_name) <= 0:
                raise WorkloadError(f"GATK4 parameter {field_name} must be positive")
        for field_name in ("md_lambda", "br_shuffle_lambda", "sf_shuffle_lambda", "scan_lambda"):
            if getattr(self, field_name) < 1.0:
                raise WorkloadError(f"GATK4 parameter {field_name} must be >= 1")
        if self.md_gc_coeff < 0:
            raise WorkloadError("GATK4 parameter md_gc_coeff must be non-negative")

    @property
    def num_mappers(self) -> int:
        """``M``: one map task per HDFS block of the input BAM."""
        return mappers_for_hdfs_input(self.input_bytes, self.hdfs_block_size)

    @property
    def shuffle_plan(self) -> ShufflePlan:
        """The MD→BR/SF shuffle geometry."""
        return ShufflePlan.from_reducer_target(
            total_bytes=self.shuffle_bytes,
            num_mappers=self.num_mappers,
            target_bytes_per_reducer=self.reducer_target_bytes,
        )


def _scan_group(params: Gatk4Parameters) -> TaskGroupSpec:
    """The nonPrimaryReads rescan: M filter tasks over the HDFS input."""
    per_task = params.input_bytes / params.num_mappers
    read = ChannelSpec(
        kind="hdfs_read",
        bytes_per_task=per_task,
        request_size=min(per_task, params.hdfs_block_size),
        per_core_throughput=params.hdfs_read_throughput,
    )
    compute = compute_seconds_from_lambda(params.scan_lambda, read.uncontended_seconds())
    return TaskGroupSpec(
        name="hdfs_scan",
        count=params.num_mappers,
        read_channels=(read,),
        compute_seconds=compute,
    )


def make_md_stage(params: Gatk4Parameters) -> StageSpec:
    """MarkDuplicate: HDFS read + sort + shuffle write (a map stage)."""
    plan = params.shuffle_plan
    per_task_in = params.input_bytes / params.num_mappers
    read = ChannelSpec(
        kind="hdfs_read",
        bytes_per_task=per_task_in,
        request_size=min(per_task_in, params.hdfs_block_size),
        per_core_throughput=params.hdfs_read_throughput,
    )
    write = ChannelSpec(
        kind="shuffle_write",
        bytes_per_task=plan.bytes_per_mapper,
        request_size=plan.write_request_size,
        per_core_throughput=params.shuffle_write_throughput,
    )
    compute = compute_seconds_from_lambda(params.md_lambda, read.uncontended_seconds())
    mapper_group = TaskGroupSpec(
        name="map",
        count=params.num_mappers,
        read_channels=(read,),
        compute_seconds=compute,
        write_channels=(write,),
        gc_coeff=params.md_gc_coeff,
    )
    return StageSpec(name="MD", groups=(mapper_group,))


def _shuffle_reduce_group(
    params: Gatk4Parameters,
    lam: float,
    name: str,
    write_channels: tuple[ChannelSpec, ...] = (),
) -> TaskGroupSpec:
    """A reduce-side group reading its 27 MB shuffle segment set."""
    plan = params.shuffle_plan
    read = ChannelSpec(
        kind="shuffle_read",
        bytes_per_task=plan.bytes_per_reducer,
        request_size=plan.read_request_size,
        per_core_throughput=params.shuffle_read_throughput,
    )
    compute = compute_seconds_from_lambda(lam, read.uncontended_seconds())
    return TaskGroupSpec(
        name=name,
        count=plan.num_reducers,
        read_channels=(read,),
        compute_seconds=compute,
        write_channels=write_channels,
    )


def make_br_stage(params: Gatk4Parameters) -> StageSpec:
    """BaseRecalibrator: shuffle read (dominant) + the nonPrimaryReads scan."""
    return StageSpec(
        name="BR",
        groups=(
            _shuffle_reduce_group(params, params.br_shuffle_lambda, "shuffle"),
            _scan_group(params),
        ),
    )


def make_sf_stage(params: Gatk4Parameters) -> StageSpec:
    """SaveAsNewAPIHadoopFile: shuffle read + HDFS write of the output BAM."""
    plan = params.shuffle_plan
    physical_out = params.output_bytes * params.hdfs_replication
    per_task_out = physical_out / plan.num_reducers
    write = ChannelSpec(
        kind="hdfs_write",
        bytes_per_task=per_task_out,
        request_size=min(per_task_out, params.hdfs_block_size),
        per_core_throughput=params.hdfs_write_throughput,
    )
    return StageSpec(
        name="SF",
        groups=(
            _shuffle_reduce_group(
                params, params.sf_shuffle_lambda, "shuffle", write_channels=(write,)
            ),
            _scan_group(params),
        ),
    )


def make_gatk4_workload(params: Gatk4Parameters | None = None) -> WorkloadSpec:
    """The full MD → BR → SF pipeline as a workload spec."""
    params = params or Gatk4Parameters()
    return WorkloadSpec(
        name="GATK4",
        stages=(make_md_stage(params), make_br_stage(params), make_sf_stage(params)),
        description=(
            "Spark-based Genome Analysis Toolkit: MarkDuplicate,"
            " BaseRecalibrator, SaveAsNewAPIHadoopFile on a 30x whole genome"
        ),
        parameters={
            "params": params,
            "phase_groups": {"MD": ["MD"], "BR": ["BR"], "SF": ["SF"]},
        },
    )
