"""Terasort (Section V-B5, Fig. 12).

A shuffle-heavy two-stage sort of 10 billion 100-byte records (930 GB):

- ``NF`` (newAPIHadoopFile) — read records from HDFS, range-partition,
  and spill the full dataset to Spark-local as sorted shuffle chunks;
- ``SF`` (saveAsNewAPIHadoopFile) — each reduce task fetches its range
  (issuing sub-megabyte segment reads against every map output), sorts it,
  and writes the output to HDFS.

The paper reports a ~2.6x gap between HDD and SSD as Spark-local on this
workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.spark.shuffle import ShufflePlan, mappers_for_hdfs_input
from repro.units import GB, MB
from repro.workloads.base import (
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadSpec,
    compute_seconds_from_lambda,
)


@dataclass(frozen=True)
class TerasortParameters:
    """Terasort workload parameters (defaults = the paper's dataset)."""

    num_records: int = 10_000_000_000
    record_bytes: int = 100
    total_bytes: float = 930 * GB
    num_reducers: int = 360
    hdfs_block_size: float = 128 * MB
    hdfs_replication: int = 2

    hdfs_read_throughput: float = 33 * MB
    hdfs_write_throughput: float = 40 * MB
    shuffle_write_throughput: float = 50 * MB
    shuffle_read_throughput: float = 60 * MB

    nf_lambda: float = 4.0
    sf_lambda: float = 1.5

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise WorkloadError("Terasort total size must be positive")
        if self.num_reducers <= 0:
            raise WorkloadError("Terasort reducer count must be positive")

    @property
    def num_mappers(self) -> int:
        """One map task per HDFS block of the input."""
        return mappers_for_hdfs_input(self.total_bytes, self.hdfs_block_size)

    @property
    def shuffle_plan(self) -> ShufflePlan:
        """Geometry of the range-partitioning shuffle."""
        return ShufflePlan(
            total_bytes=self.total_bytes,
            num_mappers=self.num_mappers,
            num_reducers=self.num_reducers,
        )


def make_terasort_workload(params: TerasortParameters | None = None) -> WorkloadSpec:
    """Build the Terasort workload spec."""
    params = params or TerasortParameters()
    plan = params.shuffle_plan
    per_task_in = params.total_bytes / params.num_mappers

    hdfs_read = ChannelSpec(
        kind="hdfs_read",
        bytes_per_task=per_task_in,
        request_size=min(per_task_in, params.hdfs_block_size),
        per_core_throughput=params.hdfs_read_throughput,
    )
    shuffle_write = ChannelSpec(
        kind="shuffle_write",
        bytes_per_task=plan.bytes_per_mapper,
        request_size=plan.write_request_size,
        per_core_throughput=params.shuffle_write_throughput,
    )
    nf_stage = StageSpec(
        name="NF",
        groups=(
            TaskGroupSpec(
                name="map",
                count=params.num_mappers,
                read_channels=(hdfs_read,),
                compute_seconds=compute_seconds_from_lambda(
                    params.nf_lambda, hdfs_read.uncontended_seconds()
                ),
                write_channels=(shuffle_write,),
            ),
        ),
    )

    shuffle_read = ChannelSpec(
        kind="shuffle_read",
        bytes_per_task=plan.bytes_per_reducer,
        request_size=plan.read_request_size,
        per_core_throughput=params.shuffle_read_throughput,
    )
    physical_out = params.total_bytes * params.hdfs_replication
    per_task_out = physical_out / params.num_reducers
    hdfs_write = ChannelSpec(
        kind="hdfs_write",
        bytes_per_task=per_task_out,
        request_size=min(per_task_out, params.hdfs_block_size),
        per_core_throughput=params.hdfs_write_throughput,
    )
    sf_stage = StageSpec(
        name="SF",
        groups=(
            TaskGroupSpec(
                name="reduce",
                count=params.num_reducers,
                read_channels=(shuffle_read,),
                compute_seconds=compute_seconds_from_lambda(
                    params.sf_lambda, shuffle_read.uncontended_seconds()
                ),
                write_channels=(hdfs_write,),
                # Reducers stream: fetch a range slice, merge-sort it, and
                # append to the output while fetching the next slice.
                stream_chunks=16,
            ),
        ),
    )

    return WorkloadSpec(
        name="Terasort",
        stages=(nf_stage, sf_stage),
        description=(
            f"Terasort of {params.num_records / 1e9:.0f}B records"
            f" ({params.total_bytes / GB:.0f}GB), {params.num_mappers} map"
            f" and {params.num_reducers} reduce tasks"
        ),
        parameters={"params": params},
    )
