"""Support Vector Machine (Section V-B2, Fig. 9).

Three phases:

- ``dataValidator`` — parse the HDFS input (12 M samples x 1000 features,
  1200 partitions) into an 82 GB RDD that *is* cached in memory;
- ``iteration`` — 10 gradient passes over the cached RDD (pure compute,
  so HDD/SSD are identical here);
- ``subtract`` — a shuffle of 170 GB, split as in Spark into a map stage
  (``subtract_write``, large sorted chunks) and a reduce stage
  (``subtract_read``, small segment reads).  The paper measures a 6.2x
  HDD/SSD gap on this phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.spark.shuffle import ShufflePlan
from repro.units import GB, MB
from repro.workloads.base import (
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadSpec,
    compute_seconds_from_lambda,
)


@dataclass(frozen=True)
class SvmParameters:
    """SVM workload parameters (defaults = the paper's experiment)."""

    num_samples: int = 12_000_000
    num_features: int = 1000
    num_partitions: int = 1200
    input_bytes: float = 150 * GB
    cached_rdd_bytes: float = 82 * GB
    iterations: int = 10
    shuffle_bytes: float = 170 * GB
    num_reducers: int = 400
    hdfs_block_size: float = 128 * MB

    hdfs_read_throughput: float = 50 * MB
    shuffle_write_throughput: float = 50 * MB
    shuffle_read_throughput: float = 60 * MB

    validator_lambda: float = 4.0
    subtract_read_lambda: float = 1.5
    #: Per-task gradient compute on the in-memory cached RDD.
    iteration_task_seconds: float = 3.0
    #: Map-side compute before the shuffle spill.
    subtract_map_compute_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.num_partitions <= 0 or self.num_reducers <= 0:
            raise WorkloadError("SVM partition/reducer counts must be positive")
        if min(self.input_bytes, self.cached_rdd_bytes, self.shuffle_bytes) <= 0:
            raise WorkloadError("SVM data sizes must be positive")
        if self.iterations <= 0:
            raise WorkloadError("SVM iteration count must be positive")

    @property
    def shuffle_plan(self) -> ShufflePlan:
        """Geometry of the subtract shuffle."""
        return ShufflePlan(
            total_bytes=self.shuffle_bytes,
            num_mappers=self.num_partitions,
            num_reducers=self.num_reducers,
        )


def make_svm_workload(params: SvmParameters | None = None) -> WorkloadSpec:
    """Build the SVM workload spec."""
    params = params or SvmParameters()
    plan = params.shuffle_plan
    per_task_in = params.input_bytes / params.num_partitions

    hdfs_read = ChannelSpec(
        kind="hdfs_read",
        bytes_per_task=per_task_in,
        request_size=min(per_task_in, params.hdfs_block_size),
        per_core_throughput=params.hdfs_read_throughput,
    )
    validator_stage = StageSpec(
        name="dataValidator",
        groups=(
            TaskGroupSpec(
                name="parse",
                count=params.num_partitions,
                read_channels=(hdfs_read,),
                compute_seconds=compute_seconds_from_lambda(
                    params.validator_lambda, hdfs_read.uncontended_seconds()
                ),
            ),
        ),
    )

    iteration_stage = StageSpec(
        name="iteration",
        groups=(
            TaskGroupSpec(
                name="gradient",
                count=params.num_partitions,
                compute_seconds=params.iteration_task_seconds,
            ),
        ),
        repeat=params.iterations,
    )

    shuffle_write = ChannelSpec(
        kind="shuffle_write",
        bytes_per_task=plan.bytes_per_mapper,
        request_size=plan.write_request_size,
        per_core_throughput=params.shuffle_write_throughput,
    )
    subtract_write_stage = StageSpec(
        name="subtract_write",
        groups=(
            TaskGroupSpec(
                name="map",
                count=params.num_partitions,
                compute_seconds=params.subtract_map_compute_seconds,
                write_channels=(shuffle_write,),
            ),
        ),
    )

    shuffle_read = ChannelSpec(
        kind="shuffle_read",
        bytes_per_task=plan.bytes_per_reducer,
        request_size=plan.read_request_size,
        per_core_throughput=params.shuffle_read_throughput,
    )
    subtract_read_stage = StageSpec(
        name="subtract_read",
        groups=(
            TaskGroupSpec(
                name="reduce",
                count=params.num_reducers,
                read_channels=(shuffle_read,),
                compute_seconds=compute_seconds_from_lambda(
                    params.subtract_read_lambda, shuffle_read.uncontended_seconds()
                ),
                # Reducers merge while fetching (streamed shuffle read).
                stream_chunks=8,
            ),
        ),
    )

    return WorkloadSpec(
        name="SVM",
        stages=(
            validator_stage,
            iteration_stage,
            subtract_write_stage,
            subtract_read_stage,
        ),
        description=(
            f"MLlib SVM, {params.num_samples / 1e6:.0f}M samples x"
            f" {params.num_features} features, {params.iterations} iterations,"
            f" {params.shuffle_bytes / GB:.0f}GB subtract shuffle"
        ),
        parameters={
            "params": params,
            "phase_groups": {
                "dataValidator": ["dataValidator"],
                "iteration": ["iteration"],
                "subtract": ["subtract_write", "subtract_read"],
            },
        },
    )
