"""Triangle Count on GraphX (Section V-B4, Fig. 11).

Two phases:

- ``graphLoader`` — read the edge list from HDFS; the working set (49 GB)
  is cached in memory;
- ``computeTriangleCount`` — canonicalize the graph via a repartition
  (396 GB shuffle: a map stage writing sorted chunks, a reduce stage
  issuing ~70 KB segment reads) and count triangles (compute-heavy
  reduce side).  The paper measures a 6.5x HDD/SSD gap on this phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.spark.shuffle import ShufflePlan
from repro.units import GB, MB
from repro.workloads.base import (
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadSpec,
    compute_seconds_from_lambda,
)


@dataclass(frozen=True)
class TriangleCountParameters:
    """Triangle-count workload parameters (defaults = the paper's run)."""

    num_vertices: int = 1_000_000
    num_partitions: int = 2400
    input_bytes: float = 30 * GB
    cached_rdd_bytes: float = 49 * GB
    shuffle_bytes: float = 396 * GB
    hdfs_block_size: float = 128 * MB

    hdfs_read_throughput: float = 50 * MB
    shuffle_write_throughput: float = 50 * MB
    shuffle_read_throughput: float = 60 * MB

    loader_lambda: float = 2.0
    count_lambda: float = 10.0
    canonicalize_compute_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise WorkloadError("TC partition count must be positive")
        if min(self.input_bytes, self.shuffle_bytes) <= 0:
            raise WorkloadError("TC data sizes must be positive")

    @property
    def shuffle_plan(self) -> ShufflePlan:
        """Geometry of the canonicalization repartition."""
        return ShufflePlan(
            total_bytes=self.shuffle_bytes,
            num_mappers=self.num_partitions,
            num_reducers=self.num_partitions,
        )


def make_triangle_count_workload(
    params: TriangleCountParameters | None = None,
) -> WorkloadSpec:
    """Build the triangle-count workload spec."""
    params = params or TriangleCountParameters()
    plan = params.shuffle_plan
    per_task_in = params.input_bytes / params.num_partitions

    hdfs_read = ChannelSpec(
        kind="hdfs_read",
        bytes_per_task=per_task_in,
        request_size=min(per_task_in, params.hdfs_block_size),
        per_core_throughput=params.hdfs_read_throughput,
    )
    loader_stage = StageSpec(
        name="graphLoader",
        groups=(
            TaskGroupSpec(
                name="load",
                count=params.num_partitions,
                read_channels=(hdfs_read,),
                compute_seconds=compute_seconds_from_lambda(
                    params.loader_lambda, hdfs_read.uncontended_seconds()
                ),
            ),
        ),
    )

    shuffle_write = ChannelSpec(
        kind="shuffle_write",
        bytes_per_task=plan.bytes_per_mapper,
        request_size=plan.write_request_size,
        per_core_throughput=params.shuffle_write_throughput,
    )
    canonicalize_stage = StageSpec(
        name="canonicalize",
        groups=(
            TaskGroupSpec(
                name="map",
                count=params.num_partitions,
                compute_seconds=params.canonicalize_compute_seconds,
                write_channels=(shuffle_write,),
            ),
        ),
    )

    shuffle_read = ChannelSpec(
        kind="shuffle_read",
        bytes_per_task=plan.bytes_per_reducer,
        request_size=plan.read_request_size,
        per_core_throughput=params.shuffle_read_throughput,
    )
    count_stage = StageSpec(
        name="countTriangles",
        groups=(
            TaskGroupSpec(
                name="count",
                count=params.num_partitions,
                read_channels=(shuffle_read,),
                compute_seconds=compute_seconds_from_lambda(
                    params.count_lambda, shuffle_read.uncontended_seconds()
                ),
            ),
        ),
    )

    return WorkloadSpec(
        name="TriangleCount",
        stages=(loader_stage, canonicalize_stage, count_stage),
        description=(
            f"GraphX triangle count, {params.num_vertices / 1e6:.0f}M vertices,"
            f" {params.num_partitions} partitions,"
            f" {params.shuffle_bytes / GB:.0f}GB canonicalization shuffle"
        ),
        parameters={
            "params": params,
            "phase_groups": {
                "graphLoader": ["graphLoader"],
                "computeTriangleCount": ["canonicalize", "countTriangles"],
            },
        },
    )
