"""Synthetic data generators for the functional engine (SparkBench-style).

These produce *small* in-memory datasets with the same statistical shape
as the paper's benchmark inputs, for use with
:class:`~repro.spark.context.DoppioContext` in tests and examples:
labelled example lines for LR/SVM, edge lists for PageRank and triangle
counting, and fixed-width records for Terasort.  All generators are
deterministic given their seed.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def generate_labelled_points(
    num_examples: int, num_features: int, seed: int = 7
) -> list[str]:
    """Text lines ``label f1 f2 ...`` for LR/SVM (SparkBench format).

    Labels are generated from a random linear separator plus noise so the
    data is actually learnable.
    """
    if num_examples <= 0 or num_features <= 0:
        raise WorkloadError("need positive example and feature counts")
    rng = _rng(seed)
    weights = [rng.uniform(-1.0, 1.0) for _ in range(num_features)]
    lines = []
    for _ in range(num_examples):
        features = [rng.uniform(-1.0, 1.0) for _ in range(num_features)]
        margin = sum(w * x for w, x in zip(weights, features))
        label = 1 if margin + rng.gauss(0.0, 0.1) > 0 else 0
        lines.append(f"{label} " + " ".join(f"{x:.4f}" for x in features))
    return lines


def generate_edge_list(
    num_vertices: int, num_edges: int, seed: int = 11
) -> list[tuple[int, int]]:
    """Random directed edges (no self-loops), for PageRank/TriangleCount."""
    if num_vertices <= 1 or num_edges <= 0:
        raise WorkloadError("need >= 2 vertices and positive edge count")
    rng = _rng(seed)
    edges = []
    while len(edges) < num_edges:
        src = rng.randrange(num_vertices)
        dst = rng.randrange(num_vertices)
        if src != dst:
            edges.append((src, dst))
    return edges


def generate_triangle_rich_graph(num_triangles: int, seed: int = 13) -> list[tuple[int, int]]:
    """A graph with a known triangle count: disjoint 3-cliques.

    Useful for asserting the functional triangle counter's correctness.
    """
    if num_triangles <= 0:
        raise WorkloadError("need a positive triangle count")
    edges = []
    for t in range(num_triangles):
        a, b, c = 3 * t, 3 * t + 1, 3 * t + 2
        edges.extend([(a, b), (b, c), (a, c)])
    rng = _rng(seed)
    rng.shuffle(edges)
    return edges


def generate_terasort_records(num_records: int, seed: int = 17) -> list[tuple[str, str]]:
    """``(key, payload)`` records with 10-char keys, like Teragen output."""
    if num_records <= 0:
        raise WorkloadError("need a positive record count")
    rng = _rng(seed)
    alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    records = []
    for index in range(num_records):
        key = "".join(rng.choice(alphabet) for _ in range(10))
        records.append((key, f"payload-{index:08d}"))
    return records


def generate_genome_reads(
    num_reads: int, read_length: int = 101, duplicate_fraction: float = 0.1, seed: int = 19
) -> list[tuple[str, int, str]]:
    """``(chromosome, position, sequence)`` reads with planted duplicates.

    A miniature stand-in for a BAM file: ``duplicate_fraction`` of the
    reads share alignment position with an earlier read, which is what
    MarkDuplicate groups by (Fig. 1's groupByKey on alignment info).
    """
    if num_reads <= 0:
        raise WorkloadError("need a positive read count")
    if not 0.0 <= duplicate_fraction < 1.0:
        raise WorkloadError("duplicate fraction must be in [0, 1)")
    rng = _rng(seed)
    bases = "ACGT"
    chromosomes = [f"chr{i}" for i in range(1, 23)]
    reads: list[tuple[str, int, str]] = []
    for _ in range(num_reads):
        if reads and rng.random() < duplicate_fraction:
            chrom, pos, _ = reads[rng.randrange(len(reads))]
        else:
            chrom = rng.choice(chromosomes)
            pos = rng.randrange(1, 1_000_000)
        seq = "".join(rng.choice(bases) for _ in range(read_length))
        reads.append((chrom, pos, seq))
    return reads
