"""Logistic Regression (Section V-B1, Fig. 8).

A typical iterative MLlib algorithm with two phases:

- ``dataValidator`` — parse the HDFS input into the ``parsedData`` RDD;
- ``iteration`` — 50 gradient passes over ``parsedData``.

Two SparkBench datasets:

- **small** — 1 200 M examples x 20 features; ``parsedData`` is 280 GB and
  *fits* in the ten-slave cluster's storage memory (40 % of 10 x 90 GB =
  360 GB), so iterations are pure compute and HDD/SSD differ only through
  the HDFS read (up to 2x on the dataValidator phase, Fig. 8a).
- **large** — 4 000 M examples; ``parsedData`` is 990 GB, cannot be cached,
  and is persisted to Spark-local, so every iteration re-reads it from
  disk at ~512 KB deserialization chunks — where the HDD/SSD gap is ~7x
  (the paper reports 7.0x on the iteration phase, Fig. 8b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.spark.conf import SparkConf
from repro.spark.memory import fits_in_storage_memory
from repro.spark.shuffle import mappers_for_hdfs_input
from repro.units import GB, KB, MB
from repro.workloads.base import (
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadSpec,
    compute_seconds_from_lambda,
)


@dataclass(frozen=True)
class LogisticRegressionParameters:
    """LR workload parameters; defaults describe the *small* dataset."""

    num_examples: int = 1_200_000_000
    num_features: int = 20
    input_bytes: float = 240 * GB
    parsed_rdd_bytes: float = 280 * GB
    iterations: int = 50
    hdfs_block_size: float = 128 * MB

    hdfs_read_throughput: float = 50 * MB
    persist_write_throughput: float = 40 * MB
    persist_read_throughput: float = 100 * MB
    persist_write_request_size: float = 4 * MB
    persist_read_request_size: float = 512 * KB

    validator_lambda: float = 6.4
    iteration_lambda: float = 2.0
    #: Per-task gradient compute when the RDD is served from memory.
    cached_iteration_task_seconds: float = 5.6

    def __post_init__(self) -> None:
        if self.num_examples <= 0 or self.num_features <= 0:
            raise WorkloadError("LR needs positive example/feature counts")
        if self.input_bytes <= 0 or self.parsed_rdd_bytes <= 0:
            raise WorkloadError("LR data sizes must be positive")
        if self.iterations <= 0:
            raise WorkloadError("LR iteration count must be positive")

    @property
    def num_partitions(self) -> int:
        """Partitions of ``parsedData`` (one per HDFS input block)."""
        return mappers_for_hdfs_input(self.input_bytes, self.hdfs_block_size)


#: The paper's large dataset: 4 000 M examples, 990 GB parsedData.
LARGE_DATASET = LogisticRegressionParameters(
    num_examples=4_000_000_000,
    input_bytes=800 * GB,
    parsed_rdd_bytes=990 * GB,
)


def make_logistic_regression_workload(
    params: LogisticRegressionParameters | None = None,
    num_slaves: int = 10,
    conf: SparkConf | None = None,
) -> WorkloadSpec:
    """Build the LR workload; caching is decided from the cluster's memory."""
    params = params or LogisticRegressionParameters()
    conf = conf or SparkConf()
    cached = fits_in_storage_memory(params.parsed_rdd_bytes, num_slaves, conf)
    partitions = params.num_partitions
    per_task_in = params.input_bytes / partitions
    per_task_parsed = params.parsed_rdd_bytes / partitions

    hdfs_read = ChannelSpec(
        kind="hdfs_read",
        bytes_per_task=per_task_in,
        request_size=min(per_task_in, params.hdfs_block_size),
        per_core_throughput=params.hdfs_read_throughput,
    )
    validator_compute = compute_seconds_from_lambda(
        params.validator_lambda, hdfs_read.uncontended_seconds()
    )
    validator_writes: tuple[ChannelSpec, ...] = ()
    if not cached:
        validator_writes = (
            ChannelSpec(
                kind="persist_write",
                bytes_per_task=per_task_parsed,
                request_size=params.persist_write_request_size,
                per_core_throughput=params.persist_write_throughput,
            ),
        )
    validator_stage = StageSpec(
        name="dataValidator",
        groups=(
            TaskGroupSpec(
                name="parse",
                count=partitions,
                read_channels=(hdfs_read,),
                compute_seconds=validator_compute,
                write_channels=validator_writes,
            ),
        ),
    )

    if cached:
        iteration_group = TaskGroupSpec(
            name="gradient",
            count=partitions,
            compute_seconds=params.cached_iteration_task_seconds,
        )
    else:
        persist_read = ChannelSpec(
            kind="persist_read",
            bytes_per_task=per_task_parsed,
            request_size=params.persist_read_request_size,
            per_core_throughput=params.persist_read_throughput,
        )
        iteration_group = TaskGroupSpec(
            name="gradient",
            count=partitions,
            read_channels=(persist_read,),
            compute_seconds=compute_seconds_from_lambda(
                params.iteration_lambda, persist_read.uncontended_seconds()
            ),
        )
    iteration_stage = StageSpec(
        name="iteration",
        groups=(iteration_group,),
        repeat=params.iterations,
    )

    return WorkloadSpec(
        name="LogisticRegression",
        stages=(validator_stage, iteration_stage),
        description=(
            f"MLlib logistic regression, {params.num_examples / 1e6:.0f}M examples"
            f" x {params.num_features} features, {params.iterations} iterations,"
            f" parsedData {'cached in memory' if cached else 'persisted on disk'}"
        ),
        parameters={"params": params, "cached": cached, "num_slaves": num_slaves},
    )
