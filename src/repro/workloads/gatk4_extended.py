"""The extended GATK4 pipeline: BWA and HaplotypeCaller.

The paper's conclusion: "GATK4 official release on January 2018 includes
Burrows-Wheeler Aligner (BWA) and HaplotypeCaller (HC) in addition to
MarkDuplicate (MD), BaseRecalibrator (BR) and SaveAsNewAPIHadoopFile (SF).
... We consider to include BWA and HC in our future work."  This module is
that future work, modeled with the same machinery:

- **BWA** precedes MD: it reads raw FASTQ reads from HDFS (~1.8x the BAM
  size, as FASTQ is less compact), aligns them against the reference
  (heavily compute-bound — alignment is the classic CPU hog, lambda ~ 30),
  and emits the aligned BAM that MD consumes.  Spark BWA implementations
  shuffle reads to balance alignment work; we model the output as a
  shuffle write of the aligned data.
- **HC** follows BR: it re-reads the recalibrated reads (the same
  markedReads lineage SF uses — a shuffle read), performs local
  re-assembly per active region (compute-bound, lambda ~ 15), and writes
  the called variants (a VCF, far smaller than the reads) to HDFS.

Parameter values are estimates consistent with the paper's MD/BR/SF
numbers (same genome, same T throughputs) — the paper gives no
measurements for these stages, so treat absolute BWA/HC runtimes as
projections, not reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.units import GB, MB
from repro.workloads.base import (
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadSpec,
    compute_seconds_from_lambda,
)
from repro.workloads.gatk4 import (
    Gatk4Parameters,
    make_br_stage,
    make_md_stage,
    make_sf_stage,
)


@dataclass(frozen=True)
class ExtendedGatk4Parameters:
    """BWA and HC additions on top of :class:`Gatk4Parameters`."""

    base: Gatk4Parameters = Gatk4Parameters()

    #: Raw FASTQ input is bulkier than the aligned compressed BAM.
    fastq_bytes: float = 220 * GB
    #: Aligned output BWA hands to MD (becomes MD's input lineage).
    aligned_bytes: float = 973 * 128 * MB
    bwa_lambda: float = 30.0

    #: HC re-reads the recalibrated reads (same 334 GB shuffle lineage).
    hc_lambda: float = 15.0
    #: Called variants (VCF) are small relative to the reads.
    vcf_bytes: float = 4 * GB

    def __post_init__(self) -> None:
        if self.fastq_bytes <= 0 or self.aligned_bytes <= 0:
            raise WorkloadError("extended GATK4 data sizes must be positive")
        if self.bwa_lambda < 1.0 or self.hc_lambda < 1.0:
            raise WorkloadError("extended GATK4 lambdas must be >= 1")
        if self.vcf_bytes < 0:
            raise WorkloadError("VCF size must be non-negative")

    @property
    def num_bwa_tasks(self) -> int:
        """One alignment task per FASTQ block."""
        import math

        return int(math.ceil(self.fastq_bytes / self.base.hdfs_block_size))


def make_bwa_stage(params: ExtendedGatk4Parameters) -> StageSpec:
    """Burrows-Wheeler alignment: FASTQ in, aligned shuffle chunks out."""
    base = params.base
    count = params.num_bwa_tasks
    per_task_in = params.fastq_bytes / count
    read = ChannelSpec(
        kind="hdfs_read",
        bytes_per_task=per_task_in,
        request_size=min(per_task_in, base.hdfs_block_size),
        per_core_throughput=base.hdfs_read_throughput,
    )
    per_task_out = params.aligned_bytes / count
    write = ChannelSpec(
        kind="shuffle_write",
        bytes_per_task=per_task_out,
        request_size=per_task_out,
        per_core_throughput=base.shuffle_write_throughput,
    )
    return StageSpec(
        name="BWA",
        groups=(
            TaskGroupSpec(
                name="align",
                count=count,
                read_channels=(read,),
                compute_seconds=compute_seconds_from_lambda(
                    params.bwa_lambda, read.uncontended_seconds()
                ),
                write_channels=(write,),
            ),
        ),
    )


def make_hc_stage(params: ExtendedGatk4Parameters) -> StageSpec:
    """HaplotypeCaller: re-read recalibrated reads, call variants."""
    base = params.base
    plan = base.shuffle_plan
    read = ChannelSpec(
        kind="shuffle_read",
        bytes_per_task=plan.bytes_per_reducer,
        request_size=plan.read_request_size,
        per_core_throughput=base.shuffle_read_throughput,
    )
    physical_vcf = params.vcf_bytes * base.hdfs_replication
    per_task_out = physical_vcf / plan.num_reducers
    write = ChannelSpec(
        kind="hdfs_write",
        bytes_per_task=per_task_out,
        request_size=max(per_task_out, 1.0),
        per_core_throughput=base.hdfs_write_throughput,
    )
    return StageSpec(
        name="HC",
        groups=(
            TaskGroupSpec(
                name="call",
                count=plan.num_reducers,
                read_channels=(read,),
                compute_seconds=compute_seconds_from_lambda(
                    params.hc_lambda, read.uncontended_seconds()
                ),
                write_channels=(write,),
            ),
        ),
    )


def make_extended_gatk4_workload(
    params: ExtendedGatk4Parameters | None = None,
) -> WorkloadSpec:
    """The five-stage January-2018 pipeline: BWA → MD → BR → SF → HC."""
    params = params or ExtendedGatk4Parameters()
    base = params.base
    return WorkloadSpec(
        name="GATK4-extended",
        stages=(
            make_bwa_stage(params),
            make_md_stage(base),
            make_br_stage(base),
            make_sf_stage(base),
            make_hc_stage(params),
        ),
        description=(
            "Extended GATK4 pipeline (Jan-2018 release): BWA alignment,"
            " MarkDuplicate, BaseRecalibrator, SaveAsNewAPIHadoopFile,"
            " HaplotypeCaller"
        ),
        parameters={"params": params},
    )
