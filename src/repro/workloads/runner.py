"""Workload-level measurement driver.

Bridges :class:`~repro.workloads.base.WorkloadSpec` and the simulator:
each stage's tasks are built and simulated; iterative stages
(``repeat > 1``) are simulated once and scaled — their iterations are
statistically identical, exactly the assumption the paper's per-stage
model makes.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkModel
from repro.faults.plan import FaultPlan
from repro.resilience import ResiliencePolicy
from repro.simulator.run import (
    ApplicationMeasurement,
    StageMeasurement,
    run_stage,
)
from repro.workloads.base import StageSpec, WorkloadSpec


def measure_stage(
    cluster: Cluster,
    cores_per_node: int,
    spec: StageSpec,
    run_index: int = 0,
    network: NetworkModel | None = None,
    faults: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
) -> StageMeasurement:
    """Simulate one stage spec (all repeats) and return its measurement.

    ``run_index`` selects a statistically identical but distinct task-skew
    realization — "the i-th run" for error-bar reporting.
    """
    single = run_stage(
        cluster,
        cores_per_node,
        spec.build_tasks(
            cores_per_node=cores_per_node,
            jitter_offset=run_index * 0.381966011,
        ),
        name=spec.name,
        network=network,
        faults=faults,
        resilience=resilience,
    )
    if spec.repeat == 1:
        return single
    return dataclasses.replace(
        single,
        makespan=single.makespan * spec.repeat,
        num_tasks=single.num_tasks * spec.repeat,
        task_counts={
            group: count * spec.repeat for group, count in single.task_counts.items()
        },
        read_bytes=single.read_bytes * spec.repeat,
        write_bytes=single.write_bytes * spec.repeat,
    )


def measure_workload(
    cluster: Cluster,
    cores_per_node: int,
    workload: WorkloadSpec,
    run_index: int = 0,
    network: NetworkModel | None = None,
    faults: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
) -> ApplicationMeasurement:
    """Simulate every stage of a workload back to back."""
    measurements = tuple(
        measure_stage(
            cluster, cores_per_node, spec,
            run_index=run_index, network=network, faults=faults,
            resilience=resilience,
        )
        for spec in workload.stages
    )
    return ApplicationMeasurement(name=workload.name, stages=measurements)


def measure_workload_repeated(
    cluster: Cluster,
    cores_per_node: int,
    workload: WorkloadSpec,
    runs: int = 5,
    network: NetworkModel | None = None,
    faults: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
) -> list[ApplicationMeasurement]:
    """The paper's protocol: average of five runs with error bars.

    Each run uses a distinct (deterministic) task-skew realization; callers
    report mean/min/max per stage across the returned measurements.
    """
    if runs <= 0:
        raise ValueError("need at least one run")
    return [
        measure_workload(
            cluster, cores_per_node, workload,
            run_index=index, network=network, faults=faults,
            resilience=resilience,
        )
        for index in range(runs)
    ]
