"""Workload sources: every input format resolves to one canonical pair.

The paper's loop — profile, model, validate, optimize — historically had
three separate entry paths in this library: hand-written
:class:`~repro.workloads.base.WorkloadSpec` objects, functional RDD
programs executed on a :class:`~repro.spark.context.DoppioContext`, and
serialized :class:`~repro.core.profiler.ProfilingReport` JSON files.  A
:class:`WorkloadSource` unifies them: each resolves into a
:class:`ResolvedWorkload` holding

- a **spec** — the simulatable description (the "exp" side), and
- a **report** — the fitted Equation-1 constants (the "model" side),

plus content fingerprints for the result cache.  Resolution is the only
potentially expensive step (profiling a spec simulates four sample runs);
it consults the cache when one is given.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.profiler import Profiler, ProfilingReport, StageProfileData
from repro.core.serialization import load_report, report_to_dict
from repro.errors import WorkloadError
from repro.pipeline.fingerprint import fingerprint
from repro.spark.stageinfo import StageRuntimeProfile, profiles_to_workload
from repro.storage.device import make_ssd
from repro.workloads.base import (
    CHANNEL_KINDS,
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadSpec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.cache import ResultCache


@dataclass(frozen=True)
class ResolvedWorkload:
    """The canonical (spec, report) pair every source resolves to."""

    spec: WorkloadSpec
    report: ProfilingReport
    spec_fingerprint: str
    report_fingerprint: str


@runtime_checkable
class WorkloadSource(Protocol):
    """Anything that can resolve into a canonical spec + profile pair."""

    def describe(self) -> str:
        """Human-readable one-liner for reports and CLI output."""
        ...

    def resolve(self, cache: ResultCache | None = None) -> ResolvedWorkload:
        """Produce the canonical pair (cached where possible)."""
        ...


def _report_key(
    spec_fp: str, nodes: int, fit_gc: bool, calibration: tuple[int, int],
    stress: int,
) -> str:
    return (
        f"{spec_fp}/profile-N{nodes}-gc{int(fit_gc)}"
        f"-cal{calibration[0]}-{calibration[1]}-stress{stress}"
    )


class SpecSource:
    """A hand-written workload spec; the profile is fitted on demand.

    Parameters
    ----------
    spec:
        The workload to resolve.
    profile_nodes:
        ``N`` for the four-sample-run profiling procedure (paper: 3).
    fit_gc:
        Also fit the JVM GC coefficient (see :class:`Profiler`).
    calibration_cores / stress_cores:
        Forwarded to :class:`Profiler`.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        profile_nodes: int = 3,
        fit_gc: bool = False,
        calibration_cores: tuple[int, int] = (1, 2),
        stress_cores: int = 16,
    ) -> None:
        self.spec = spec
        self.profile_nodes = profile_nodes
        self.fit_gc = fit_gc
        self.calibration_cores = calibration_cores
        self.stress_cores = stress_cores
        self._spec_fp = fingerprint(spec)
        self._resolved: ResolvedWorkload | None = None

    def describe(self) -> str:
        return f"spec:{self.spec.name}"

    def spec_only(self) -> tuple[WorkloadSpec, str]:
        """The simulatable half without triggering profiling."""
        return self.spec, self._spec_fp

    def resolve(self, cache: ResultCache | None = None) -> ResolvedWorkload:
        if self._resolved is not None:
            return self._resolved
        key = _report_key(
            self._spec_fp, self.profile_nodes, self.fit_gc,
            self.calibration_cores, self.stress_cores,
        )
        report = cache.get_report(key) if cache is not None else None
        if report is None:
            report = Profiler(
                self.spec,
                nodes=self.profile_nodes,
                calibration_cores=self.calibration_cores,
                stress_cores=self.stress_cores,
                fit_gc=self.fit_gc,
            ).profile()
            if cache is not None:
                cache.put_report(key, report)
        self._resolved = ResolvedWorkload(
            spec=self.spec,
            report=report,
            spec_fingerprint=self._spec_fp,
            report_fingerprint=fingerprint(report_to_dict(report)),
        )
        return self._resolved


class ResolvedSource:
    """An already-matched (spec, report) pair — resolution is free.

    The adapter for callers that profiled up front (sweeps, benchmarks
    holding session-scoped fixtures): no re-profiling, no cache traffic.
    """

    def __init__(self, spec: WorkloadSpec, report: ProfilingReport) -> None:
        self._resolved = ResolvedWorkload(
            spec=spec,
            report=report,
            spec_fingerprint=fingerprint(spec),
            report_fingerprint=fingerprint(report_to_dict(report)),
        )

    def describe(self) -> str:
        return f"resolved:{self._resolved.spec.name}"

    def spec_only(self) -> tuple[WorkloadSpec, str]:
        return self._resolved.spec, self._resolved.spec_fingerprint

    def resolve(self, cache: ResultCache | None = None) -> ResolvedWorkload:
        return self._resolved


class RddSource(SpecSource):
    """A functional RDD program's recorded stage profiles.

    Accepts either a :class:`~repro.spark.context.DoppioContext` (its
    ``stage_profiles`` are snapshotted) or an explicit profile list, turns
    them into a workload spec via
    :func:`~repro.spark.stageinfo.profiles_to_workload`, and then behaves
    like a :class:`SpecSource` — closing the loop from *running a real
    (small) application* to *modeling it at scale*.
    """

    def __init__(
        self,
        name: str,
        program,
        profile_nodes: int = 3,
        fit_gc: bool = False,
        **spec_kwargs,
    ) -> None:
        profiles = getattr(program, "stage_profiles", program)
        if not isinstance(profiles, (list, tuple)) or not all(
            isinstance(profile, StageRuntimeProfile) for profile in profiles
        ):
            raise WorkloadError(
                "RddSource needs a DoppioContext or a list of"
                " StageRuntimeProfile records"
            )
        spec = profiles_to_workload(name, list(profiles), **spec_kwargs)
        super().__init__(spec, profile_nodes=profile_nodes, fit_gc=fit_gc)

    def describe(self) -> str:
        return f"rdd:{self.spec.name}"


class ReportSource:
    """A fitted profiling report (object or JSON path).

    The report *is* the model side; the simulatable spec is reconstructed
    by :func:`spec_from_report` (a replay approximation — per-channel
    software caps are not stored in reports, so replayed "exp" makespans
    are close to but not bit-identical with the original spec's).
    """

    def __init__(self, report: ProfilingReport | str | Path) -> None:
        if isinstance(report, (str, Path)):
            report = load_report(report)
        self.report = report
        self._report_fp = fingerprint(report_to_dict(report))
        self._resolved: ResolvedWorkload | None = None

    def describe(self) -> str:
        return f"report:{self.report.workload_name}"

    def spec_only(self) -> tuple[WorkloadSpec, str]:
        resolved = self.resolve()
        return resolved.spec, resolved.spec_fingerprint

    def resolve(self, cache: ResultCache | None = None) -> ResolvedWorkload:
        if self._resolved is None:
            spec = spec_from_report(self.report)
            self._resolved = ResolvedWorkload(
                spec=spec,
                report=self.report,
                spec_fingerprint=fingerprint(spec),
                report_fingerprint=self._report_fp,
            )
        return self._resolved


def spec_from_report(report: ProfilingReport) -> WorkloadSpec:
    """Reconstruct a simulatable workload spec from fitted constants.

    Per stage: one task group of ``M`` tasks whose channels carry the
    profiled per-task bytes at the profiled request sizes.  The compute
    phase is ``t_avg`` minus the per-task I/O time on the calibration
    (SSD) devices — the operating point ``t_avg`` was fitted at — and the
    stream-chunk count is recovered from ``fill_seconds = t_avg / K``.
    """
    stages = []
    for stage in report.stages:
        stages.append(
            StageSpec(
                name=stage.name,
                groups=(_group_from_profile(stage),),
            )
        )
    return WorkloadSpec(
        name=report.workload_name,
        stages=tuple(stages),
        description=f"replayed from a profiling report (N={report.nodes})",
    )


def _group_from_profile(stage: StageProfileData) -> TaskGroupSpec:
    if stage.num_tasks <= 0:
        raise WorkloadError(f"stage {stage.name}: report has no tasks")
    reference = make_ssd()
    reads: list[ChannelSpec] = []
    writes: list[ChannelSpec] = []
    io_seconds = 0.0
    for channel in stage.channels:
        if channel.kind not in CHANNEL_KINDS:
            raise WorkloadError(
                f"stage {stage.name}: unknown channel kind {channel.kind!r}"
            )
        per_task = channel.total_bytes / stage.num_tasks
        if per_task <= 0:
            continue
        spec_channel = ChannelSpec(
            kind=channel.kind,
            bytes_per_task=per_task,
            request_size=channel.request_size,
        )
        io_seconds += per_task / reference.bandwidth(
            channel.request_size, channel.is_write
        )
        (writes if spec_channel.is_write else reads).append(spec_channel)
    stream_chunks = 1
    if stage.fill_seconds > 0 and stage.t_avg > 0:
        stream_chunks = max(1, round(stage.t_avg / stage.fill_seconds))
    return TaskGroupSpec(
        name="tasks",
        count=stage.num_tasks,
        read_channels=tuple(reads),
        compute_seconds=max(0.0, stage.t_avg - io_seconds),
        write_channels=tuple(writes),
        stream_chunks=stream_chunks,
        gc_coeff=stage.gc_coeff,
    )


def as_source(obj, name: str | None = None) -> WorkloadSource:
    """Coerce any of the supported inputs into a :class:`WorkloadSource`.

    Accepts an existing source, a :class:`WorkloadSpec`, a
    :class:`DoppioContext` (or profile list), a :class:`ProfilingReport`,
    or a path to a report JSON file.
    """
    if isinstance(obj, (SpecSource, ReportSource, ResolvedSource)):
        return obj
    if isinstance(obj, WorkloadSpec):
        return SpecSource(obj)
    if isinstance(obj, ProfilingReport):
        return ReportSource(obj)
    if isinstance(obj, (str, Path)):
        return ReportSource(obj)
    if hasattr(obj, "stage_profiles") or (
        isinstance(obj, (list, tuple))
        and obj
        and isinstance(obj[0], StageRuntimeProfile)
    ):
        return RddSource(name or "rdd-app", obj)
    if isinstance(obj, WorkloadSource):
        return obj
    raise WorkloadError(
        f"cannot build a workload source from {type(obj).__name__}; expected"
        " a WorkloadSpec, DoppioContext, ProfilingReport, report path, or"
        " WorkloadSource"
    )
