"""Execution platforms: where a resolved workload runs and is predicted.

A platform answers two questions for the :class:`~repro.pipeline
.experiment.Experiment` orchestrator:

- *simulation* — build a :class:`~repro.cluster.cluster.Cluster` at a
  node count so the discrete-event engine can measure "exp" makespans;
- *modeling* — build the Equation-1 application model for the same
  devices, so "exp" and "model" always describe the same hardware.

Two families exist, mirroring the paper: :class:`ClusterPlatform` (the
Table I/III testbeds, or any explicit cluster) and :class:`CloudPlatform`
(Section VI's Google-Cloud virtual-disk configurations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.cloud.disks import make_persistent_disk
from repro.cloud.pricing import CloudConfiguration
from repro.cluster.cluster import Cluster, HybridDiskConfig, make_paper_cluster
from repro.cluster.node import Node
from repro.errors import ConfigurationError
from repro.pipeline.fingerprint import fingerprint
from repro.units import GB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.app_model import ApplicationModel
    from repro.core.predictor import Predictor
    from repro.storage.device import StorageDevice


@runtime_checkable
class Platform(Protocol):
    """Anything an experiment can simulate on and predict for."""

    @property
    def label(self) -> str:
        """Readable identifier used in run records."""
        ...

    def fingerprint(self) -> str:
        """Content hash for cache keys."""
        ...

    def default_nodes(self) -> int | None:
        """The platform's natural ``N`` (``None`` = caller must choose)."""
        ...

    def default_cores(self) -> int | None:
        """The platform's natural ``P`` (``None`` = caller must choose)."""
        ...

    def cluster(self, nodes: int) -> Cluster:
        """A simulatable cluster of ``nodes`` workers."""
        ...

    def model(
        self,
        predictor: Predictor,
        nodes: int,
        network_bandwidth: float | None = None,
    ) -> ApplicationModel:
        """The Equation-1 model over this platform's devices."""
        ...


class ClusterPlatform:
    """A paper-style cluster: Table-I nodes with a hybrid disk placement.

    Build parametrically from device kinds (``ClusterPlatform("ssd",
    "hdd")``) so any node count can be requested, or wrap an explicit
    cluster with :meth:`of` (fixed node count).
    """

    def __init__(self, hdfs_kind: str = "ssd", local_kind: str = "ssd") -> None:
        self.hdfs_kind = hdfs_kind
        self.local_kind = local_kind
        self._fixed: Cluster | None = None
        self._clusters: dict[int, Cluster] = {}

    @classmethod
    def of(cls, cluster: Cluster) -> ClusterPlatform:
        """Wrap an existing cluster (its node count becomes fixed)."""
        sample = cluster.slaves[0]
        platform = cls(sample.hdfs_device.kind, sample.local_device.kind)
        platform._fixed = cluster
        platform._clusters[cluster.num_slaves] = cluster
        return platform

    @classmethod
    def from_config(cls, config: HybridDiskConfig) -> ClusterPlatform:
        """From a Table-III hybrid disk configuration."""
        return cls(config.hdfs_kind, config.local_kind)

    @property
    def label(self) -> str:
        return f"cluster[hdfs={self.hdfs_kind},local={self.local_kind}]"

    def fingerprint(self) -> str:
        if self._fixed is not None:
            sample = self._fixed.slaves[0]
            return fingerprint(
                {
                    "kind": "fixed-cluster",
                    "num_slaves": self._fixed.num_slaves,
                    "cores": sample.num_cores,
                    "ram": sample.ram_bytes,
                    "devices": [
                        (node.hdfs_device, node.local_device)
                        for node in self._fixed.slaves
                    ],
                    "network": self._fixed.network.link_bandwidth,
                }
            )
        return fingerprint(
            {
                "kind": "paper-cluster",
                "hdfs": self.hdfs_kind,
                "local": self.local_kind,
            }
        )

    def default_nodes(self) -> int | None:
        return self._fixed.num_slaves if self._fixed is not None else None

    def default_cores(self) -> int | None:
        return None

    def cluster(self, nodes: int) -> Cluster:
        if nodes <= 0:
            raise ConfigurationError("node count must be positive")
        if self._fixed is not None and nodes != self._fixed.num_slaves:
            raise ConfigurationError(
                f"platform wraps a fixed {self._fixed.num_slaves}-slave"
                f" cluster; cannot simulate N={nodes}"
            )
        if nodes not in self._clusters:
            self._clusters[nodes] = make_paper_cluster(
                nodes,
                HybridDiskConfig(
                    0, hdfs_kind=self.hdfs_kind, local_kind=self.local_kind
                ),
            )
        return self._clusters[nodes]

    def model(
        self,
        predictor: Predictor,
        nodes: int,
        network_bandwidth: float | None = None,
    ) -> ApplicationModel:
        return predictor.model_for_cluster(
            self.cluster(nodes), network_bandwidth=network_bandwidth
        )


class CloudPlatform:
    """A Section-VI virtual-disk worker pool on Google Cloud.

    Wraps a :class:`~repro.cloud.pricing.CloudConfiguration`; simulation
    builds per-node persistent disks exactly like the Fig-14 validation,
    and modeling uses the same ``devices_by_role`` mapping the cost
    optimizer always fed the predictor.
    """

    #: RAM per worker for simulated cloud nodes (n1-standard-16 class).
    NODE_RAM_BYTES = 60 * GB

    def __init__(self, config: CloudConfiguration) -> None:
        self.config = config
        self._clusters: dict[int, Cluster] = {}

    @classmethod
    def from_disks(
        cls,
        hdfs_kind: str,
        hdfs_gb: float,
        local_kind: str,
        local_gb: float,
        vcpus: int = 16,
        num_workers: int = 10,
    ) -> CloudPlatform:
        """Convenience constructor from raw disk/shape parameters."""
        from repro.cloud.instance import machine_for_vcpus

        return cls(
            CloudConfiguration(
                machine=machine_for_vcpus(vcpus),
                num_workers=num_workers,
                hdfs_disk_kind=hdfs_kind,
                hdfs_disk_gb=hdfs_gb,
                local_disk_kind=local_kind,
                local_disk_gb=local_gb,
            )
        )

    @property
    def label(self) -> str:
        return f"cloud[{self.config.label()}]"

    def fingerprint(self) -> str:
        return fingerprint({"kind": "cloud", "config": self.config})

    def default_nodes(self) -> int | None:
        return self.config.num_workers

    def default_cores(self) -> int | None:
        return self.config.cores_per_node

    def devices_by_role(self) -> dict[str, StorageDevice]:
        """One representative worker's device models."""
        return {
            "hdfs": make_persistent_disk(
                self.config.hdfs_disk_kind, self.config.hdfs_disk_gb
            ),
            "local": make_persistent_disk(
                self.config.local_disk_kind, self.config.local_disk_gb
            ),
        }

    def cluster(self, nodes: int) -> Cluster:
        if nodes <= 0:
            raise ConfigurationError("node count must be positive")
        if nodes not in self._clusters:
            slaves = [
                Node(
                    name=f"w{index}",
                    num_cores=self.config.cores_per_node,
                    ram_bytes=self.NODE_RAM_BYTES,
                    hdfs_device=make_persistent_disk(
                        self.config.hdfs_disk_kind,
                        self.config.hdfs_disk_gb,
                        name=f"w{index}-hdfs",
                    ),
                    local_device=make_persistent_disk(
                        self.config.local_disk_kind,
                        self.config.local_disk_gb,
                        name=f"w{index}-local",
                    ),
                )
                for index in range(nodes)
            ]
            self._clusters[nodes] = Cluster(slaves=slaves)
        return self._clusters[nodes]

    def model(
        self,
        predictor: Predictor,
        nodes: int,
        network_bandwidth: float | None = None,
    ) -> ApplicationModel:
        return predictor.model_for_devices(
            self.devices_by_role(), network_bandwidth=network_bandwidth
        )


def as_platform(obj) -> Platform:
    """Coerce clusters and configurations into a :class:`Platform`."""
    if isinstance(obj, (ClusterPlatform, CloudPlatform)):
        return obj
    if isinstance(obj, Cluster):
        return ClusterPlatform.of(obj)
    if isinstance(obj, HybridDiskConfig):
        return ClusterPlatform.from_config(obj)
    if isinstance(obj, CloudConfiguration):
        return CloudPlatform(obj)
    if isinstance(obj, Platform):
        return obj
    raise ConfigurationError(
        f"cannot build a platform from {type(obj).__name__}; expected a"
        " Cluster, HybridDiskConfig, CloudConfiguration, or Platform"
    )
