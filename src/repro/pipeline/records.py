"""Uniform run records and their JSON forms.

Every frontend — CLI, sweeps, benchmarks, the cloud optimizer — consumes
the same :class:`RunResult`: the simulated "exp" makespan, the Equation-1
"model" prediction, the per-stage breakdown with bottleneck attribution,
the error rate between the two, and the core/device utilizations of the
simulated run.

The module also provides lossless dict round-trips for the simulator's
:class:`~repro.simulator.run.ApplicationMeasurement` and the model's
:class:`~repro.core.app_model.ApplicationPrediction`, which is what lets
the result cache persist them as plain JSON.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.errors import relative_error
from repro.core.app_model import ApplicationPrediction
from repro.core.stage_model import StagePrediction
from repro.resilience import StageResilience
from repro.schedule.mix import JobTimeline, MixMeasurement
from repro.simulator.run import ApplicationMeasurement, StageMeasurement
from repro.storage.iostat import IostatSample


@dataclass(frozen=True)
class StageRunResult:
    """One stage of a run: exp vs model plus attribution."""

    name: str
    num_tasks: int
    measured_seconds: float
    predicted_seconds: float
    bottleneck: str
    core_utilization: float

    @property
    def error(self) -> float:
        """Relative error of the model against the simulation."""
        return relative_error(self.measured_seconds, self.predicted_seconds)


@dataclass(frozen=True)
class RunResult:
    """One (source, platform, N, P, run) point through the whole loop."""

    workload: str
    platform: str
    nodes: int
    cores_per_node: int
    run_index: int
    measured_seconds: float
    predicted_seconds: float
    stages: tuple[StageRunResult, ...]
    core_utilization: float
    #: (resource name, is_write, busy fraction) aggregated over the run.
    device_utilizations: tuple[tuple[str, bool, float], ...] = ()
    network_gbps: float | None = None

    @property
    def error(self) -> float:
        """Application-level relative error (the paper's error rate)."""
        return relative_error(self.measured_seconds, self.predicted_seconds)

    def stage(self, name: str) -> StageRunResult:
        """Look up one stage's record."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"{self.workload}: no stage named {name!r}")

    def to_dict(self) -> dict:
        """JSON-ready form (the CLI's ``--json`` payload)."""
        return {
            "workload": self.workload,
            "platform": self.platform,
            "nodes": self.nodes,
            "cores_per_node": self.cores_per_node,
            "run_index": self.run_index,
            "measured_seconds": self.measured_seconds,
            "predicted_seconds": self.predicted_seconds,
            "error": self.error,
            "core_utilization": self.core_utilization,
            "network_gbps": self.network_gbps,
            "stages": [
                {
                    "name": stage.name,
                    "num_tasks": stage.num_tasks,
                    "measured_seconds": stage.measured_seconds,
                    "predicted_seconds": stage.predicted_seconds,
                    "error": stage.error,
                    "bottleneck": stage.bottleneck,
                    "core_utilization": stage.core_utilization,
                }
                for stage in self.stages
            ],
            "device_utilizations": [
                {"resource": name, "is_write": is_write, "busy_fraction": busy}
                for name, is_write, busy in self.device_utilizations
            ],
        }


# -- measurement round-trip ---------------------------------------------------


def measurement_to_dict(measurement: ApplicationMeasurement) -> dict:
    """Serialize a simulated application measurement losslessly."""
    return {
        "name": measurement.name,
        "stages": [
            {
                "name": stage.name,
                "nodes": stage.nodes,
                "cores_per_node": stage.cores_per_node,
                "makespan": stage.makespan,
                "num_tasks": stage.num_tasks,
                "task_avg_seconds": dict(stage.task_avg_seconds),
                "task_counts": dict(stage.task_counts),
                "first_finish_seconds": stage.first_finish_seconds,
                "read_bytes": stage.read_bytes,
                "write_bytes": stage.write_bytes,
                "avg_gc_seconds": stage.avg_gc_seconds,
                "core_utilization": stage.core_utilization,
                "iostat_samples": [
                    {
                        "device_name": sample.device_name,
                        "is_write": sample.is_write,
                        "total_bytes": sample.total_bytes,
                        "num_requests": sample.num_requests,
                    }
                    for sample in stage.iostat_samples
                ],
                "device_utilizations": [
                    [name, is_write, busy]
                    for name, is_write, busy in stage.device_utilizations
                ],
                "resilience": (
                    stage.resilience.to_dict()
                    if stage.resilience is not None else None
                ),
            }
            for stage in measurement.stages
        ],
    }


def measurement_from_dict(data: dict) -> ApplicationMeasurement:
    """Rebuild a measurement from :func:`measurement_to_dict` output."""
    stages = tuple(
        StageMeasurement(
            name=stage["name"],
            nodes=int(stage["nodes"]),
            cores_per_node=int(stage["cores_per_node"]),
            makespan=float(stage["makespan"]),
            num_tasks=int(stage["num_tasks"]),
            task_avg_seconds={
                group: float(value)
                for group, value in stage["task_avg_seconds"].items()
            },
            task_counts={
                group: int(value) for group, value in stage["task_counts"].items()
            },
            first_finish_seconds=float(stage["first_finish_seconds"]),
            read_bytes=float(stage["read_bytes"]),
            write_bytes=float(stage["write_bytes"]),
            avg_gc_seconds=float(stage["avg_gc_seconds"]),
            core_utilization=float(stage["core_utilization"]),
            iostat_samples=tuple(
                IostatSample(
                    device_name=sample["device_name"],
                    is_write=bool(sample["is_write"]),
                    total_bytes=float(sample["total_bytes"]),
                    num_requests=float(sample["num_requests"]),
                )
                for sample in stage["iostat_samples"]
            ),
            device_utilizations=tuple(
                (name, bool(is_write), float(busy))
                for name, is_write, busy in stage["device_utilizations"]
            ),
            # .get(): caches written before the resilience layer have no
            # such key; those runs carried no policy.
            resilience=(
                StageResilience.from_dict(stage["resilience"])
                if stage.get("resilience") is not None else None
            ),
        )
        for stage in data["stages"]
    )
    return ApplicationMeasurement(name=data["name"], stages=stages)


# -- mix round-trip -----------------------------------------------------------


def mix_to_dict(mix: MixMeasurement) -> dict:
    """Serialize a multi-job mix measurement losslessly."""
    return {
        "policy": mix.policy,
        "nodes": mix.nodes,
        "cores_per_node": mix.cores_per_node,
        "makespan": mix.makespan,
        "jobs": [
            {
                "name": timeline.name,
                "arrival": timeline.arrival,
                "volume_scale": timeline.volume_scale,
                "first_launch": timeline.first_launch,
                "finish": timeline.finish,
                "measurement": measurement_to_dict(timeline.measurement),
            }
            for timeline in mix.jobs
        ],
        "device_utilizations": [
            [name, is_write, busy]
            for name, is_write, busy in mix.device_utilizations
        ],
    }


def mix_from_dict(data: dict) -> MixMeasurement:
    """Rebuild a mix measurement from :func:`mix_to_dict` output."""
    return MixMeasurement(
        policy=data["policy"],
        nodes=int(data["nodes"]),
        cores_per_node=int(data["cores_per_node"]),
        makespan=float(data["makespan"]),
        jobs=tuple(
            JobTimeline(
                name=job["name"],
                arrival=float(job["arrival"]),
                volume_scale=float(job["volume_scale"]),
                first_launch=float(job["first_launch"]),
                finish=float(job["finish"]),
                measurement=measurement_from_dict(job["measurement"]),
            )
            for job in data["jobs"]
        ),
        device_utilizations=tuple(
            (name, bool(is_write), float(busy))
            for name, is_write, busy in data["device_utilizations"]
        ),
    )


@dataclass(frozen=True)
class MixJobResult:
    """One job of a mix: its full solo-model record plus interference.

    ``result`` pairs the job's *mixed* measurement with its *solo* Eq.-1
    prediction, so ``result.error`` reads as "how far off the
    single-tenant model is once neighbors contend"; ``slowdown`` is the
    direct interference factor (mixed runtime / solo simulated runtime,
    >= 1 up to the engine's float-reordering tolerance).
    """

    name: str
    arrival: float
    volume_scale: float
    waiting_seconds: float
    turnaround_seconds: float
    solo_seconds: float
    slowdown: float
    result: RunResult

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "arrival": self.arrival,
            "volume_scale": self.volume_scale,
            "waiting_seconds": self.waiting_seconds,
            "turnaround_seconds": self.turnaround_seconds,
            "solo_seconds": self.solo_seconds,
            "slowdown": self.slowdown,
            "result": self.result.to_dict(),
        }


@dataclass(frozen=True)
class MixResult:
    """A whole co-location experiment: per-job records + cluster view."""

    policy: str
    platform: str
    nodes: int
    cores_per_node: int
    run_index: int
    makespan_seconds: float
    jobs: tuple[MixJobResult, ...]
    #: (resource name, is_write, busy fraction of the mix makespan).
    device_utilizations: tuple[tuple[str, bool, float], ...] = ()

    def job(self, name: str) -> MixJobResult:
        """Look up one job's record by its (disambiguated) name."""
        for job in self.jobs:
            if job.name == name:
                return job
        raise KeyError(f"mix has no job named {name!r}")

    def to_dict(self) -> dict:
        """JSON-ready form (the CLI's ``--json`` payload)."""
        return {
            "policy": self.policy,
            "platform": self.platform,
            "nodes": self.nodes,
            "cores_per_node": self.cores_per_node,
            "run_index": self.run_index,
            "makespan_seconds": self.makespan_seconds,
            "jobs": [job.to_dict() for job in self.jobs],
            "device_utilizations": [
                {"resource": name, "is_write": is_write, "busy_fraction": busy}
                for name, is_write, busy in self.device_utilizations
            ],
        }


# -- prediction round-trip ----------------------------------------------------


def prediction_to_dict(prediction: ApplicationPrediction) -> dict:
    """Serialize a model prediction losslessly."""
    return {
        "app_name": prediction.app_name,
        "nodes": prediction.nodes,
        "cores_per_node": prediction.cores_per_node,
        "stages": [
            {
                "stage_name": stage.stage_name,
                "nodes": stage.nodes,
                "cores_per_node": stage.cores_per_node,
                "t_scale": stage.t_scale,
                "t_read_limit": stage.t_read_limit,
                "t_write_limit": stage.t_write_limit,
            }
            for stage in prediction.stages
        ],
    }


def prediction_from_dict(data: dict) -> ApplicationPrediction:
    """Rebuild a prediction from :func:`prediction_to_dict` output."""
    return ApplicationPrediction(
        app_name=data["app_name"],
        nodes=int(data["nodes"]),
        cores_per_node=int(data["cores_per_node"]),
        stages=tuple(
            StagePrediction(
                stage_name=stage["stage_name"],
                nodes=int(stage["nodes"]),
                cores_per_node=int(stage["cores_per_node"]),
                t_scale=float(stage["t_scale"]),
                t_read_limit=float(stage["t_read_limit"]),
                t_write_limit=float(stage["t_write_limit"]),
            )
            for stage in data["stages"]
        ),
    )


def compose_run_result(
    measurement: ApplicationMeasurement,
    prediction: ApplicationPrediction,
    platform_label: str,
    run_index: int,
    network_gbps: float | None = None,
) -> RunResult:
    """Pair a simulated measurement with a model prediction stage by stage."""
    stage_results = []
    busy: dict[tuple[str, bool], float] = {}
    total = measurement.total_seconds
    for stage in measurement.stages:
        predicted = prediction.stage(stage.name)
        stage_results.append(
            StageRunResult(
                name=stage.name,
                num_tasks=stage.num_tasks,
                measured_seconds=stage.makespan,
                predicted_seconds=predicted.t_stage,
                bottleneck=predicted.bottleneck,
                core_utilization=stage.core_utilization,
            )
        )
        for name, is_write, fraction in stage.device_utilizations:
            key = (name, is_write)
            busy[key] = busy.get(key, 0.0) + fraction * stage.makespan
    weighted_core = (
        sum(s.core_utilization * s.makespan for s in measurement.stages) / total
        if total > 0
        else 0.0
    )
    return RunResult(
        workload=measurement.name,
        platform=platform_label,
        nodes=prediction.nodes,
        cores_per_node=prediction.cores_per_node,
        run_index=run_index,
        measured_seconds=total,
        predicted_seconds=prediction.t_app,
        stages=tuple(stage_results),
        core_utilization=weighted_core,
        device_utilizations=tuple(
            (name, is_write, seconds / total if total > 0 else 0.0)
            for (name, is_write), seconds in sorted(busy.items())
        ),
        network_gbps=network_gbps,
    )


__all__ = [
    "StageRunResult",
    "RunResult",
    "MixJobResult",
    "MixResult",
    "measurement_to_dict",
    "measurement_from_dict",
    "mix_to_dict",
    "mix_from_dict",
    "prediction_to_dict",
    "prediction_from_dict",
    "compose_run_result",
]
