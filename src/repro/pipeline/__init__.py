"""One experiment pipeline for spec-, RDD-, and report-driven runs.

``repro.pipeline`` unifies the library's three workload entry paths
behind a single loop:

1. wrap the input in a :class:`WorkloadSource` (:func:`as_source`);
2. pick a :class:`Platform` — a paper-style cluster or a cloud
   virtual-disk configuration (:func:`as_platform`);
3. drive an :class:`Experiment` over ``(N, P, run)`` points, getting
   uniform :class:`RunResult` records;
4. share a :class:`ResultCache` so identical simulations, predictions,
   and profiling runs are never repeated.

See ``docs/PIPELINE.md`` for a worked example.
"""

from repro.pipeline.cache import (
    CacheStats,
    ResultCache,
    mix_key,
    prediction_key,
    run_key,
)
from repro.pipeline.experiment import Experiment
from repro.pipeline.fingerprint import canonicalize, fingerprint
from repro.pipeline.platforms import (
    CloudPlatform,
    ClusterPlatform,
    Platform,
    as_platform,
)
from repro.pipeline.records import (
    MixJobResult,
    MixResult,
    RunResult,
    StageRunResult,
    compose_run_result,
    measurement_from_dict,
    measurement_to_dict,
    mix_from_dict,
    mix_to_dict,
    prediction_from_dict,
    prediction_to_dict,
)
from repro.pipeline.sources import (
    RddSource,
    ReportSource,
    ResolvedSource,
    ResolvedWorkload,
    SpecSource,
    WorkloadSource,
    as_source,
    spec_from_report,
)

__all__ = [
    "CacheStats",
    "CloudPlatform",
    "ClusterPlatform",
    "Experiment",
    "MixJobResult",
    "MixResult",
    "Platform",
    "RddSource",
    "ReportSource",
    "ResolvedSource",
    "ResolvedWorkload",
    "ResultCache",
    "RunResult",
    "SpecSource",
    "StageRunResult",
    "WorkloadSource",
    "as_platform",
    "as_source",
    "canonicalize",
    "compose_run_result",
    "fingerprint",
    "measurement_from_dict",
    "measurement_to_dict",
    "mix_from_dict",
    "mix_key",
    "mix_to_dict",
    "prediction_from_dict",
    "prediction_to_dict",
    "prediction_key",
    "run_key",
    "spec_from_report",
]
