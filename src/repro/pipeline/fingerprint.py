"""Content-addressed fingerprints for pipeline cache keys.

A fingerprint is a short, stable hash of an object's *content* — not its
identity — so two separately constructed but identical workload specs,
profiling reports, or platform configurations address the same cache
entries.  The canonical form walks dataclasses, mappings, and sequences
recursively; floats round-trip through ``repr`` (exact in Python 3), so a
fingerprint never collapses distinct configurations.

Device models get special treatment: a :class:`~repro.storage.device
.StorageDevice` is fingerprinted by its kind, capacity, and bandwidth
anchor curves, deliberately ignoring mutable runtime state
(``used_bytes``) — the simulation outcome depends only on the curves.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

#: Hex digits kept from the sha256 digest; 16 (64 bits) is far beyond any
#: realistic collision risk for a result cache.
DIGEST_CHARS = 16


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable canonical structure."""
    # Late imports: fingerprinting is a leaf utility and must not create
    # import cycles with the domain modules it describes.
    from repro.core.bandwidth import EffectiveBandwidthTable
    from repro.storage.device import StorageDevice

    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, StorageDevice):
        return {
            "__device__": obj.kind,
            "capacity": repr(obj.capacity_bytes),
            "read": canonicalize(obj.read_table),
            "write": canonicalize(obj.write_table),
        }
    if isinstance(obj, EffectiveBandwidthTable):
        return {"__bandwidth_table__": canonicalize(obj.anchors)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__type__": type(obj).__name__,
            **{
                field.name: canonicalize(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
                if field.init
            },
        }
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in sorted(
            obj.items(), key=lambda item: str(item[0])
        )}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(item) for item in obj)
    # Last resort for exotic parameter values: a stable textual form.
    return f"{type(obj).__name__}:{obj!r}"


def fingerprint(obj: Any) -> str:
    """Short content hash of ``obj``'s canonical form."""
    payload = json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:DIGEST_CHARS]
