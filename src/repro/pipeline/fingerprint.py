"""Content-addressed fingerprints for pipeline cache keys.

A fingerprint is a short, stable hash of an object's *content* — not its
identity — so two separately constructed but identical workload specs,
profiling reports, or platform configurations address the same cache
entries.  The canonical form walks dataclasses, mappings, and sequences
recursively; non-integral floats round-trip through ``repr`` (exact in
Python 3), so a fingerprint never collapses distinct configurations.
Integral floats canonicalize to the equal int (``1.0`` and ``1`` compare
equal in Python and describe the same configuration, so they must address
the same cache entry — a spec built with ``cores=8`` and one built with
``cores=8.0`` used to fingerprint differently, splitting the cache).

Device models get special treatment: a :class:`~repro.storage.device
.StorageDevice` is fingerprinted by its kind, capacity, and bandwidth
anchor curves, deliberately ignoring mutable runtime state
(``used_bytes``) — the simulation outcome depends only on the curves.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

#: Hex digits kept from the sha256 digest; 16 (64 bits) is far beyond any
#: realistic collision risk for a result cache.
DIGEST_CHARS = 16


def _canonical_key(key: Any) -> str:
    """Textual form of a mapping key, merging integral floats with ints."""
    if isinstance(key, float) and key.is_integer() and abs(key) <= 2.0**53:
        key = int(key)
    return str(key)


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable canonical structure."""
    # Late imports: fingerprinting is a leaf utility and must not create
    # import cycles with the domain modules it describes.
    from repro.core.bandwidth import EffectiveBandwidthTable
    from repro.storage.device import StorageDevice

    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # Integral floats reduce to the equal int so 1.0 and 1 fingerprint
        # identically; is_integer() is False for nan/inf, and 2**53 bounds
        # the range where float->int is exact.
        if obj.is_integer() and abs(obj) <= 2.0**53:
            return int(obj)
        return repr(obj)
    if isinstance(obj, StorageDevice):
        return {
            "__device__": obj.kind,
            "capacity": repr(obj.capacity_bytes),
            "read": canonicalize(obj.read_table),
            "write": canonicalize(obj.write_table),
        }
    if isinstance(obj, EffectiveBandwidthTable):
        return {"__bandwidth_table__": canonicalize(obj.anchors)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__type__": type(obj).__name__,
            **{
                field.name: canonicalize(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
                if field.init
            },
        }
    if isinstance(obj, dict):
        return {_canonical_key(key): canonicalize(value) for key, value in sorted(
            obj.items(), key=lambda item: _canonical_key(item[0])
        )}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        # Order by each member's serialized form: mixed-type sets (where a
        # direct sort raises TypeError) still get one canonical order.
        return sorted(
            (canonicalize(item) for item in obj),
            key=lambda form: json.dumps(form, sort_keys=True, separators=(",", ":")),
        )
    # Last resort for exotic parameter values: a stable textual form.
    return f"{type(obj).__name__}:{obj!r}"


def fingerprint(obj: Any) -> str:
    """Short content hash of ``obj``'s canonical form."""
    payload = json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:DIGEST_CHARS]
