"""Content-addressed result cache for the experiment pipeline.

Simulated runs are the expensive half of the paper's loop (a Fig-3 sweep
simulates every stage at every core count; the optimizer's profiling step
simulates four whole sample runs).  The cache memoizes three product
kinds, each addressed purely by content fingerprints so identical work is
never repeated — across sweep points, across searches, and (with a cache
file) across processes:

- **measurements** — simulated ``ApplicationMeasurement`` records, keyed
  by ``(source, platform, N, P, run_index, network)``;
- **predictions** — Equation-1 ``ApplicationPrediction`` records, keyed by
  ``(report, platform, N, P, network)``;
- **reports** — fitted ``ProfilingReport`` constants, keyed by
  ``(spec, profiling options)``;
- **mixes** — multi-job ``MixMeasurement`` records from
  :mod:`repro.schedule.mix`, keyed by the full mix (every job's spec,
  arrival, and volume scale, plus the policy) times the platform and
  run configuration.  The section is additive: files written before it
  existed load cleanly, and older readers ignore it.

Entries are exact-key lookups of deterministic computations, so a cache
hit returns bit-identical results to a fresh run; hit/miss counters let
benchmarks report the reuse rate.

Concurrent writers
------------------
The file format is safe under multiple writers because every key is
content-addressed: two processes that compute the same key compute the
same value, so whichever :meth:`ResultCache.save` lands last merely
rewrites identical bytes for the shared entries.  Each save is atomic
(temp file + ``os.replace``), so a reader — or a concurrent loader — can
never observe a torn file: it sees one writer's complete snapshot or the
other's, and the worst interleaving outcome is that entries unique to
the *earlier* snapshot are absent from the later one and get recomputed.
Parallel grids avoid even that loss by funnelling worker-side entries
through :meth:`ResultCache.merge_shard` in the parent, which performs
every authoritative save: one atomic checkpoint per merged shard, so a
run killed between merges resumes from the last landed shard (see
``docs/EXECUTION.md``).  The interleaved-writer and corrupt-shard tests
in ``tests/unit/pipeline/test_cache.py`` pin this down.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.app_model import ApplicationPrediction
from repro.core.profiler import ProfilingReport
from repro.core.serialization import report_from_dict, report_to_dict
from repro.pipeline.records import (
    measurement_from_dict,
    measurement_to_dict,
    mix_from_dict,
    mix_to_dict,
    prediction_from_dict,
    prediction_to_dict,
)
from repro.schedule.mix import MixMeasurement
from repro.simulator.run import ApplicationMeasurement

#: Cache-file format marker.
CACHE_FORMAT_VERSION = 1


def run_key(
    source_fp: str,
    platform_fp: str,
    nodes: int,
    cores_per_node: int,
    run_index: int = 0,
    network_fp: str = "none",
    fault_fp: str = "none",
    resilience_fp: str = "none",
) -> str:
    """Canonical key of one simulated run.

    ``fault_fp`` is the fingerprint of the run's fault plan and
    ``resilience_fp`` of its mitigation policy; clean unmitigated runs
    keep the historical key shape, so existing cache files stay valid
    and a faulted or mitigated run can never collide with a clean one.
    """
    key = (
        f"{source_fp}/{platform_fp}/N{nodes}/P{cores_per_node}"
        f"/r{run_index}/net-{network_fp}"
    )
    if fault_fp != "none":
        key += f"/faults-{fault_fp}"
    if resilience_fp != "none":
        key += f"/resil-{resilience_fp}"
    return key


def mix_key(
    mix_fp: str,
    platform_fp: str,
    nodes: int,
    cores_per_node: int,
    run_index: int = 0,
    network_fp: str = "none",
    fault_fp: str = "none",
) -> str:
    """Canonical key of one simulated multi-job mix.

    ``mix_fp`` fingerprints the *entire* mix — every job's spec, arrival
    time, volume scale, and name, plus the scheduling policy — so any
    change to any co-tenant re-addresses the result.  The ``mix/``
    prefix keeps the namespace disjoint from single-job run keys.
    """
    key = (
        f"mix/{mix_fp}/{platform_fp}/N{nodes}/P{cores_per_node}"
        f"/r{run_index}/net-{network_fp}"
    )
    if fault_fp != "none":
        key += f"/faults-{fault_fp}"
    return key


def prediction_key(
    report_fp: str,
    platform_fp: str,
    nodes: int,
    cores_per_node: int,
    network_fp: str = "none",
) -> str:
    """Canonical key of one model evaluation."""
    return f"{report_fp}/{platform_fp}/N{nodes}/P{cores_per_node}/net-{network_fp}"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters, per product kind."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        """The counters plus the derived rate, JSON-ready."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """In-memory (optionally file-backed) store of pipeline products.

    Parameters
    ----------
    path:
        Optional JSON file.  When given, existing entries are loaded on
        construction and :meth:`save` persists the current contents; the
        in-memory maps always hold live objects, so hits cost no
        deserialization.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._measurements: dict[str, ApplicationMeasurement] = {}
        self._predictions: dict[str, ApplicationPrediction] = {}
        self._reports: dict[str, ProfilingReport] = {}
        self._mixes: dict[str, MixMeasurement] = {}
        self.measurement_stats = CacheStats()
        self.prediction_stats = CacheStats()
        self.report_stats = CacheStats()
        self.mix_stats = CacheStats()
        if self.path is not None and self.path.exists():
            self._load(self.path)

    # -- measurements --------------------------------------------------------

    def get_measurement(self, key: str) -> ApplicationMeasurement | None:
        hit = self._measurements.get(key)
        if hit is None:
            self.measurement_stats.misses += 1
        else:
            self.measurement_stats.hits += 1
        return hit

    def put_measurement(self, key: str, value: ApplicationMeasurement) -> None:
        self._measurements[key] = value

    # -- predictions ---------------------------------------------------------

    def get_prediction(self, key: str) -> ApplicationPrediction | None:
        hit = self._predictions.get(key)
        if hit is None:
            self.prediction_stats.misses += 1
        else:
            self.prediction_stats.hits += 1
        return hit

    def put_prediction(self, key: str, value: ApplicationPrediction) -> None:
        self._predictions[key] = value

    # -- profiling reports ---------------------------------------------------

    def get_report(self, key: str) -> ProfilingReport | None:
        hit = self._reports.get(key)
        if hit is None:
            self.report_stats.misses += 1
        else:
            self.report_stats.hits += 1
        return hit

    def put_report(self, key: str, value: ProfilingReport) -> None:
        self._reports[key] = value

    # -- mixes ---------------------------------------------------------------

    def get_mix(self, key: str) -> MixMeasurement | None:
        hit = self._mixes.get(key)
        if hit is None:
            self.mix_stats.misses += 1
        else:
            self.mix_stats.hits += 1
        return hit

    def put_mix(self, key: str, value: MixMeasurement) -> None:
        self._mixes[key] = value

    # -- presence peeks ------------------------------------------------------

    def contains_measurement(self, key: str) -> bool:
        """Presence check that does not touch the hit/miss counters.

        Parallel grids use this to pre-split cells into warm and cold
        *before* dispatching; the real counted lookup still happens when
        the cell's record is composed, so stats keep meaning "lookups
        performed on behalf of results returned".
        """
        return key in self._measurements

    def contains_prediction(self, key: str) -> bool:
        """Counter-free presence check for a prediction key."""
        return key in self._predictions

    @property
    def num_predictions(self) -> int:
        """How many predictions are stored.

        The query service checks this before computing a prediction key:
        against a store with no predictions at all, the (content-hash)
        key could never hit, so the hot path skips building it.
        """
        return len(self._predictions)

    def contains_mix(self, key: str) -> bool:
        """Counter-free presence check for a mix key."""
        return key in self._mixes

    # -- worker shards -------------------------------------------------------

    def _sections(self):
        return (
            ("measurements", self._measurements),
            ("predictions", self._predictions),
            ("reports", self._reports),
            ("mixes", self._mixes),
        )

    def export_shard(self, exclude: set[str] = frozenset()) -> dict[str, dict]:
        """Snapshot entries not yet exported, for shipping to a merger.

        Returns ``{"measurements": {...}, "predictions": {...},
        "reports": {...}}`` holding the live objects whose qualified keys
        (see :meth:`shard_keys`) are absent from ``exclude``.  Worker
        processes call this after each task and track the union of
        exported keys, so every fresh entry crosses the pipe exactly
        once.
        """
        shard: dict[str, dict] = {}
        for section, store in self._sections():
            shard[section] = {
                key: value
                for key, value in store.items()
                if f"{section}:{key}" not in exclude
            }
        return shard

    @staticmethod
    def shard_keys(shard: dict[str, dict]) -> set[str]:
        """Qualified ``section:key`` names of a shard's entries."""
        return {
            f"{section}:{key}"
            for section, entries in shard.items()
            for key in entries
        }

    def merge_shard(self, shard: dict[str, dict]) -> int:
        """Fold an :meth:`export_shard` snapshot in; returns entries added.

        First writer wins on key collisions — keys are content-addressed,
        so colliding values are identical and keeping the resident object
        preserves ``is``-level stability for anything already handed out.
        """
        merged = 0
        for section, store in self._sections():
            for key, value in shard.get(section, {}).items():
                if key not in store:
                    store[key] = value
                    merged += 1
        return merged

    # -- bookkeeping ---------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(store) for _, store in self._sections())

    def clear(self) -> None:
        """Drop every entry; the drops count as evictions per kind."""
        for (_, store), stats in zip(self._sections(), self._all_stats()):
            stats.evictions += len(store)
            store.clear()

    def _all_stats(self) -> tuple[CacheStats, ...]:
        """Per-kind counters, in :meth:`_sections` order."""
        return (
            self.measurement_stats,
            self.prediction_stats,
            self.report_stats,
            self.mix_stats,
        )

    def stats(self) -> dict:
        """Structured hit/miss/eviction counters, JSON-ready.

        The observability surface ``pipeline --json`` and the query
        service expose: per product kind, the lookup counters plus the
        resident entry count, and aggregate totals across kinds — so a
        tier-2 hit rate is readable without instrumentation hacks.
        """
        per_kind = {
            section: {**stats.to_dict(), "entries": len(store)}
            for (section, store), stats in zip(
                self._sections(), self._all_stats()
            )
        }
        hits = sum(stats.hits for stats in self._all_stats())
        misses = sum(stats.misses for stats in self._all_stats())
        total = hits + misses
        return {
            **per_kind,
            "hits": hits,
            "misses": misses,
            "evictions": sum(stats.evictions for stats in self._all_stats()),
            "hit_rate": hits / total if total else 0.0,
            "entries": len(self),
            "summary": self.stats_summary(),
        }

    def stats_summary(self) -> str:
        """One-line reuse summary for logs and benchmark reports."""
        parts = []
        for label, stats in (
            ("sim", self.measurement_stats),
            ("model", self.prediction_stats),
            ("profile", self.report_stats),
            ("mix", self.mix_stats),
        ):
            if stats.total:
                parts.append(
                    f"{label} {stats.hits}/{stats.total}"
                    f" ({stats.hit_rate * 100:.0f}% hits)"
                )
        return "; ".join(parts) if parts else "cache unused"

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path | None = None) -> Path:
        """Write the cache to JSON; returns the path written.

        The write is atomic (temp file in the same directory, then
        ``os.replace``): a crash mid-save — exactly the moment a killed
        sweep is most likely to die — leaves the previous file intact
        instead of a truncated one, which is what makes
        :meth:`~repro.pipeline.experiment.Experiment.run_grid` safely
        resumable.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no cache path given and none configured")
        payload = {
            "format_version": CACHE_FORMAT_VERSION,
            "measurements": {
                key: measurement_to_dict(value)
                for key, value in self._measurements.items()
            },
            "predictions": {
                key: prediction_to_dict(value)
                for key, value in self._predictions.items()
            },
            "reports": {
                key: report_to_dict(value) for key, value in self._reports.items()
            },
            "mixes": {
                key: mix_to_dict(value) for key, value in self._mixes.items()
            },
        }
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, target)
        return target

    def _load(self, path: Path) -> None:
        """Load a cache file, skipping (with a warning) whatever is broken.

        A truncated or hand-damaged file must never abort a sweep — the
        cache is an accelerator, so the worst acceptable outcome of
        corruption is recomputing: unreadable JSON drops the whole file,
        a malformed individual entry drops just that entry.
        """
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            warnings.warn(
                f"result cache {path} is unreadable ({exc}); starting empty",
                stacklevel=2,
            )
            return
        if not isinstance(data, dict):
            warnings.warn(
                f"result cache {path} is not a JSON object; starting empty",
                stacklevel=2,
            )
            return
        if data.get("format_version") != CACHE_FORMAT_VERSION:
            return  # stale format: start empty rather than fail
        loaders = (
            ("measurements", self._measurements, measurement_from_dict),
            ("predictions", self._predictions, prediction_from_dict),
            ("reports", self._reports, report_from_dict),
            # Absent from pre-mix files; .get() below keeps them loading.
            ("mixes", self._mixes, mix_from_dict),
        )
        for section, store, loader in loaders:
            entries = data.get(section, {})
            if not isinstance(entries, dict):
                warnings.warn(
                    f"result cache {path}: section {section!r} is malformed;"
                    " skipping it",
                    stacklevel=2,
                )
                continue
            for key, value in entries.items():
                try:
                    store[key] = loader(value)
                except Exception as exc:  # noqa: BLE001 - any bad entry is skippable
                    warnings.warn(
                        f"result cache {path}: skipping corrupt {section}"
                        f" entry {key!r} ({type(exc).__name__}: {exc})",
                        stacklevel=2,
                    )
