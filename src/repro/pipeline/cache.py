"""Content-addressed result cache for the experiment pipeline.

Simulated runs are the expensive half of the paper's loop (a Fig-3 sweep
simulates every stage at every core count; the optimizer's profiling step
simulates four whole sample runs).  The cache memoizes three product
kinds, each addressed purely by content fingerprints so identical work is
never repeated — across sweep points, across searches, and (with a cache
file) across processes:

- **measurements** — simulated ``ApplicationMeasurement`` records, keyed
  by ``(source, platform, N, P, run_index, network)``;
- **predictions** — Equation-1 ``ApplicationPrediction`` records, keyed by
  ``(report, platform, N, P, network)``;
- **reports** — fitted ``ProfilingReport`` constants, keyed by
  ``(spec, profiling options)``.

Entries are exact-key lookups of deterministic computations, so a cache
hit returns bit-identical results to a fresh run; hit/miss counters let
benchmarks report the reuse rate.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.app_model import ApplicationPrediction
from repro.core.profiler import ProfilingReport
from repro.core.serialization import report_from_dict, report_to_dict
from repro.pipeline.records import (
    measurement_from_dict,
    measurement_to_dict,
    prediction_from_dict,
    prediction_to_dict,
)
from repro.simulator.run import ApplicationMeasurement

#: Cache-file format marker.
CACHE_FORMAT_VERSION = 1


def run_key(
    source_fp: str,
    platform_fp: str,
    nodes: int,
    cores_per_node: int,
    run_index: int = 0,
    network_fp: str = "none",
    fault_fp: str = "none",
    resilience_fp: str = "none",
) -> str:
    """Canonical key of one simulated run.

    ``fault_fp`` is the fingerprint of the run's fault plan and
    ``resilience_fp`` of its mitigation policy; clean unmitigated runs
    keep the historical key shape, so existing cache files stay valid
    and a faulted or mitigated run can never collide with a clean one.
    """
    key = (
        f"{source_fp}/{platform_fp}/N{nodes}/P{cores_per_node}"
        f"/r{run_index}/net-{network_fp}"
    )
    if fault_fp != "none":
        key += f"/faults-{fault_fp}"
    if resilience_fp != "none":
        key += f"/resil-{resilience_fp}"
    return key


def prediction_key(
    report_fp: str,
    platform_fp: str,
    nodes: int,
    cores_per_node: int,
    network_fp: str = "none",
) -> str:
    """Canonical key of one model evaluation."""
    return f"{report_fp}/{platform_fp}/N{nodes}/P{cores_per_node}/net-{network_fp}"


@dataclass
class CacheStats:
    """Hit/miss counters, per product kind."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class ResultCache:
    """In-memory (optionally file-backed) store of pipeline products.

    Parameters
    ----------
    path:
        Optional JSON file.  When given, existing entries are loaded on
        construction and :meth:`save` persists the current contents; the
        in-memory maps always hold live objects, so hits cost no
        deserialization.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._measurements: dict[str, ApplicationMeasurement] = {}
        self._predictions: dict[str, ApplicationPrediction] = {}
        self._reports: dict[str, ProfilingReport] = {}
        self.measurement_stats = CacheStats()
        self.prediction_stats = CacheStats()
        self.report_stats = CacheStats()
        if self.path is not None and self.path.exists():
            self._load(self.path)

    # -- measurements --------------------------------------------------------

    def get_measurement(self, key: str) -> ApplicationMeasurement | None:
        hit = self._measurements.get(key)
        if hit is None:
            self.measurement_stats.misses += 1
        else:
            self.measurement_stats.hits += 1
        return hit

    def put_measurement(self, key: str, value: ApplicationMeasurement) -> None:
        self._measurements[key] = value

    # -- predictions ---------------------------------------------------------

    def get_prediction(self, key: str) -> ApplicationPrediction | None:
        hit = self._predictions.get(key)
        if hit is None:
            self.prediction_stats.misses += 1
        else:
            self.prediction_stats.hits += 1
        return hit

    def put_prediction(self, key: str, value: ApplicationPrediction) -> None:
        self._predictions[key] = value

    # -- profiling reports ---------------------------------------------------

    def get_report(self, key: str) -> ProfilingReport | None:
        hit = self._reports.get(key)
        if hit is None:
            self.report_stats.misses += 1
        else:
            self.report_stats.hits += 1
        return hit

    def put_report(self, key: str, value: ProfilingReport) -> None:
        self._reports[key] = value

    # -- bookkeeping ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._measurements) + len(self._predictions) + len(self._reports)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._measurements.clear()
        self._predictions.clear()
        self._reports.clear()

    def stats_summary(self) -> str:
        """One-line reuse summary for logs and benchmark reports."""
        parts = []
        for label, stats in (
            ("sim", self.measurement_stats),
            ("model", self.prediction_stats),
            ("profile", self.report_stats),
        ):
            if stats.total:
                parts.append(
                    f"{label} {stats.hits}/{stats.total}"
                    f" ({stats.hit_rate * 100:.0f}% hits)"
                )
        return "; ".join(parts) if parts else "cache unused"

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path | None = None) -> Path:
        """Write the cache to JSON; returns the path written.

        The write is atomic (temp file in the same directory, then
        ``os.replace``): a crash mid-save — exactly the moment a killed
        sweep is most likely to die — leaves the previous file intact
        instead of a truncated one, which is what makes
        :meth:`~repro.pipeline.experiment.Experiment.run_grid` safely
        resumable.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no cache path given and none configured")
        payload = {
            "format_version": CACHE_FORMAT_VERSION,
            "measurements": {
                key: measurement_to_dict(value)
                for key, value in self._measurements.items()
            },
            "predictions": {
                key: prediction_to_dict(value)
                for key, value in self._predictions.items()
            },
            "reports": {
                key: report_to_dict(value) for key, value in self._reports.items()
            },
        }
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, target)
        return target

    def _load(self, path: Path) -> None:
        """Load a cache file, skipping (with a warning) whatever is broken.

        A truncated or hand-damaged file must never abort a sweep — the
        cache is an accelerator, so the worst acceptable outcome of
        corruption is recomputing: unreadable JSON drops the whole file,
        a malformed individual entry drops just that entry.
        """
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            warnings.warn(
                f"result cache {path} is unreadable ({exc}); starting empty",
                stacklevel=2,
            )
            return
        if not isinstance(data, dict):
            warnings.warn(
                f"result cache {path} is not a JSON object; starting empty",
                stacklevel=2,
            )
            return
        if data.get("format_version") != CACHE_FORMAT_VERSION:
            return  # stale format: start empty rather than fail
        loaders = (
            ("measurements", self._measurements, measurement_from_dict),
            ("predictions", self._predictions, prediction_from_dict),
            ("reports", self._reports, report_from_dict),
        )
        for section, store, loader in loaders:
            entries = data.get(section, {})
            if not isinstance(entries, dict):
                warnings.warn(
                    f"result cache {path}: section {section!r} is malformed;"
                    " skipping it",
                    stacklevel=2,
                )
                continue
            for key, value in entries.items():
                try:
                    store[key] = loader(value)
                except Exception as exc:  # noqa: BLE001 - any bad entry is skippable
                    warnings.warn(
                        f"result cache {path}: skipping corrupt {section}"
                        f" entry {key!r} ({type(exc).__name__}: {exc})",
                        stacklevel=2,
                    )
