"""The experiment orchestrator: one loop for every frontend.

An :class:`Experiment` binds a workload source to a platform and drives
the paper's whole methodology through one API:

- :meth:`measure` — simulate the "exp" side on the platform's cluster;
- :meth:`predict` — evaluate the Equation-1 "model" side on the same
  devices;
- :meth:`run` — both, composed into a uniform
  :class:`~repro.pipeline.records.RunResult` with per-stage breakdown,
  error rate, and utilizations;
- :meth:`run_grid` — the cross product over ``(N, P, run_index)`` that
  sweeps and validation figures are made of.

Every product is memoized in the experiment's :class:`~repro.pipeline
.cache.ResultCache` under content-addressed keys, so repeated points —
within a sweep, across sweeps, or across a whole optimizer search — cost
a dictionary lookup and return bit-identical records.

Grid cells are independent deterministic computations, so
:meth:`run_grid` (and :meth:`run_repeated`, which delegates to it) takes
``workers=`` and fans cold cells across a
:mod:`repro.parallel` process pool: each worker rebuilds the experiment
from a pickled ``(spec, report, platform, ...)`` payload, simulates its
cells into a private in-memory cache, and ships the fresh entries back
as shards; the parent merges the shards and composes every record
in-order from the now-warm cache — which is why parallel output is
bit-identical to serial (see ``docs/PERFORMANCE.md``).

Parallel grids run *supervised*: cold cells go through a
:class:`~repro.parallel.supervisor.TaskSupervisor` under an
:class:`~repro.parallel.supervisor.ExecutionPolicy` (``execution=``), so
a dead worker rebuilds the pool and retries only the in-flight cells, a
hung cell trips its per-item timeout, and a poison cell is quarantined
into a structured :class:`~repro.errors.ExecutionError` *after* the
surviving cells' shards are merged — and each shard is checkpointed to a
file-backed cache as it lands, so a killed or failed run resumes from
the last merged shard (see ``docs/EXECUTION.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cluster.network import NetworkModel
from repro.core.app_model import ApplicationPrediction
from repro.core.profiler import ProfilingReport
from repro.faults.plan import FaultPlan
from repro.core.predictor import Predictor
from repro.errors import ConfigurationError
from repro.parallel import (
    ExecutionPolicy,
    TaskSupervisor,
    resolve_backend,
    validate_execution,
)
from repro.pipeline.cache import ResultCache, mix_key, prediction_key, run_key
from repro.pipeline.fingerprint import fingerprint
from repro.pipeline.platforms import Platform, as_platform
from repro.pipeline.records import (
    MixJobResult,
    MixResult,
    RunResult,
    compose_run_result,
)
from repro.pipeline.sources import ResolvedWorkload, WorkloadSource, as_source
from repro.resilience import ResiliencePolicy
from repro.schedule.mix import (
    JobTimeline,
    MixJob,
    MixMeasurement,
    canonical_jobs,
    measure_mix as simulate_mix,
)
from repro.simulator.run import ApplicationMeasurement
from repro.workloads.base import WorkloadSpec, scale_workload_volume
from repro.workloads.runner import measure_workload

#: Sentinel for "use the experiment's own fault plan" on per-call
#: ``faults=`` overrides (``None`` must mean "no faults").
_DEFAULT_FAULTS = object()

#: Same trick for per-call ``resilience=`` overrides.
_DEFAULT_RESILIENCE = object()


@dataclass(frozen=True)
class _GridContext:
    """Per-grid invariants, fingerprinted once instead of once per cell.

    ``measure`` used to recompute the spec, network, fault, and
    resilience fingerprints for every cell of a grid; they only depend
    on the experiment and the call-level overrides, so one context per
    grid (or per single run) covers every cell.
    """

    plan: FaultPlan | None
    policy: ResiliencePolicy | None
    spec: WorkloadSpec
    spec_fp: str
    network_fp: str
    fault_fp: str
    resilience_fp: str


class Experiment:
    """A workload source bound to a platform, with cached products.

    Parameters
    ----------
    source:
        Anything :func:`~repro.pipeline.sources.as_source` accepts — a
        spec, a ``DoppioContext`` / profile list, a profiling report, or
        a report path.
    platform:
        Anything :func:`~repro.pipeline.platforms.as_platform` accepts —
        a cluster, a hybrid disk configuration, or a cloud configuration.
    cache:
        Shared :class:`ResultCache`; a private one is created when
        omitted, so memoization always works within the experiment.
    network:
        Optional finite network; ``None`` (the default) keeps the
        infinite-network behaviour every existing benchmark was tuned
        against.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` superimposed on
        every *measurement* (predictions stay fault-blind, so a faulted
        ``RunResult`` reads as sim-under-faults vs. the clean Eq.-1
        model).  The plan's fingerprint is folded into measurement cache
        keys; individual calls may override with their own ``faults=``.
    resilience:
        Optional :class:`~repro.resilience.ResiliencePolicy` arming the
        simulator's recovery mechanisms on every measurement.  Like
        faults, its fingerprint is folded into measurement cache keys
        (mitigated runs never collide with unmitigated ones) and
        individual calls may override with ``resilience=``.
    """

    def __init__(
        self,
        source,
        platform,
        cache: ResultCache | None = None,
        network: NetworkModel | None = None,
        faults: FaultPlan | None = None,
        resilience: ResiliencePolicy | None = None,
    ) -> None:
        self.source: WorkloadSource = as_source(source)
        self.platform: Platform = as_platform(platform)
        self.cache = cache if cache is not None else ResultCache()
        self.network = network
        self.faults = faults
        self.resilience = resilience
        self._platform_fp = self.platform.fingerprint()
        self._resolved: ResolvedWorkload | None = None
        self._predictor: Predictor | None = None

    # -- resolution ----------------------------------------------------------

    @property
    def resolved(self) -> ResolvedWorkload:
        """The source's canonical (spec, report) pair, resolved once."""
        if self._resolved is None:
            self._resolved = self.source.resolve(self.cache)
        return self._resolved

    @property
    def predictor(self) -> Predictor:
        """Equation-1 predictor over the resolved profiling report."""
        if self._predictor is None:
            self._predictor = Predictor(self.resolved.report)
        return self._predictor

    @property
    def network_gbps(self) -> float | None:
        """Configured per-link bandwidth in Gb/s (``None`` = infinite)."""
        if self.network is None:
            return None
        return self.network.link_bandwidth * 8.0 / 1e9

    def describe(self) -> str:
        """``source @ platform`` one-liner."""
        return f"{self.source.describe()} @ {self.platform.label}"

    # -- the two halves ------------------------------------------------------

    def measure(
        self,
        nodes: int | None = None,
        cores_per_node: int | None = None,
        run_index: int = 0,
        faults: FaultPlan | None = _DEFAULT_FAULTS,  # type: ignore[assignment]
        resilience: ResiliencePolicy | None = _DEFAULT_RESILIENCE,  # type: ignore[assignment]
    ) -> ApplicationMeasurement:
        """Simulated "exp" measurement at ``(N, P)`` (cached).

        Needs only the spec half of the source, so spec-backed sources
        are *not* profiled — ``repro simulate`` stays as cheap as the
        bare runner it replaced.  ``faults`` overrides the experiment's
        fault plan for this call (``None`` forces a clean run);
        ``resilience`` likewise overrides the mitigation policy
        (``None`` forces an unmitigated run).
        """
        nodes, cores = self._shape(nodes, cores_per_node)
        context = self._grid_context(faults, resilience)
        return self._measure_cell(nodes, cores, run_index, context)

    def predict(
        self,
        nodes: int | None = None,
        cores_per_node: int | None = None,
    ) -> ApplicationPrediction:
        """Equation-1 "model" prediction at ``(N, P)`` (cached)."""
        nodes, cores = self._shape(nodes, cores_per_node)
        return self._predict_cell(nodes, cores, self._network_fp())

    def _measure_cell(
        self, nodes: int, cores: int, run_index: int, context: _GridContext
    ) -> ApplicationMeasurement:
        key = self._measurement_key(nodes, cores, run_index, context)
        measurement = self.cache.get_measurement(key)
        if measurement is None:
            measurement = measure_workload(
                self.platform.cluster(nodes),
                cores,
                context.spec,
                run_index=run_index,
                network=self.network,
                faults=context.plan,
                resilience=context.policy,
            )
            self.cache.put_measurement(key, measurement)
        return measurement

    def _predict_cell(
        self, nodes: int, cores: int, network_fp: str
    ) -> ApplicationPrediction:
        key = prediction_key(
            self.resolved.report_fingerprint,
            self._platform_fp,
            nodes,
            cores,
            network_fp=network_fp,
        )
        prediction = self.cache.get_prediction(key)
        if prediction is None:
            bandwidth = (
                self.network.link_bandwidth if self.network is not None else None
            )
            model = self.platform.model(
                self.predictor, nodes, network_bandwidth=bandwidth
            )
            prediction = model.predict(nodes, cores)
            self.cache.put_prediction(key, prediction)
        return prediction

    # -- composed runs -------------------------------------------------------

    def run(
        self,
        nodes: int | None = None,
        cores_per_node: int | None = None,
        run_index: int = 0,
        faults: FaultPlan | None = _DEFAULT_FAULTS,  # type: ignore[assignment]
        resilience: ResiliencePolicy | None = _DEFAULT_RESILIENCE,  # type: ignore[assignment]
    ) -> RunResult:
        """One full exp-vs-model point."""
        nodes, cores = self._shape(nodes, cores_per_node)
        context = self._grid_context(faults, resilience)
        return self._run_cell(nodes, cores, run_index, context)

    def run_repeated(
        self,
        nodes: int | None = None,
        cores_per_node: int | None = None,
        runs: int = 5,
        faults: FaultPlan | None = _DEFAULT_FAULTS,  # type: ignore[assignment]
        resilience: ResiliencePolicy | None = _DEFAULT_RESILIENCE,  # type: ignore[assignment]
        workers: int | None = None,
        execution: ExecutionPolicy | None = None,
    ) -> list[RunResult]:
        """The paper's five-run protocol at one ``(N, P)`` point.

        A ``run_grid`` over the run-index axis: checkpointed the same
        way, parallelizable the same way (``workers=``), and supervised
        the same way (``execution=``).
        """
        if runs <= 0:
            raise ConfigurationError("need at least one run")
        nodes, cores = self._shape(nodes, cores_per_node)
        return self.run_grid(
            nodes=(nodes,),
            cores_per_node=(cores,),
            run_indices=tuple(range(runs)),
            faults=faults,
            resilience=resilience,
            workers=workers,
            execution=execution,
        )

    def run_grid(
        self,
        nodes: Sequence[int] | None = None,
        cores_per_node: Sequence[int] | None = None,
        run_indices: Iterable[int] = (0,),
        faults: FaultPlan | None = _DEFAULT_FAULTS,  # type: ignore[assignment]
        resilience: ResiliencePolicy | None = _DEFAULT_RESILIENCE,  # type: ignore[assignment]
        workers: int | None = None,
        execution: ExecutionPolicy | None = None,
    ) -> list[RunResult]:
        """The ``N x P x run`` cross product, row-major in that order.

        When the experiment's cache is file-backed, the grid is
        *crash-safe*: every cell that required fresh computation is
        checkpointed (atomically) to the cache file as soon as it
        completes — per cell on the serial path, per merged worker shard
        on the parallel path — so a killed sweep rerun with the same
        arguments resumes from the last finished cell: completed cells
        come back as cache hits, bit-identical to the interrupted run's.

        ``workers`` selects the :mod:`repro.parallel` backend: ``None``
        or ``1`` runs serially (the historical path), ``0`` auto-sizes
        to the available CPUs, ``k > 1`` fans the cold cells across
        ``k`` worker processes.  Results are **bit-identical** across
        all settings.

        ``execution`` tunes the supervision of a parallel grid (per-cell
        timeout, retry attempts, backoff, quarantine vs. abort); the
        default :class:`~repro.parallel.supervisor.ExecutionPolicy`
        retries transient failures and rebuilds the pool after worker
        death.  Cells that fail every attempt raise a structured
        :class:`~repro.errors.ExecutionError` — after the surviving
        shards are merged and checkpointed, so the rerun recomputes only
        the failed cells.  Serial grids ignore the policy (exceptions
        propagate immediately, as they always have).
        """
        node_axis = self._axis(nodes, self.platform.default_nodes(), "nodes")
        core_axis = self._axis(
            cores_per_node, self.platform.default_cores(), "cores_per_node"
        )
        cells = [
            (n, p, r)
            for n in node_axis
            for p in core_axis
            for r in run_indices
        ]
        context = self._grid_context(faults, resilience)
        validate_execution(execution)
        if workers is None or workers == 1:
            return [
                self._checkpointed_cell(n, p, r, context)
                for (n, p, r) in cells
            ]
        return self._run_grid_parallel(cells, context, workers, execution)

    # -- multi-tenant mixes --------------------------------------------------

    def measure_mix(
        self,
        jobs: Sequence[MixJob | WorkloadSpec | tuple],
        policy: str = "fair",
        nodes: int | None = None,
        cores_per_node: int | None = None,
        run_index: int = 0,
        faults: FaultPlan | None = _DEFAULT_FAULTS,  # type: ignore[assignment]
    ) -> MixMeasurement:
        """Simulate ``jobs`` sharing this platform's cluster (cached).

        ``jobs`` entries may be :class:`~repro.schedule.mix.MixJob`
        instances, bare :class:`WorkloadSpec`\\ s (arrival 0, scale 1),
        or ``(spec,)`` / ``(spec, arrival)`` /
        ``(spec, arrival, volume_scale)`` tuples.

        A one-job mix *is* the single-tenant run: it delegates to the
        exact solo simulation path (same cache key, same event sequence,
        per-stage fault anchoring) and wraps the result in a
        :class:`MixMeasurement`, so K = 1 output is bit-identical to
        :meth:`measure` — the engine's own mix-of-one agrees only to
        float round-off (see docs/MULTITENANT.md).  Mixes of two or more
        run the :class:`~repro.schedule.mix.MixEngine` and are memoized
        under a ``mix/…`` key fingerprinting every job plus the policy,
        so no co-tenant change can alias a cached result.
        """
        mix_jobs = self._coerce_mix_jobs(jobs)
        nodes, cores = self._shape(nodes, cores_per_node)
        plan = self._resolve_faults(faults)
        named = canonical_jobs(mix_jobs)
        if len(named) == 1:
            return self._solo_mix(named[0], policy, nodes, cores, run_index, plan)
        key = mix_key(
            self._mix_fingerprint(named, policy),
            self._platform_fp,
            nodes,
            cores,
            run_index=run_index,
            network_fp=self._network_fp(),
            fault_fp=self._fault_fp(plan),
        )
        mix = self.cache.get_mix(key)
        if mix is None:
            mix = simulate_mix(
                self.platform.cluster(nodes),
                cores,
                mix_jobs,
                policy=policy,
                run_index=run_index,
                network=self.network,
                faults=plan,
            )
            self.cache.put_mix(key, mix)
            if self.cache.path is not None:
                self.cache.save()
        return mix

    def run_mix(
        self,
        jobs: Sequence[MixJob | WorkloadSpec | tuple],
        policy: str = "fair",
        nodes: int | None = None,
        cores_per_node: int | None = None,
        run_index: int = 0,
        faults: FaultPlan | None = _DEFAULT_FAULTS,  # type: ignore[assignment]
    ) -> MixResult:
        """The full co-location experiment: mix + per-job interference.

        On top of :meth:`measure_mix`, every job gets its clean solo
        baseline (same spec, scale, ``(N, P)``, and run index, alone on
        the cluster with no faults) and its solo Equation-1 prediction,
        both through child experiments sharing this experiment's cache —
        so ``slowdown`` reads as "how much slower than running alone on
        a healthy cluster" and ``result.error`` as "how far off the
        single-tenant model is once neighbors contend".
        """
        mix_jobs = self._coerce_mix_jobs(jobs)
        nodes, cores = self._shape(nodes, cores_per_node)
        misses_before = self._total_misses()
        mix = self.measure_mix(
            mix_jobs,
            policy=policy,
            nodes=nodes,
            cores_per_node=cores,
            run_index=run_index,
            faults=faults,
        )
        job_results = []
        for timeline, (name, job) in zip(mix.jobs, canonical_jobs(mix_jobs)):
            child = Experiment(
                scale_workload_volume(job.spec, job.volume_scale),
                self.platform,
                cache=self.cache,
                network=self.network,
            )
            solo_seconds = child.measure(
                nodes, cores, run_index=run_index
            ).total_seconds
            mixed_seconds = timeline.measurement.total_seconds
            job_results.append(
                MixJobResult(
                    name=timeline.name,
                    arrival=timeline.arrival,
                    volume_scale=timeline.volume_scale,
                    waiting_seconds=timeline.waiting,
                    turnaround_seconds=timeline.turnaround,
                    solo_seconds=solo_seconds,
                    slowdown=(
                        mixed_seconds / solo_seconds
                        if solo_seconds > 0
                        else 1.0
                    ),
                    result=compose_run_result(
                        timeline.measurement,
                        child.predict(nodes, cores),
                        platform_label=self.platform.label,
                        run_index=run_index,
                        network_gbps=self.network_gbps,
                    ),
                )
            )
        if self.cache.path is not None and self._total_misses() > misses_before:
            self.cache.save()
        return MixResult(
            policy=mix.policy,
            platform=self.platform.label,
            nodes=nodes,
            cores_per_node=cores,
            run_index=run_index,
            makespan_seconds=mix.makespan,
            jobs=tuple(job_results),
            device_utilizations=mix.device_utilizations,
        )

    def _solo_mix(
        self,
        named: tuple[str, MixJob],
        policy: str,
        nodes: int,
        cores: int,
        run_index: int,
        plan: FaultPlan | None,
    ) -> MixMeasurement:
        """A one-job mix via the solo path, bit-identical to ``measure``.

        The cache key is the plain single-job ``run_key`` of the (scaled)
        spec, so a K = 1 mix and the equivalent solo experiment share one
        cached measurement.  The job's stage device utilizations are
        re-expressed over the mix makespan (``arrival`` + runtime) for
        the cluster-level view.
        """
        from repro.schedule.mix import MIX_POLICIES
        from repro.schedule.scheduler import SchedulingError

        if policy not in MIX_POLICIES:
            raise SchedulingError(
                f"unknown mix policy {policy!r}; expected one of {MIX_POLICIES}"
            )
        name, job = named
        spec = scale_workload_volume(job.spec, job.volume_scale)
        key = run_key(
            fingerprint(spec),
            self._platform_fp,
            nodes,
            cores,
            run_index=run_index,
            network_fp=self._network_fp(),
            fault_fp=self._fault_fp(plan),
        )
        measurement = self.cache.get_measurement(key)
        if measurement is None:
            measurement = measure_workload(
                self.platform.cluster(nodes),
                cores,
                spec,
                run_index=run_index,
                network=self.network,
                faults=plan,
            )
            self.cache.put_measurement(key, measurement)
            if self.cache.path is not None:
                self.cache.save()
        if measurement.name != name:
            measurement = ApplicationMeasurement(
                name=name, stages=measurement.stages
            )
        makespan = job.arrival + measurement.total_seconds
        busy: dict[tuple[str, bool], float] = {}
        for stage in measurement.stages:
            for device, is_write, fraction in stage.device_utilizations:
                busy[(device, is_write)] = (
                    busy.get((device, is_write), 0.0)
                    + fraction * stage.makespan
                )
        return MixMeasurement(
            policy=policy,
            nodes=nodes,
            cores_per_node=cores,
            makespan=makespan,
            jobs=(
                JobTimeline(
                    name=name,
                    arrival=job.arrival,
                    volume_scale=job.volume_scale,
                    first_launch=job.arrival,
                    finish=makespan,
                    measurement=measurement,
                ),
            ),
            device_utilizations=tuple(
                (device, is_write, seconds / makespan)
                for (device, is_write), seconds in sorted(busy.items())
                if makespan > 0
            ),
        )

    @staticmethod
    def _coerce_mix_jobs(
        jobs: Sequence[MixJob | WorkloadSpec | tuple],
    ) -> tuple[MixJob, ...]:
        """Normalize the accepted job shorthands into ``MixJob``s."""
        if isinstance(jobs, (MixJob, WorkloadSpec)):
            raise ConfigurationError(
                "measure_mix/run_mix take a sequence of jobs; wrap the"
                " single job in a list"
            )
        coerced = []
        for entry in jobs:
            if isinstance(entry, MixJob):
                coerced.append(entry)
            elif isinstance(entry, WorkloadSpec):
                coerced.append(MixJob(spec=entry))
            elif isinstance(entry, tuple) and 1 <= len(entry) <= 3:
                spec = entry[0]
                if not isinstance(spec, WorkloadSpec):
                    raise ConfigurationError(
                        f"mix job tuple must start with a WorkloadSpec,"
                        f" got {type(spec).__name__}"
                    )
                arrival = float(entry[1]) if len(entry) > 1 else 0.0
                scale = float(entry[2]) if len(entry) > 2 else 1.0
                coerced.append(
                    MixJob(spec=spec, arrival=arrival, volume_scale=scale)
                )
            else:
                raise ConfigurationError(
                    f"cannot interpret mix job entry {entry!r}; expected a"
                    " MixJob, a WorkloadSpec, or a (spec, arrival,"
                    " volume_scale) tuple"
                )
        if not coerced:
            raise ConfigurationError("a mix needs at least one job")
        return tuple(coerced)

    @staticmethod
    def _mix_fingerprint(
        named: list[tuple[str, MixJob]], policy: str
    ) -> str:
        """Content hash of the whole mix, permutation-invariant.

        Jobs are fingerprinted in canonical order with their
        disambiguated names, so any submitted ordering of the same jobs
        addresses the same cache entry — matching the engine, whose
        schedule is invariant under the same permutations.
        """
        return fingerprint(
            {
                "policy": policy,
                "jobs": [
                    {
                        "name": name,
                        "spec": fingerprint(job.spec),
                        "arrival": job.arrival,
                        "volume_scale": job.volume_scale,
                    }
                    for name, job in named
                ],
            }
        )

    def _total_misses(self) -> int:
        return (
            self.cache.measurement_stats.misses
            + self.cache.prediction_stats.misses
            + self.cache.report_stats.misses
            + self.cache.mix_stats.misses
        )

    # -- parallel dispatch ---------------------------------------------------

    def _run_grid_parallel(
        self,
        cells: list[tuple[int, int, int]],
        context: _GridContext,
        workers: int,
        execution: ExecutionPolicy | None,
    ) -> list[RunResult]:
        """Fan cold cells across supervised workers, then compose in order.

        The parent never simulates: it pre-splits cells into warm (both
        halves already cached) and cold, ships only the cold ones, and
        merges the returned cache shards.  Every cell is then composed
        in grid order through the same code path as a serial grid —
        which at that point is all cache hits, making the result list
        bit-identical to ``workers=1``.

        Cold cells run under a :class:`~repro.parallel.supervisor
        .TaskSupervisor`: worker death rebuilds the pool and retries the
        in-flight cells, hung cells trip the policy's timeout, and each
        completed shard is merged — and, on a file-backed cache,
        atomically checkpointed — *as it lands*, so a run killed between
        shards resumes from the last merged one.  Cells that fail every
        attempt surface as a structured
        :class:`~repro.errors.ExecutionError` after the survivors'
        shards are safely merged: the cache stays resumable and a rerun
        recomputes only the failed cells.
        """
        resolved = self.resolved  # force resolution before building payload
        cold: list[tuple[int, int, int]] = []
        seen: set[tuple[int, int, int]] = set()
        for cell in cells:
            if cell in seen:
                continue
            seen.add(cell)
            n, p, r = cell
            if not (
                self.cache.contains_measurement(
                    self._measurement_key(n, p, r, context)
                )
                and self.cache.contains_prediction(
                    prediction_key(
                        resolved.report_fingerprint,
                        self._platform_fp,
                        n,
                        p,
                        network_fp=context.network_fp,
                    )
                )
            ):
                cold.append(cell)
        if cold:
            payload = _GridWorkerPayload(
                spec=resolved.spec,
                report=resolved.report,
                platform=self.platform,
                network=self.network,
                faults=context.plan,
                resilience=context.policy,
            )
            backend = resolve_backend(
                workers, initializer=_init_grid_worker, initargs=(payload,)
            )
            if backend.workers == 1:
                # Auto-sizing resolved to one CPU: plain serial grid.
                return [
                    self._checkpointed_cell(n, p, r, context)
                    for (n, p, r) in cells
                ]
            supervisor = TaskSupervisor(
                backend,
                execution if execution is not None else ExecutionPolicy(),
            )

            def merge_shard(index: int, shard: dict) -> None:
                # Incremental checkpoint: persist every shard as it
                # lands, not once after the final merge, so a killed
                # run resumes from the last completed cell.
                added = self.cache.merge_shard(shard)
                if self.cache.path is not None and added:
                    self.cache.save()

            with backend:
                report = supervisor.run(
                    _run_grid_cell, cold, on_result=merge_shard
                )
            report.raise_if_failed(
                f"run_grid({len(cold)} cold cell(s), workers={workers})"
            )
        return [
            self._run_cell(n, p, r, context) for (n, p, r) in cells
        ]

    def _run_cell(
        self, nodes: int, cores: int, run_index: int, context: _GridContext
    ) -> RunResult:
        return compose_run_result(
            self._measure_cell(nodes, cores, run_index, context),
            self._predict_cell(nodes, cores, context.network_fp),
            platform_label=self.platform.label,
            run_index=run_index,
            network_gbps=self.network_gbps,
        )

    def _checkpointed_cell(
        self, nodes: int, cores: int, run_index: int, context: _GridContext
    ) -> RunResult:
        """One grid cell, persisted to a file-backed cache when fresh."""
        misses_before = (
            self.cache.measurement_stats.misses
            + self.cache.prediction_stats.misses
            + self.cache.report_stats.misses
        )
        result = self._run_cell(nodes, cores, run_index, context)
        misses_after = (
            self.cache.measurement_stats.misses
            + self.cache.prediction_stats.misses
            + self.cache.report_stats.misses
        )
        if self.cache.path is not None and misses_after > misses_before:
            self.cache.save()
        return result

    # -- internals -----------------------------------------------------------

    def _grid_context(self, faults, resilience) -> _GridContext:
        """Resolve overrides and fingerprint the grid's invariants once."""
        plan = self._resolve_faults(faults)
        policy = self._resolve_resilience(resilience)
        spec, spec_fp = self._spec_and_fingerprint()
        return _GridContext(
            plan=plan,
            policy=policy,
            spec=spec,
            spec_fp=spec_fp,
            network_fp=self._network_fp(),
            fault_fp=self._fault_fp(plan),
            resilience_fp=self._resilience_fp(policy),
        )

    def _measurement_key(
        self, nodes: int, cores: int, run_index: int, context: _GridContext
    ) -> str:
        return run_key(
            context.spec_fp,
            self._platform_fp,
            nodes,
            cores,
            run_index=run_index,
            network_fp=context.network_fp,
            fault_fp=context.fault_fp,
            resilience_fp=context.resilience_fp,
        )

    def _spec_and_fingerprint(self):
        if self._resolved is not None:
            return self._resolved.spec, self._resolved.spec_fingerprint
        spec_only = getattr(self.source, "spec_only", None)
        if spec_only is not None:
            return spec_only()
        resolved = self.resolved
        return resolved.spec, resolved.spec_fingerprint

    def _network_fp(self) -> str:
        if self.network is None:
            return "none"
        return repr(self.network.link_bandwidth)

    def _resolve_faults(self, faults) -> FaultPlan | None:
        return self.faults if faults is _DEFAULT_FAULTS else faults

    def _resolve_resilience(self, resilience) -> ResiliencePolicy | None:
        return self.resilience if resilience is _DEFAULT_RESILIENCE else resilience

    @staticmethod
    def _fault_fp(plan: FaultPlan | None) -> str:
        if plan is None or not plan.faults:
            return "none"
        return plan.fingerprint()

    @staticmethod
    def _resilience_fp(policy: ResiliencePolicy | None) -> str:
        if policy is None:
            return "none"
        return policy.fingerprint()

    def _shape(
        self, nodes: int | None, cores_per_node: int | None
    ) -> tuple[int, int]:
        nodes = nodes if nodes is not None else self.platform.default_nodes()
        cores = (
            cores_per_node
            if cores_per_node is not None
            else self.platform.default_cores()
        )
        if nodes is None or cores is None:
            raise ConfigurationError(
                f"{self.describe()}: platform has no default shape; pass"
                " nodes and cores_per_node explicitly"
            )
        return nodes, cores

    @staticmethod
    def _axis(
        values: Sequence[int] | None, default: int | None, label: str
    ) -> Sequence[int]:
        if values is not None:
            return values
        if default is not None:
            return (default,)
        raise ConfigurationError(
            f"no {label} axis given and the platform has no default"
        )


# -- worker-process side ------------------------------------------------------


@dataclass
class _GridWorkerPayload:
    """Everything a worker needs to rebuild the experiment, picklable.

    The platform and network travel as objects (a few KB); the source
    travels as its resolved ``(spec, report)`` pair, whose fingerprints
    are recomputed identically on the worker side — so worker cache keys
    match the parent's exactly.
    """

    spec: WorkloadSpec
    report: ProfilingReport
    platform: Platform
    network: NetworkModel | None
    faults: FaultPlan | None
    resilience: ResiliencePolicy | None


#: Per-worker-process experiment, installed by :func:`_init_grid_worker`.
_WORKER_EXPERIMENT: Experiment | None = None
#: Qualified cache keys this worker has already shipped back.
_WORKER_EXPORTED: set[str] = set()


def _init_grid_worker(payload: _GridWorkerPayload) -> None:
    """Pool initializer: build this worker's experiment once."""
    global _WORKER_EXPERIMENT, _WORKER_EXPORTED
    from repro.pipeline.sources import ResolvedSource

    _WORKER_EXPERIMENT = Experiment(
        ResolvedSource(payload.spec, payload.report),
        payload.platform,
        network=payload.network,
        faults=payload.faults,
        resilience=payload.resilience,
    )
    _WORKER_EXPORTED = set()


def _run_grid_cell(cell: tuple[int, int, int]) -> dict[str, dict]:
    """Task function: compute one cold cell, return the fresh cache shard."""
    experiment = _WORKER_EXPERIMENT
    if experiment is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("grid worker used before initialization")
    nodes, cores, run_index = cell
    experiment.run(nodes, cores, run_index=run_index)
    shard = experiment.cache.export_shard(exclude=_WORKER_EXPORTED)
    _WORKER_EXPORTED.update(ResultCache.shard_keys(shard))
    return shard
