"""The experiment orchestrator: one loop for every frontend.

An :class:`Experiment` binds a workload source to a platform and drives
the paper's whole methodology through one API:

- :meth:`measure` — simulate the "exp" side on the platform's cluster;
- :meth:`predict` — evaluate the Equation-1 "model" side on the same
  devices;
- :meth:`run` — both, composed into a uniform
  :class:`~repro.pipeline.records.RunResult` with per-stage breakdown,
  error rate, and utilizations;
- :meth:`run_grid` — the cross product over ``(N, P, run_index)`` that
  sweeps and validation figures are made of.

Every product is memoized in the experiment's :class:`~repro.pipeline
.cache.ResultCache` under content-addressed keys, so repeated points —
within a sweep, across sweeps, or across a whole optimizer search — cost
a dictionary lookup and return bit-identical records.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cluster.network import NetworkModel
from repro.core.app_model import ApplicationPrediction
from repro.faults.plan import FaultPlan
from repro.core.predictor import Predictor
from repro.errors import ConfigurationError
from repro.pipeline.cache import ResultCache, prediction_key, run_key
from repro.pipeline.platforms import Platform, as_platform
from repro.pipeline.records import RunResult, compose_run_result
from repro.pipeline.sources import ResolvedWorkload, WorkloadSource, as_source
from repro.resilience import ResiliencePolicy
from repro.simulator.run import ApplicationMeasurement
from repro.workloads.runner import measure_workload

#: Sentinel for "use the experiment's own fault plan" on per-call
#: ``faults=`` overrides (``None`` must mean "no faults").
_DEFAULT_FAULTS = object()

#: Same trick for per-call ``resilience=`` overrides.
_DEFAULT_RESILIENCE = object()


class Experiment:
    """A workload source bound to a platform, with cached products.

    Parameters
    ----------
    source:
        Anything :func:`~repro.pipeline.sources.as_source` accepts — a
        spec, a ``DoppioContext`` / profile list, a profiling report, or
        a report path.
    platform:
        Anything :func:`~repro.pipeline.platforms.as_platform` accepts —
        a cluster, a hybrid disk configuration, or a cloud configuration.
    cache:
        Shared :class:`ResultCache`; a private one is created when
        omitted, so memoization always works within the experiment.
    network:
        Optional finite network; ``None`` (the default) keeps the
        infinite-network behaviour every existing benchmark was tuned
        against.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` superimposed on
        every *measurement* (predictions stay fault-blind, so a faulted
        ``RunResult`` reads as sim-under-faults vs. the clean Eq.-1
        model).  The plan's fingerprint is folded into measurement cache
        keys; individual calls may override with their own ``faults=``.
    resilience:
        Optional :class:`~repro.resilience.ResiliencePolicy` arming the
        simulator's recovery mechanisms on every measurement.  Like
        faults, its fingerprint is folded into measurement cache keys
        (mitigated runs never collide with unmitigated ones) and
        individual calls may override with ``resilience=``.
    """

    def __init__(
        self,
        source,
        platform,
        cache: ResultCache | None = None,
        network: NetworkModel | None = None,
        faults: FaultPlan | None = None,
        resilience: ResiliencePolicy | None = None,
    ) -> None:
        self.source: WorkloadSource = as_source(source)
        self.platform: Platform = as_platform(platform)
        self.cache = cache if cache is not None else ResultCache()
        self.network = network
        self.faults = faults
        self.resilience = resilience
        self._platform_fp = self.platform.fingerprint()
        self._resolved: ResolvedWorkload | None = None
        self._predictor: Predictor | None = None

    # -- resolution ----------------------------------------------------------

    @property
    def resolved(self) -> ResolvedWorkload:
        """The source's canonical (spec, report) pair, resolved once."""
        if self._resolved is None:
            self._resolved = self.source.resolve(self.cache)
        return self._resolved

    @property
    def predictor(self) -> Predictor:
        """Equation-1 predictor over the resolved profiling report."""
        if self._predictor is None:
            self._predictor = Predictor(self.resolved.report)
        return self._predictor

    @property
    def network_gbps(self) -> float | None:
        """Configured per-link bandwidth in Gb/s (``None`` = infinite)."""
        if self.network is None:
            return None
        return self.network.link_bandwidth * 8.0 / 1e9

    def describe(self) -> str:
        """``source @ platform`` one-liner."""
        return f"{self.source.describe()} @ {self.platform.label}"

    # -- the two halves ------------------------------------------------------

    def measure(
        self,
        nodes: int | None = None,
        cores_per_node: int | None = None,
        run_index: int = 0,
        faults: FaultPlan | None = _DEFAULT_FAULTS,  # type: ignore[assignment]
        resilience: ResiliencePolicy | None = _DEFAULT_RESILIENCE,  # type: ignore[assignment]
    ) -> ApplicationMeasurement:
        """Simulated "exp" measurement at ``(N, P)`` (cached).

        Needs only the spec half of the source, so spec-backed sources
        are *not* profiled — ``repro simulate`` stays as cheap as the
        bare runner it replaced.  ``faults`` overrides the experiment's
        fault plan for this call (``None`` forces a clean run);
        ``resilience`` likewise overrides the mitigation policy
        (``None`` forces an unmitigated run).
        """
        nodes, cores = self._shape(nodes, cores_per_node)
        plan = self._resolve_faults(faults)
        policy = self._resolve_resilience(resilience)
        spec, spec_fp = self._spec_and_fingerprint()
        key = run_key(
            spec_fp,
            self._platform_fp,
            nodes,
            cores,
            run_index=run_index,
            network_fp=self._network_fp(),
            fault_fp=self._fault_fp(plan),
            resilience_fp=self._resilience_fp(policy),
        )
        measurement = self.cache.get_measurement(key)
        if measurement is None:
            measurement = measure_workload(
                self.platform.cluster(nodes),
                cores,
                spec,
                run_index=run_index,
                network=self.network,
                faults=plan,
                resilience=policy,
            )
            self.cache.put_measurement(key, measurement)
        return measurement

    def predict(
        self,
        nodes: int | None = None,
        cores_per_node: int | None = None,
    ) -> ApplicationPrediction:
        """Equation-1 "model" prediction at ``(N, P)`` (cached)."""
        nodes, cores = self._shape(nodes, cores_per_node)
        key = prediction_key(
            self.resolved.report_fingerprint,
            self._platform_fp,
            nodes,
            cores,
            network_fp=self._network_fp(),
        )
        prediction = self.cache.get_prediction(key)
        if prediction is None:
            bandwidth = (
                self.network.link_bandwidth if self.network is not None else None
            )
            model = self.platform.model(
                self.predictor, nodes, network_bandwidth=bandwidth
            )
            prediction = model.predict(nodes, cores)
            self.cache.put_prediction(key, prediction)
        return prediction

    # -- composed runs -------------------------------------------------------

    def run(
        self,
        nodes: int | None = None,
        cores_per_node: int | None = None,
        run_index: int = 0,
        faults: FaultPlan | None = _DEFAULT_FAULTS,  # type: ignore[assignment]
        resilience: ResiliencePolicy | None = _DEFAULT_RESILIENCE,  # type: ignore[assignment]
    ) -> RunResult:
        """One full exp-vs-model point."""
        nodes, cores = self._shape(nodes, cores_per_node)
        return compose_run_result(
            self.measure(
                nodes, cores, run_index=run_index, faults=faults,
                resilience=resilience,
            ),
            self.predict(nodes, cores),
            platform_label=self.platform.label,
            run_index=run_index,
            network_gbps=self.network_gbps,
        )

    def run_repeated(
        self,
        nodes: int | None = None,
        cores_per_node: int | None = None,
        runs: int = 5,
        faults: FaultPlan | None = _DEFAULT_FAULTS,  # type: ignore[assignment]
        resilience: ResiliencePolicy | None = _DEFAULT_RESILIENCE,  # type: ignore[assignment]
    ) -> list[RunResult]:
        """The paper's five-run protocol at one ``(N, P)`` point.

        Checkpointed like :meth:`run_grid`: with a file-backed cache,
        each freshly computed run is persisted as it completes.
        """
        if runs <= 0:
            raise ConfigurationError("need at least one run")
        results = []
        for index in range(runs):
            results.append(
                self._checkpointed_run(
                    nodes, cores_per_node, index, faults, resilience
                )
            )
        return results

    def run_grid(
        self,
        nodes: Sequence[int] | None = None,
        cores_per_node: Sequence[int] | None = None,
        run_indices: Iterable[int] = (0,),
        faults: FaultPlan | None = _DEFAULT_FAULTS,  # type: ignore[assignment]
        resilience: ResiliencePolicy | None = _DEFAULT_RESILIENCE,  # type: ignore[assignment]
    ) -> list[RunResult]:
        """The ``N x P x run`` cross product, row-major in that order.

        When the experiment's cache is file-backed, the grid is
        *crash-safe*: every cell that required fresh computation is
        checkpointed (atomically) to the cache file as soon as it
        completes, so a killed sweep rerun with the same arguments
        resumes from the last finished cell — completed cells come back
        as cache hits, bit-identical to the interrupted run's.
        """
        node_axis = self._axis(nodes, self.platform.default_nodes(), "nodes")
        core_axis = self._axis(
            cores_per_node, self.platform.default_cores(), "cores_per_node"
        )
        return [
            self._checkpointed_run(n, p, r, faults, resilience)
            for n in node_axis
            for p in core_axis
            for r in run_indices
        ]

    def _checkpointed_run(self, nodes, cores, run_index, faults, resilience):
        """One grid cell, persisted to a file-backed cache when fresh."""
        misses_before = (
            self.cache.measurement_stats.misses
            + self.cache.prediction_stats.misses
            + self.cache.report_stats.misses
        )
        result = self.run(
            nodes, cores, run_index=run_index, faults=faults,
            resilience=resilience,
        )
        misses_after = (
            self.cache.measurement_stats.misses
            + self.cache.prediction_stats.misses
            + self.cache.report_stats.misses
        )
        if self.cache.path is not None and misses_after > misses_before:
            self.cache.save()
        return result

    # -- internals -----------------------------------------------------------

    def _spec_and_fingerprint(self):
        if self._resolved is not None:
            return self._resolved.spec, self._resolved.spec_fingerprint
        spec_only = getattr(self.source, "spec_only", None)
        if spec_only is not None:
            return spec_only()
        resolved = self.resolved
        return resolved.spec, resolved.spec_fingerprint

    def _network_fp(self) -> str:
        if self.network is None:
            return "none"
        return repr(self.network.link_bandwidth)

    def _resolve_faults(self, faults) -> FaultPlan | None:
        return self.faults if faults is _DEFAULT_FAULTS else faults

    def _resolve_resilience(self, resilience) -> ResiliencePolicy | None:
        return self.resilience if resilience is _DEFAULT_RESILIENCE else resilience

    @staticmethod
    def _fault_fp(plan: FaultPlan | None) -> str:
        if plan is None or not plan.faults:
            return "none"
        return plan.fingerprint()

    @staticmethod
    def _resilience_fp(policy: ResiliencePolicy | None) -> str:
        if policy is None:
            return "none"
        return policy.fingerprint()

    def _shape(
        self, nodes: int | None, cores_per_node: int | None
    ) -> tuple[int, int]:
        nodes = nodes if nodes is not None else self.platform.default_nodes()
        cores = (
            cores_per_node
            if cores_per_node is not None
            else self.platform.default_cores()
        )
        if nodes is None or cores is None:
            raise ConfigurationError(
                f"{self.describe()}: platform has no default shape; pass"
                " nodes and cores_per_node explicitly"
            )
        return nodes, cores

    @staticmethod
    def _axis(
        values: Sequence[int] | None, default: int | None, label: str
    ) -> Sequence[int]:
        if values is not None:
            return values
        if default is not None:
            return (default,)
        raise ConfigurationError(
            f"no {label} axis given and the platform has no default"
        )
