"""Declarative recovery policies: how a run fights back against faults.

A :class:`ResiliencePolicy` is the mitigation mirror of a
:class:`~repro.faults.plan.FaultPlan`: where the plan says what breaks,
the policy says how the simulated Spark runtime responds.  Three
mechanisms, each individually optional and each mirroring a real Spark
knob family:

- :class:`SpeculationPolicy` — ``spark.speculation.*``: once a quantile
  of a stage's tasks has finished, tasks running longer than
  ``multiplier`` times the median finished duration get a duplicate
  attempt on another node; the first attempt to finish wins.
- :class:`RetryPolicy` — ``spark.task.maxFailures`` plus a modeled
  exponential backoff before a failed task is resubmitted; a task that
  exhausts its attempts escalates to a stage re-attempt
  (``spark.stage.maxConsecutiveAttempts``), and exhausting those raises
  :class:`~repro.errors.StageFailedError`.
- :class:`BlacklistPolicy` — ``spark.blacklist.*``: executors that
  accumulate failures or straggler strikes are excluded from further
  scheduling; the run degrades gracefully onto the remaining nodes.

Policies are pure data (frozen dataclasses), JSON round-trippable, and
fingerprint through the pipeline's content-addressing scheme, so
mitigated runs can never collide with unmitigated ones in the result
cache.  A ``resilience=None`` run is bit-identical to the pre-resilience
engine.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.errors import ConfigurationError


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class SpeculationPolicy:
    """Speculative execution, mirroring ``spark.speculation.*``.

    Attributes
    ----------
    quantile:
        Fraction of a stage's tasks that must have finished before
        speculation is considered (``spark.speculation.quantile``).
    multiplier:
        A running task is speculatable once its elapsed time exceeds
        ``multiplier`` x the median finished-task duration
        (``spark.speculation.multiplier``).
    min_finished:
        Never speculate before this many tasks have finished — the
        median of one sample is noise.
    """

    quantile: float = 0.75
    multiplier: float = 1.5
    min_finished: int = 2

    def __post_init__(self) -> None:
        _check(0.0 < self.quantile <= 1.0,
               f"speculation quantile must be in (0, 1]: {self.quantile}")
        _check(self.multiplier >= 1.0,
               f"speculation multiplier must be >= 1: {self.multiplier}")
        _check(self.min_finished >= 1,
               f"speculation min_finished must be >= 1: {self.min_finished}")


@dataclass(frozen=True)
class RetryPolicy:
    """Task retry with exponential backoff and stage re-attempts.

    Attributes
    ----------
    max_task_attempts:
        ``spark.task.maxFailures``: a task may fail this many times
        before its stage is re-attempted.
    backoff_seconds / backoff_factor / max_backoff_seconds:
        The modeled resubmission delay after the k-th failure is
        ``min(backoff_seconds * backoff_factor**(k-1), max_backoff_seconds)``.
    max_stage_attempts:
        ``spark.stage.maxConsecutiveAttempts``: stage re-attempts before
        the run aborts with :class:`~repro.errors.StageFailedError`.
    stall_timeout_seconds:
        How long an I/O stream may sit at rate zero before its attempt
        is declared failed (the analogue of ``spark.network.timeout``
        fetch-failure detection) — this is what turns a dead-disk
        (``factor=0``) throttle window into a retriable task failure.
    """

    max_task_attempts: int = 4
    backoff_seconds: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 30.0
    max_stage_attempts: int = 4
    stall_timeout_seconds: float = 10.0

    def __post_init__(self) -> None:
        _check(self.max_task_attempts >= 1,
               f"max_task_attempts must be >= 1: {self.max_task_attempts}")
        _check(self.backoff_seconds >= 0.0,
               f"backoff_seconds must be >= 0: {self.backoff_seconds}")
        _check(self.backoff_factor >= 1.0,
               f"backoff_factor must be >= 1: {self.backoff_factor}")
        _check(self.max_backoff_seconds >= self.backoff_seconds,
               "max_backoff_seconds must be >= backoff_seconds:"
               f" {self.max_backoff_seconds} < {self.backoff_seconds}")
        _check(self.max_stage_attempts >= 1,
               f"max_stage_attempts must be >= 1: {self.max_stage_attempts}")
        _check(self.stall_timeout_seconds > 0.0,
               f"stall_timeout_seconds must be > 0: {self.stall_timeout_seconds}")

    def backoff_for(self, failure_count: int) -> float:
        """Modeled delay before the retry that follows failure ``k`` (1-based)."""
        _check(failure_count >= 1, f"failure count must be >= 1: {failure_count}")
        delay = self.backoff_seconds * self.backoff_factor ** (failure_count - 1)
        return min(delay, self.max_backoff_seconds)


@dataclass(frozen=True)
class BlacklistPolicy:
    """Executor exclusion, mirroring ``spark.blacklist.*``.

    A node collects one *strike* per failed task attempt and one per
    speculation decision against it (hosting an attempt slow enough to
    duplicate).  At ``max_node_strikes`` the node is excluded from
    further scheduling — unless it is the last live node, which is never
    blacklisted (graceful degradation beats a dead cluster).
    """

    max_node_strikes: int = 2

    def __post_init__(self) -> None:
        _check(self.max_node_strikes >= 1,
               f"max_node_strikes must be >= 1: {self.max_node_strikes}")


@dataclass(frozen=True)
class ResiliencePolicy:
    """The full mitigation configuration of one run.

    ``speculation`` and ``blacklist`` default to ``None`` (off);
    ``retry`` is always present because task failures must go *somewhere*
    — with no policy at all (``resilience=None`` on the engine) failures
    fall back to the historical infinite-immediate-retry semantics.
    """

    speculation: SpeculationPolicy | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    blacklist: BlacklistPolicy | None = None

    def fingerprint(self) -> str:
        """Content hash folded into cache keys of mitigated runs."""
        # Late import mirrors FaultPlan.fingerprint: the pipeline imports
        # the simulator which imports this package.
        from repro.pipeline.fingerprint import fingerprint

        return fingerprint(self)

    def describe(self) -> str:
        """Short human-readable summary for run banners."""
        parts = [f"retry<={self.retry.max_task_attempts}"]
        if self.speculation is not None:
            parts.append(
                f"speculation(q={self.speculation.quantile:g},"
                f" x{self.speculation.multiplier:g})"
            )
        if self.blacklist is not None:
            parts.append(f"blacklist@{self.blacklist.max_node_strikes}")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready form (see ``docs/RESILIENCE.md``)."""
        return {
            "speculation": (
                asdict(self.speculation) if self.speculation is not None else None
            ),
            "retry": asdict(self.retry),
            "blacklist": (
                asdict(self.blacklist) if self.blacklist is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> ResiliencePolicy:
        """Parse the :meth:`to_dict` form, validating every field."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"resilience policy must be a JSON object, got {type(data).__name__}"
            )
        try:
            speculation = (
                SpeculationPolicy(**data["speculation"])
                if data.get("speculation") is not None else None
            )
            retry = (
                RetryPolicy(**data["retry"])
                if data.get("retry") is not None else RetryPolicy()
            )
            blacklist = (
                BlacklistPolicy(**data["blacklist"])
                if data.get("blacklist") is not None else None
            )
        except TypeError as exc:
            raise ConfigurationError(f"bad resilience policy fields: {exc}") from None
        return cls(speculation=speculation, retry=retry, blacklist=blacklist)


def default_mitigations() -> ResiliencePolicy:
    """The everything-on policy the CLI flags compose: Spark-like defaults."""
    return ResiliencePolicy(
        speculation=SpeculationPolicy(),
        retry=RetryPolicy(),
        blacklist=BlacklistPolicy(),
    )
