"""Recovery mechanisms for simulated runs: Spark's answer to faults.

The fault layer (:mod:`repro.faults`) breaks things; this package models
how the runtime survives them, mirroring the three mechanisms real Spark
leans on for shuffle-heavy jobs:

- **speculative execution** — duplicate attempts for straggling tasks,
  first finisher wins (:class:`SpeculationPolicy`);
- **retry with exponential backoff** — failed tasks resubmit with a
  modeled delay, escalating to stage re-attempts and finally a
  structured :class:`~repro.errors.StageFailedError`
  (:class:`RetryPolicy`);
- **blacklisting** — nodes accumulating failures or straggler strikes
  are excluded from scheduling, and the run degrades gracefully onto the
  survivors (:class:`BlacklistPolicy`).

Pass a :class:`ResiliencePolicy` as ``resilience=`` to the engine, the
workload runner, or :class:`~repro.pipeline.Experiment` (it folds into
cache keys), or use ``python -m repro simulate --speculation
--blacklist``.  What the mitigations did is reported per stage as a
:class:`StageResilience` record.  ``resilience=None`` (the default)
keeps every path bit-identical to the pre-resilience engine.
"""

from repro.resilience.policy import (
    BlacklistPolicy,
    ResiliencePolicy,
    RetryPolicy,
    SpeculationPolicy,
    default_mitigations,
)
from repro.resilience.summary import StageResilience, merge_summaries

__all__ = [
    "BlacklistPolicy",
    "ResiliencePolicy",
    "RetryPolicy",
    "SpeculationPolicy",
    "StageResilience",
    "default_mitigations",
    "merge_summaries",
]
