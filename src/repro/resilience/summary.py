"""Per-stage resilience accounting: what the mitigations actually did.

The engine fills one :class:`StageResilience` per mitigated stage run —
attempt counts, speculative launches and wins, failure-driven retries
with their total modeled backoff, stage re-attempts, and the nodes the
blacklist excluded.  The record rides on
:class:`~repro.simulator.run.StageMeasurement`, serializes losslessly
through the result cache, and aggregates across stages for whole-run
reporting (:func:`merge_summaries`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class StageResilience:
    """Mitigation activity observed over one simulated stage.

    Attributes
    ----------
    attempts:
        Task attempts launched (originals + retries + speculative
        duplicates); equals the task count when nothing went wrong.
    speculative_launched / speculative_wins:
        Duplicate attempts started, and how many finished before their
        original (first-finisher-wins).
    task_retries:
        Failure-driven resubmissions (node death, dead-disk stalls).
    stage_reattempts:
        Times a task exhausted its attempt budget and the stage granted
        it a fresh one.
    backoff_seconds:
        Total modeled retry backoff delay inserted into the schedule.
    blacklisted:
        Names of nodes excluded from scheduling during the stage.
    """

    attempts: int = 0
    speculative_launched: int = 0
    speculative_wins: int = 0
    task_retries: int = 0
    stage_reattempts: int = 0
    backoff_seconds: float = 0.0
    blacklisted: tuple[str, ...] = field(default=())

    @property
    def mitigated(self) -> bool:
        """Whether any mitigation actually fired during the stage."""
        return bool(
            self.speculative_launched
            or self.task_retries
            or self.stage_reattempts
            or self.blacklisted
        )

    def describe(self) -> str:
        """Compact ``attempts/spec/wins`` cell for report tables."""
        parts = [f"{self.attempts} att"]
        if self.speculative_launched:
            parts.append(
                f"{self.speculative_launched} spec ({self.speculative_wins} won)"
            )
        if self.task_retries:
            parts.append(f"{self.task_retries} retry")
        if self.blacklisted:
            parts.append(f"bl:{','.join(self.blacklisted)}")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready form (cache persistence and ``--json`` payloads)."""
        return {
            "attempts": self.attempts,
            "speculative_launched": self.speculative_launched,
            "speculative_wins": self.speculative_wins,
            "task_retries": self.task_retries,
            "stage_reattempts": self.stage_reattempts,
            "backoff_seconds": self.backoff_seconds,
            "blacklisted": list(self.blacklisted),
        }

    @classmethod
    def from_dict(cls, data: dict) -> StageResilience:
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            attempts=int(data["attempts"]),
            speculative_launched=int(data["speculative_launched"]),
            speculative_wins=int(data["speculative_wins"]),
            task_retries=int(data["task_retries"]),
            stage_reattempts=int(data["stage_reattempts"]),
            backoff_seconds=float(data["backoff_seconds"]),
            blacklisted=tuple(data["blacklisted"]),
        )


def merge_summaries(summaries: Iterable[StageResilience | None]) -> StageResilience:
    """Aggregate per-stage records into one application-level summary.

    ``None`` entries (stages run without a policy) contribute nothing;
    blacklisted node names are unioned in first-seen order.
    """
    attempts = launched = wins = retries = reattempts = 0
    backoff = 0.0
    blacklisted: dict[str, None] = {}
    for summary in summaries:
        if summary is None:
            continue
        attempts += summary.attempts
        launched += summary.speculative_launched
        wins += summary.speculative_wins
        retries += summary.task_retries
        reattempts += summary.stage_reattempts
        backoff += summary.backoff_seconds
        for name in summary.blacklisted:
            blacklisted[name] = None
    return StageResilience(
        attempts=attempts,
        speculative_launched=launched,
        speculative_wins=wins,
        task_retries=retries,
        stage_reattempts=reattempts,
        backoff_seconds=backoff,
        blacklisted=tuple(blacklisted),
    )
