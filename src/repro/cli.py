"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-workloads``
    Show the built-in workload models.
``fio --device {hdd,ssd}``
    Print the device's effective-bandwidth sweep (Fig. 5).
``profile --workload NAME [--nodes N]``
    Run the four-sample-run procedure and print the fitted constants.
``predict --workload NAME --slaves N --cores P --hdfs KIND --local KIND``
    Predict an application runtime on a target cluster.
``simulate WORKLOAD [--slaves N] [--cores P] [--network-gbps G]
[--fault-plan FILE] [--speculation] [--max-task-attempts K]
[--blacklist] [--json]``
    Run the discrete-event simulator and print per-stage makespans,
    bottlenecks, core/device utilization, and the iostat request-size
    summary; with ``--fault-plan`` the run is perturbed by the plan and
    each stage also reports its makespan impact vs. the clean run.  The
    resilience flags arm the simulated Spark recovery mechanisms
    (speculative execution, retry with backoff, executor blacklisting);
    combined with a fault plan the report compares the mitigated run
    against both the unmitigated and the clean baselines.
``simulate --mix mix.json [--slaves N] [--cores P] [...]``
    Multi-tenant mode: instead of one workload, run the mix plan's jobs
    together on one shared cluster under a FIFO or fair scheduler and
    print the interference report — per job, its waiting time, mixed
    runtime, turnaround, clean solo baseline, and slowdown factor, plus
    the cluster-wide device utilization over the mix.  The plan is JSON:
    ``{"policy": "fair", "jobs": [{"workload": NAME, "arrival": T,
    "volume_scale": S}, ...]}`` (see docs/MULTITENANT.md and
    ``examples/mixes/``).  ``--fault-plan`` composes with a mix;
    resilience flags do not.

Exit codes: 0 on success, 2 for configuration errors, 3 for simulation
or model errors (including resilience-budget exhaustion), 4 for
malformed fault plans, 5 for host execution failures (worker loss,
per-task timeout, quarantined tasks — see docs/EXECUTION.md); 1 stays
reserved for unexpected crashes.
``pipeline --workload NAME [...] [--json] [--cache FILE] [--workers K]
[--task-timeout S] [--task-retries K]``
    Run the full loop — simulate, profile, predict — and print exp vs
    model per stage with error rates (one experiment-pipeline run).
    ``--workers K`` fans the repeated runs across K worker processes
    (``0`` = auto-size to the CPUs); results are bit-identical to
    serial.  ``--task-timeout``/``--task-retries`` tune the supervised
    execution policy of a parallel run (per-cell wall-clock deadline
    and attempt budget; exhausted cells exit 5 with the completed ones
    checkpointed).
``optimize --workload NAME [--cluster-workers N] [--workers K] [--prune]
[--top K] [--json]``
    Search cloud configurations for the cheapest run (Section VI).
    ``--cluster-workers`` is the modeled cluster's node count ``N``;
    ``--prune`` enables the branch-and-bound lower-bound search, which
    returns the identical optimum (see docs/PERFORMANCE.md).  The whole
    grid is scored by the array kernel (:mod:`repro.model.arrays`);
    ``--workers`` is validated but no longer changes how candidates are
    evaluated.  ``--top K`` prints the K cheapest feasible
    configurations instead of just the winner, and ``--json`` emits the
    search outcome as a machine-readable record.
``bench [--sections a,b] [--rounds N] [--check] [--skip-slow] [--json]
[--history FILE] [--output FILE] [--max-history N] [--list]``
    Run the registered benchmark sections (:mod:`repro.bench`).  A
    normal run appends one record to the ``BENCH_history.jsonl``
    trajectory and atomically refreshes the ``BENCH_simulator.json``
    latest snapshot; ``--check`` runs gate-only (nothing written,
    nonzero exit iff a section regresses beyond the noise band vs the
    rolling history or breaks an absolute floor).  ``--skip-slow``
    drops the slow sections so CI stays in budget, and ``--list``
    prints the registry with each section's gate specs (which metrics
    are band-gated vs history and which must stay exact).  ``--report``
    renders per-metric sparkline trajectories from the history file,
    partitioned by host fingerprint and labeled with git SHAs.
``serve [--host H] [--port P] [--workloads a,b] [--cache FILE] [--warm]
[--queue-cap N] [--lru-size N] [--batch-max N] [--batch-delay-ms MS]``
    Run the optimizer-as-a-service query engine behind a stdlib
    HTTP/JSON front: ``POST /query`` answers predict/simulate/optimize
    what-if queries through an LRU, the shared result cache, and a
    coalescing, micro-batching compute tier (see docs/SERVICE.md).
``loadgen [--url HOST:PORT] [--workload NAME] [--distinct N]
[--duplicates K] [--concurrency C] [--json]``
    Fire a deterministic what-if query mix at a running service (or an
    in-process engine when ``--url`` is omitted) and report throughput,
    latency percentiles, and the engine's coalescing counters.

Every command is a thin veneer over :mod:`repro.pipeline`: inputs become
workload sources and platforms, results are uniform run records, and a
``--cache`` file lets separate invocations share simulations.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections.abc import Callable, Sequence
from pathlib import Path

from repro.analysis.report import render_table
from repro.cloud import (
    CostOptimizer,
    r1_spark_recommendation,
    r2_cloudera_recommendation,
)
from repro.cluster.network import NetworkModel
from repro.core import load_report, save_report
from repro.errors import ConfigurationError, DoppioError, exit_code_for
from repro.faults import FaultPlan, load_fault_plan
from repro.model.arrays import backend_name
from repro.parallel import ExecutionPolicy
from repro.pipeline import (
    ClusterPlatform,
    Experiment,
    ReportSource,
    ResultCache,
    SpecSource,
)
from repro.resilience import (
    BlacklistPolicy,
    ResiliencePolicy,
    RetryPolicy,
    SpeculationPolicy,
    merge_summaries,
)
from repro.schedule.mix import MIX_POLICIES, MixJob, canonical_jobs
from repro.schedule.scheduler import SchedulingError
from repro.storage.device import make_hdd, make_ssd
from repro.storage.fio import run_fio_sweep
from repro.units import MB, fmt_bytes, fmt_duration
from repro.workloads import (
    make_gatk4_workload,
    make_logistic_regression_workload,
    make_pagerank_workload,
    make_svm_workload,
    make_terasort_workload,
    make_triangle_count_workload,
)
from repro.workloads.base import WorkloadSpec, scale_workload_volume
from repro.workloads.gatk4_extended import make_extended_gatk4_workload
from repro.workloads.logistic_regression import LARGE_DATASET

#: Name -> workload factory.
WORKLOADS: dict[str, Callable[[], WorkloadSpec]] = {
    "gatk4": make_gatk4_workload,
    "gatk4-extended": make_extended_gatk4_workload,
    "lr-small": lambda: make_logistic_regression_workload(num_slaves=10),
    "lr-large": lambda: make_logistic_regression_workload(
        LARGE_DATASET, num_slaves=10
    ),
    "svm": make_svm_workload,
    "pagerank": make_pagerank_workload,
    "triangle-count": make_triangle_count_workload,
    "terasort": make_terasort_workload,
}


def _workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        ) from None


def _cache(args: argparse.Namespace) -> ResultCache:
    """A result cache, file-backed when ``--cache`` was given."""
    return ResultCache(getattr(args, "cache", None))


def _save_cache(cache: ResultCache) -> None:
    if cache.path is not None:
        cache.save()


def _cluster_platform(args: argparse.Namespace) -> ClusterPlatform:
    return ClusterPlatform(hdfs_kind=args.hdfs, local_kind=args.local)


def _network(args: argparse.Namespace) -> NetworkModel | None:
    if getattr(args, "network_gbps", None) is None:
        return None
    return NetworkModel.from_gbps(args.network_gbps)


def _resource_label(name: str) -> str:
    """Strip the node prefix: slave3-hdfs-ssd -> hdfs-ssd, w0:nic -> nic."""
    return re.sub(r"^(slave-?|w)\d+[-:]", "", name)


def _fault_plan(args: argparse.Namespace) -> FaultPlan | None:
    path = getattr(args, "fault_plan", None)
    return load_fault_plan(path) if path is not None else None


def _resilience(args: argparse.Namespace) -> ResiliencePolicy | None:
    """A mitigation policy composed from the resilience flags (or None).

    ``None`` — no flag given — keeps the historical unmitigated engine,
    which is bit-identical to the pre-resilience simulator.
    """
    speculation = getattr(args, "speculation", False)
    attempts = getattr(args, "max_task_attempts", None)
    blacklist = getattr(args, "blacklist", False)
    if not speculation and attempts is None and not blacklist:
        return None
    retry = RetryPolicy() if attempts is None else RetryPolicy(
        max_task_attempts=attempts
    )
    return ResiliencePolicy(
        speculation=SpeculationPolicy() if speculation else None,
        retry=retry,
        blacklist=BlacklistPolicy() if blacklist else None,
    )


def _stage_bottleneck(stage) -> str:
    """The busiest resource over a measured stage.

    Compares core occupancy against each device/NIC direction's busy
    fraction (averaged across nodes) — the measurement-side analogue of
    the Eq.-1 ``max(t_scale, t_read, t_write)`` argmax.
    """
    best_label, best = "cores", stage.core_utilization
    per_class: dict[tuple[str, bool], list[float]] = {}
    for name, is_write, fraction in stage.device_utilizations:
        per_class.setdefault((_resource_label(name), is_write), []).append(fraction)
    for (label, is_write), fractions in sorted(per_class.items()):
        mean = sum(fractions) / len(fractions)
        if mean > best:
            best_label = f"{label}:{'write' if is_write else 'read'}"
            best = mean
    return best_label


def cmd_list_workloads(_args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(WORKLOADS):
        workload = WORKLOADS[name]()
        rows.append([name, len(workload.stages), workload.description])
    print(render_table("Built-in workloads", ["name", "stages", "description"],
                       rows))
    return 0


def cmd_fio(args: argparse.Namespace) -> int:
    device = make_hdd() if args.device == "hdd" else make_ssd()
    results = run_fio_sweep(device, is_write=args.write)
    rows = [
        [fmt_bytes(r.block_size), f"{r.bandwidth / MB:.1f}", f"{r.iops:.0f}"]
        for r in results
    ]
    direction = "write" if args.write else "read"
    print(render_table(
        f"fio sweep: {args.device} ({direction})",
        ["block size", "MB/s", "IOPS"], rows))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    workload = _workload(args.workload)
    print(f"profiling {workload.name} on {args.nodes} slaves"
          " (four sample runs)...")
    source = SpecSource(workload, profile_nodes=args.nodes, fit_gc=args.fit_gc)
    report = source.resolve(_cache(args)).report
    if args.output:
        save_report(report, args.output)
        print(f"report saved to {args.output}")
    rows = [
        [stage.name, stage.num_tasks, f"{stage.t_avg:.2f}",
         f"{stage.delta_scale:.2f}", f"{stage.delta_read:.2f}",
         f"{stage.delta_write:.2f}", f"{stage.gc_coeff:.2f}"]
        for stage in report.stages
    ]
    print(render_table(
        f"fitted Equation-1 constants for {workload.name}",
        ["stage", "M", "t_avg s", "d_scale", "d_read", "d_write", "gc"],
        rows))
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    workload = _workload(args.workload)
    if args.report:
        source = ReportSource(load_report(args.report))
    else:
        source = SpecSource(workload, profile_nodes=args.profile_nodes)
    experiment = Experiment(source, _cluster_platform(args))
    prediction = experiment.predict(args.slaves, args.cores)
    rows = [
        [stage.stage_name, fmt_duration(stage.t_stage), stage.bottleneck]
        for stage in prediction.stages
    ]
    rows.append(["TOTAL", fmt_duration(prediction.t_app), ""])
    print(render_table(
        f"{workload.name} on {args.slaves} slaves x {args.cores} cores"
        f" (HDFS={args.hdfs}, local={args.local})",
        ["stage", "runtime", "bottleneck"], rows))
    return 0


def _load_mix_plan(path: str) -> tuple[str, list[MixJob]]:
    """Parse a mix-plan JSON file into (policy, jobs).

    Any shape problem — unreadable file, bad JSON, unknown workload or
    policy, negative arrival — is a :class:`ConfigurationError` (exit 2),
    matching how every other malformed CLI input is reported.
    """
    try:
        data = json.loads(Path(path).read_text())
    except OSError as error:
        raise ConfigurationError(
            f"cannot read mix plan {path}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"mix plan {path} is not valid JSON: {error}"
        ) from error
    if not isinstance(data, dict) or not isinstance(data.get("jobs"), list):
        raise ConfigurationError(
            f"mix plan {path} must be a JSON object with a 'jobs' list"
        )
    policy = data.get("policy", "fair")
    if policy not in MIX_POLICIES:
        raise ConfigurationError(
            f"mix plan {path}: unknown policy {policy!r};"
            f" expected one of {MIX_POLICIES}"
        )
    jobs: list[MixJob] = []
    for index, entry in enumerate(data["jobs"]):
        where = f"mix plan {path}: jobs[{index}]"
        if not isinstance(entry, dict) or "workload" not in entry:
            raise ConfigurationError(
                f"{where} must be an object with a 'workload' name"
            )
        unknown = set(entry) - {"workload", "arrival", "volume_scale", "name"}
        if unknown:
            raise ConfigurationError(
                f"{where} has unknown field(s) {sorted(unknown)}"
            )
        spec = _workload(entry["workload"])
        try:
            jobs.append(MixJob(
                spec=spec,
                arrival=float(entry.get("arrival", 0.0)),
                volume_scale=float(entry.get("volume_scale", 1.0)),
                name=entry.get("name"),
            ))
        except (TypeError, ValueError, SchedulingError) as error:
            raise ConfigurationError(f"{where}: {error}") from error
    if not jobs:
        raise ConfigurationError(f"mix plan {path} has no jobs")
    return policy, jobs


def _simulate_mix(args: argparse.Namespace) -> int:
    """The ``simulate --mix`` path: co-located jobs + interference report."""
    if _resilience(args) is not None:
        raise ConfigurationError(
            "resilience flags are not supported with --mix; mixes model"
            " the contention story (see docs/MULTITENANT.md)"
        )
    policy, jobs = _load_mix_plan(args.mix)
    network = _network(args)
    cache = _cache(args)
    plan = _fault_plan(args)
    platform = _cluster_platform(args)
    experiment = Experiment(
        jobs[0].spec, platform, cache=cache, network=network, faults=plan,
    )
    mix = experiment.measure_mix(
        jobs, policy=policy, nodes=args.slaves, cores_per_node=args.cores
    )
    # Clean solo baselines through the shared cache: one solo simulation
    # per distinct job, the denominator of each slowdown factor.
    solo_seconds: dict[str, float] = {}
    for name, job in canonical_jobs(jobs):
        child = Experiment(
            scale_workload_volume(job.spec, job.volume_scale),
            platform, cache=cache, network=network,
        )
        solo_seconds[name] = child.measure(
            args.slaves, args.cores
        ).total_seconds
    _save_cache(cache)

    def slowdown(timeline) -> float:
        solo = solo_seconds[timeline.name]
        return timeline.measurement.total_seconds / solo if solo > 0 else 1.0

    per_class: dict[tuple[str, bool], list[float]] = {}
    for name, is_write, fraction in mix.device_utilizations:
        per_class.setdefault((_resource_label(name), is_write), []).append(
            fraction
        )

    if args.json:
        payload = {
            "mix_plan": args.mix,
            "policy": mix.policy,
            "slaves": args.slaves,
            "cores_per_node": args.cores,
            "hdfs": args.hdfs,
            "local": args.local,
            "network_gbps": args.network_gbps,
            "fault_plan": plan.name if plan is not None else None,
            "makespan_seconds": mix.makespan,
            "jobs": [
                {
                    "name": timeline.name,
                    "arrival": timeline.arrival,
                    "volume_scale": timeline.volume_scale,
                    "waiting_seconds": timeline.waiting,
                    "runtime_seconds": timeline.measurement.total_seconds,
                    "turnaround_seconds": timeline.turnaround,
                    "solo_seconds": solo_seconds[timeline.name],
                    "slowdown": slowdown(timeline),
                    "stages": [
                        {
                            "name": stage.name,
                            "num_tasks": stage.num_tasks,
                            "makespan_seconds": stage.makespan,
                            "core_utilization": stage.core_utilization,
                        }
                        for stage in timeline.measurement.stages
                    ],
                }
                for timeline in mix.jobs
            ],
            "device_utilizations": [
                {
                    "resource": label,
                    "direction": "write" if is_write else "read",
                    "busy_fraction": sum(fractions) / len(fractions),
                }
                for (label, is_write), fractions in sorted(per_class.items())
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0

    rows = [
        [
            timeline.name,
            fmt_duration(timeline.arrival),
            fmt_duration(timeline.waiting),
            fmt_duration(timeline.measurement.total_seconds),
            fmt_duration(timeline.turnaround),
            fmt_duration(solo_seconds[timeline.name]),
            f"{slowdown(timeline):.2f}x",
        ]
        for timeline in mix.jobs
    ]
    wire = f", {args.network_gbps:g} Gb/s NIC" if network is not None else ""
    faulty = f", faults={plan.describe()}" if plan is not None else ""
    print(render_table(
        f"simulated mix of {len(mix.jobs)} jobs on {args.slaves} slaves x"
        f" {args.cores} cores ({mix.policy} scheduling, HDFS={args.hdfs},"
        f" local={args.local}{wire}{faulty})",
        ["job", "arrival", "waiting", "runtime", "turnaround", "solo",
         "slowdown"],
        rows))
    print(f"mix makespan: {fmt_duration(mix.makespan)}")
    if per_class:
        rows = [
            [label, "write" if is_write else "read",
             f"{sum(fractions) / len(fractions) * 100:.0f}%"]
            for (label, is_write), fractions in sorted(per_class.items())
        ]
        print(render_table(
            "device utilization (whole mix, mean across nodes)",
            ["resource", "dir", "busy"], rows))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.mix is not None:
        if args.workload is not None:
            raise ConfigurationError(
                "pass either a workload name or --mix, not both"
            )
        return _simulate_mix(args)
    if args.workload is None:
        raise ConfigurationError(
            "a workload name (or --mix FILE) is required"
        )
    workload = _workload(args.workload)
    network = _network(args)
    cache = _cache(args)
    plan = _fault_plan(args)
    policy = _resilience(args)
    experiment = Experiment(
        workload, _cluster_platform(args), cache=cache, network=network,
        faults=plan, resilience=policy,
    )
    app = experiment.measure(args.slaves, args.cores)
    # Under a fault plan, also measure the clean baseline so the report
    # can show the per-stage makespan impact.
    clean = (
        experiment.measure(args.slaves, args.cores, faults=None, resilience=None)
        if plan is not None else None
    )
    # With mitigations armed on a faulted run, the unmitigated faulted
    # run is the second baseline: it shows what the policy recovered.
    unmitigated = (
        experiment.measure(args.slaves, args.cores, resilience=None)
        if plan is not None and policy is not None else None
    )
    _save_cache(cache)
    summary = (
        merge_summaries(stage.resilience for stage in app.stages)
        if policy is not None else None
    )

    def impact(stage_index: int) -> float:
        faulted = app.stages[stage_index].makespan
        baseline = clean.stages[stage_index].makespan
        return faulted / baseline - 1.0 if baseline > 0 else 0.0

    # Busy-seconds-weighted utilization per resource direction, averaged
    # across nodes (slaveN-hdfs-ssd -> hdfs-ssd; slave-N:nic -> nic) and
    # aggregated over stages.
    busy: dict[tuple[str, bool], list[float]] = {}
    for stage in app.stages:
        per_class: dict[tuple[str, bool], list[float]] = {}
        for name, is_write, fraction in stage.device_utilizations:
            per_class.setdefault((_resource_label(name), is_write), []).append(
                fraction
            )
        for key, fractions in per_class.items():
            mean = sum(fractions) / len(fractions)
            busy.setdefault(key, []).append(mean * stage.makespan)

    totals: dict[tuple[str, bool], list[float]] = {}
    for stage in app.stages:
        for s in stage.iostat_samples:
            entry = totals.setdefault(
                (_resource_label(s.device_name), s.is_write), [0.0, 0.0]
            )
            entry[0] += s.total_bytes
            entry[1] += s.num_requests

    if args.json:
        payload = {
            "workload": workload.name,
            "slaves": args.slaves,
            "cores_per_node": args.cores,
            "hdfs": args.hdfs,
            "local": args.local,
            "network_gbps": args.network_gbps,
            "fault_plan": plan.name if plan is not None else None,
            "resilience_policy": (
                policy.to_dict() if policy is not None else None
            ),
            "total_seconds": app.total_seconds,
            **(
                {"unmitigated_total_seconds": unmitigated.total_seconds}
                if unmitigated is not None else {}
            ),
            **(
                {"resilience_summary": summary.to_dict()}
                if summary is not None else {}
            ),
            "stages": [
                {
                    "name": stage.name,
                    "num_tasks": stage.num_tasks,
                    "makespan_seconds": stage.makespan,
                    "core_utilization": stage.core_utilization,
                    "bottleneck": _stage_bottleneck(stage),
                    **(
                        {
                            "clean_makespan_seconds":
                                clean.stages[index].makespan,
                            "impact_fraction": impact(index),
                        }
                        if clean is not None else {}
                    ),
                    **(
                        {
                            "unmitigated_makespan_seconds":
                                unmitigated.stages[index].makespan,
                        }
                        if unmitigated is not None else {}
                    ),
                    **(
                        {
                            "resilience": (
                                stage.resilience.to_dict()
                                if stage.resilience is not None else None
                            ),
                        }
                        if policy is not None else {}
                    ),
                }
                for index, stage in enumerate(app.stages)
            ],
            "device_utilizations": [
                {
                    "resource": label,
                    "direction": "write" if is_write else "read",
                    "busy_fraction": sum(seconds) / app.total_seconds,
                }
                for (label, is_write), seconds in sorted(busy.items())
            ],
            "iostat": [
                {
                    "device": label,
                    "direction": "write" if is_write else "read",
                    "requests": requests,
                    "avg_request_bytes": total_bytes / requests,
                }
                for (label, is_write), (total_bytes, requests)
                in sorted(totals.items())
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0

    rows = []
    for index, stage in enumerate(app.stages):
        row = [stage.name, stage.num_tasks, fmt_duration(stage.makespan),
               f"{stage.core_utilization * 100:.0f}%",
               _stage_bottleneck(stage)]
        if clean is not None:
            row += [fmt_duration(clean.stages[index].makespan),
                    f"{impact(index) * 100:+.0f}%"]
        if policy is not None:
            row.append(
                stage.resilience.describe()
                if stage.resilience is not None else ""
            )
        rows.append(row)
    total_row = ["TOTAL", sum(s.num_tasks for s in app.stages),
                 fmt_duration(app.total_seconds), "", ""]
    headers = ["stage", "tasks", "makespan", "core util", "bottleneck"]
    if clean is not None:
        headers += ["clean", "impact"]
        total_impact = (
            app.total_seconds / clean.total_seconds - 1.0
            if clean.total_seconds > 0 else 0.0
        )
        total_row += [fmt_duration(clean.total_seconds),
                      f"{total_impact * 100:+.0f}%"]
    if policy is not None:
        headers.append("resilience")
        total_row.append(summary.describe() if summary.mitigated else "")
    rows.append(total_row)
    wire = f", {args.network_gbps:g} Gb/s NIC" if network is not None else ""
    faulty = f", faults={plan.describe()}" if plan is not None else ""
    mitigations = (
        f", resilience={policy.describe()}" if policy is not None else ""
    )
    print(render_table(
        f"simulated {workload.name} on {args.slaves} slaves x {args.cores}"
        f" cores (HDFS={args.hdfs}, local={args.local}{wire}{faulty}"
        f"{mitigations})",
        headers, rows))

    if unmitigated is not None and clean is not None:
        # The recovery headline: how much of the fault-induced slowdown
        # did the mitigations claw back?
        recovered = (
            unmitigated.total_seconds / app.total_seconds - 1.0
            if app.total_seconds > 0 else 0.0
        )
        overhead = (
            app.total_seconds / clean.total_seconds - 1.0
            if clean.total_seconds > 0 else 0.0
        )
        print(
            f"recovery: mitigated {fmt_duration(app.total_seconds)}"
            f" vs unmitigated {fmt_duration(unmitigated.total_seconds)}"
            f" ({recovered * 100:+.0f}% speedup)"
            f" vs clean {fmt_duration(clean.total_seconds)}"
            f" ({overhead * 100:+.0f}% residual impact)"
        )

    if busy:
        rows = [
            [label, "write" if is_write else "read",
             f"{sum(seconds) / app.total_seconds * 100:.0f}%"]
            for (label, is_write), seconds in sorted(busy.items())
        ]
        print(render_table(
            "device utilization (whole application, mean across nodes)",
            ["resource", "dir", "busy"], rows))

    if totals:
        rows = []
        for (label, is_write), (total_bytes, requests) in sorted(totals.items()):
            avg = total_bytes / requests
            rows.append([label, "write" if is_write else "read",
                         f"{requests:.0f}", fmt_bytes(avg),
                         f"{avg / 512:.0f}"])
        print(render_table("iostat request-size summary (all nodes)",
                           ["device", "dir", "requests", "avg req size",
                            "avgrq-sz"], rows))
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    workload = _workload(args.workload)
    cache = _cache(args)
    if args.report:
        source = ReportSource(load_report(args.report))
    else:
        source = SpecSource(workload, profile_nodes=args.profile_nodes)
    policy = _resilience(args)
    experiment = Experiment(
        source, _cluster_platform(args), cache=cache, network=_network(args),
        faults=_fault_plan(args), resilience=policy,
    )
    results = experiment.run_repeated(
        args.slaves, args.cores, runs=args.runs, workers=args.workers,
        execution=_execution(args),
    )
    _save_cache(cache)
    first = results[0]

    if args.json:
        payload = {
            "experiment": experiment.describe(),
            "resilience_policy": (
                policy.to_dict() if policy is not None else None
            ),
            "cache": cache.stats(),
            "runs": [result.to_dict() for result in results],
        }
        print(json.dumps(payload, indent=2))
        return 0

    rows = []
    for stage in first.stages:
        measured = [r.stage(stage.name).measured_seconds for r in results]
        mean = sum(measured) / len(measured)
        rows.append([
            stage.name, stage.num_tasks, fmt_duration(mean),
            fmt_duration(stage.predicted_seconds),
            f"{abs(mean - stage.predicted_seconds) / mean * 100:.1f}%",
            stage.bottleneck,
        ])
    mean_total = sum(r.measured_seconds for r in results) / len(results)
    rows.append([
        "TOTAL", sum(s.num_tasks for s in first.stages),
        fmt_duration(mean_total), fmt_duration(first.predicted_seconds),
        f"{abs(mean_total - first.predicted_seconds) / mean_total * 100:.1f}%",
        "",
    ])
    wire = (
        f", {args.network_gbps:g} Gb/s NIC"
        if args.network_gbps is not None else ""
    )
    mitigations = (
        f", resilience={policy.describe()}" if policy is not None else ""
    )
    print(render_table(
        f"{experiment.describe()} at N={args.slaves}, P={args.cores}{wire}"
        f"{mitigations} ({args.runs} runs)",
        ["stage", "tasks", "exp", "model", "error", "bottleneck"], rows))
    print(f"cache: {cache.stats_summary()}")
    return 0


def _config_dict(config) -> dict:
    """A CloudConfiguration as a JSON-ready mapping."""
    return {
        "machine": config.machine.name,
        "vcpus": config.machine.vcpus,
        "num_workers": config.num_workers,
        "hdfs_disk_kind": config.hdfs_disk_kind,
        "hdfs_disk_gb": config.hdfs_disk_gb,
        "local_disk_kind": config.local_disk_kind,
        "local_disk_gb": config.local_disk_gb,
        "label": config.label(),
    }


def cmd_optimize(args: argparse.Namespace) -> int:
    if args.top < 1:
        raise ConfigurationError("--top must be at least 1")
    workload = _workload(args.workload)
    if not args.json:
        print(f"profiling {workload.name}...")
    cache = _cache(args)
    experiment = Experiment(
        SpecSource(workload, profile_nodes=args.profile_nodes),
        ClusterPlatform(),
        cache=cache,
    )
    nodes = args.cluster_workers
    hdfs_gb, local_gb = CostOptimizer.capacity_requirements(
        workload, num_workers=nodes
    )
    optimizer = CostOptimizer(
        experiment.predictor, num_workers=nodes,
        min_hdfs_gb=hdfs_gb, min_local_gb=local_gb,
        cache=cache,
    )
    result = optimizer.grid_search(
        vcpu_grid=(4, 8, 16, 32), workers=args.workers, prune=args.prune,
        execution=_execution(args),
    )
    r1 = optimizer.evaluate(r1_spark_recommendation(num_workers=nodes))
    r2 = optimizer.evaluate(r2_cloudera_recommendation(num_workers=nodes))
    _save_cache(cache)
    # Stable sort on cost: ties keep grid order, so top[0] is exactly
    # the search's ``best``.  Under --prune only non-pruned candidates
    # can be ranked; a pruned candidate provably cannot beat rank 1, but
    # deeper ranks are "cheapest among candidates the bound kept".
    top = sorted(result.evaluated, key=lambda e: e.cost_dollars)[: args.top]

    if args.json:
        payload = {
            "workload": workload.name,
            "cluster_workers": nodes,
            "prune": args.prune,
            "backend": backend_name(),
            "num_evaluated": result.num_evaluated,
            "num_pruned": result.num_pruned,
            "top": [
                {
                    "rank": rank,
                    "config": _config_dict(entry.config),
                    "runtime_seconds": entry.runtime_seconds,
                    "cost_dollars": entry.cost_dollars,
                }
                for rank, entry in enumerate(top, start=1)
            ],
            "references": {
                "r1_spark": {
                    "config": _config_dict(r1.config),
                    "runtime_seconds": r1.runtime_seconds,
                    "cost_dollars": r1.cost_dollars,
                },
                "r2_cloudera": {
                    "config": _config_dict(r2.config),
                    "runtime_seconds": r2.runtime_seconds,
                    "cost_dollars": r2.cost_dollars,
                },
            },
            "savings_vs_r1": result.savings_versus(r1),
            "savings_vs_r2": result.savings_versus(r2),
        }
        print(json.dumps(payload, indent=2))
        return 0

    rows = [
        ["optimum" if rank == 1 else f"#{rank}", entry.config.label(),
         fmt_duration(entry.runtime_seconds), f"${entry.cost_dollars:.2f}"]
        for rank, entry in enumerate(top, start=1)
    ]
    rows += [
        ["R1 (Spark)", r1.config.label(), fmt_duration(r1.runtime_seconds),
         f"${r1.cost_dollars:.2f}"],
        ["R2 (Cloudera)", r2.config.label(), fmt_duration(r2.runtime_seconds),
         f"${r2.cost_dollars:.2f}"],
    ]
    pruned = (
        f", {result.num_pruned} bound-pruned" if result.num_pruned else ""
    )
    print(render_table(
        f"cheapest cloud configuration for {workload.name}"
        f" ({result.num_evaluated} candidates{pruned})",
        ["config", "details", "runtime", "cost"], rows))
    print(f"savings: {result.savings_versus(r1) * 100:.0f}% vs R1,"
          f" {result.savings_versus(r2) * 100:.0f}% vs R2")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import repro.bench as bench
    from repro.errors import BenchmarkRegressionError

    if args.report:
        history = bench.BenchHistory(args.history)
        print(bench.render_history_report(history.load(), path=history.path))
        return 0

    if args.list:
        def gate_spec(gate) -> str:
            if gate.direction == "exact":
                return f"{gate.metric}=exact"
            return (
                f"{gate.metric}:{gate.direction}"
                f"(warn x{gate.warn_ratio:g}, fail x{gate.fail_ratio:g})"
            )

        rows = [
            [
                section.name,
                section.snapshot_key or "(top level)",
                "slow" if section.slow else "",
                "; ".join(gate_spec(gate) for gate in section.gates)
                or "(none)",
                section.title,
            ]
            for section in bench.all_sections()
        ]
        print(render_table(
            "registered benchmark sections",
            ["name", "snapshot key", "", "gates", "description"], rows))
        return 0

    names = None
    if args.sections:
        names = [
            name.strip()
            for chunk in args.sections
            for name in chunk.split(",")
            if name.strip()
        ]
    sections = bench.resolve_sections(names, skip_slow=args.skip_slow)
    if not sections:
        raise ConfigurationError("no benchmark sections selected")

    history = bench.BenchHistory(args.history)
    report = bench.run_bench(sections, rounds=args.rounds, history=history)

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for verdict in report.verdicts:
            if verdict.status != "pass":
                print(verdict.describe())

    if args.check:
        if not report.ok:
            raise BenchmarkRegressionError(
                f"{len(report.failures)} benchmark gate(s) failed"
                f" across {len(report.sections)} section(s)",
                verdicts=report.failures,
            )
        if not args.json:
            print(
                f"bench check OK: {len(report.sections)} section(s),"
                f" {len(report.warnings)} warning(s),"
                f" fingerprint {bench.fingerprint_key(report.fingerprint)}"
            )
        return 0

    history.append(report.record)
    if args.max_history is not None:
        dropped = history.rotate(args.max_history)
        if dropped and not args.json:
            print(f"[history rotated: dropped {dropped} oldest record(s)]")

    output = Path(args.output)
    existing = None
    if output.exists() and len(report.sections) < len(bench.all_sections()):
        try:
            existing = json.loads(output.read_text())
        except (OSError, json.JSONDecodeError):
            existing = None
    snapshot = bench.compose_snapshot(report.sections, existing=existing)
    bench.write_snapshot(output, snapshot)
    if not args.json:
        print(
            f"[appended record #{len(history)} to {history.path};"
            f" snapshot saved to {output}]"
        )
    if not report.ok:
        raise BenchmarkRegressionError(
            f"{len(report.failures)} benchmark gate(s) failed"
            f" across {len(report.sections)} section(s)",
            verdicts=report.failures,
        )
    return 0


def _service_workloads(args: argparse.Namespace) -> dict:
    """The ``{name: spec}`` map a service engine serves."""
    if args.workloads:
        names = [
            name.strip()
            for chunk in args.workloads
            for name in chunk.split(",")
            if name.strip()
        ]
    else:
        names = sorted(WORKLOADS)
    return {name: _workload(name) for name in names}


def _service_engine(args: argparse.Namespace):
    """Build a :class:`~repro.service.engine.QueryEngine` from CLI flags."""
    from repro.service import QueryEngine

    return QueryEngine(
        _service_workloads(args),
        cache=_cache(args),
        lru_size=args.lru_size,
        batch_max=args.batch_max,
        batch_delay=args.batch_delay_ms / 1e3,
        sim_queue_cap=args.queue_cap,
        workers=args.workers,
        profile_nodes=args.profile_nodes,
        execution=_execution(args),
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.http import serve

    engine = _service_engine(args)

    def ready(host: str, port: int) -> None:
        # The CI smoke test greps this exact prefix to know we're up.
        print(
            f"serving on http://{host}:{port}"
            f" (workloads: {', '.join(sorted(engine.workloads))})",
            flush=True,
        )

    async def run() -> None:
        if args.warm:
            await engine.start()
            await engine.warm()
        await serve(engine, host=args.host, port=args.port, ready=ready)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import loadgen

    queries = loadgen.build_queries(
        args.workload, distinct=args.distinct, duplicates=args.duplicates
    )

    async def run() -> dict:
        if args.url:
            return await loadgen.run_against_url(
                args.url, queries, concurrency=args.concurrency
            )
        engine = _service_engine(args)
        async with engine:
            await engine.warm([args.workload])
            return await loadgen.run_against_engine(
                engine, queries, concurrency=args.concurrency
            )

    summary = asyncio.run(run())
    summary.pop("results", None)  # per-query payloads are load, not signal
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    engine_stats = summary.get("engine", {})
    print(
        f"{summary['queries']} queries in {summary['wall_seconds']:.3f}s"
        f" ({summary['qps']:.0f} qps), p50 {summary['p50_ms']:.2f}ms,"
        f" p99 {summary['p99_ms']:.2f}ms"
    )
    if engine_stats:
        lru = engine_stats.get("lru", {})
        batches = engine_stats.get("batches", {})
        print(
            f"engine: {engine_stats.get('coalesced', 0)} coalesced,"
            f" {lru.get('hits', 0)} LRU hits,"
            f" {batches.get('flushed', 0)} batch(es)"
            f" (max width {batches.get('max_size', 0)})"
        )
    return 0


def _add_workers_flag(sub: argparse.ArgumentParser) -> None:
    """The process-parallelism flag shared by ``pipeline`` and ``optimize``."""
    sub.add_argument(
        "--workers", type=int, default=None, metavar="K",
        help="fan independent evaluations across K worker processes"
             " (0 = auto-size to the available CPUs; results are"
             " bit-identical to serial)",
    )
    sub.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock deadline for supervised parallel"
             " execution; a task past it is killed with its pool and"
             " retried (see docs/EXECUTION.md)",
    )
    sub.add_argument(
        "--task-retries", type=int, default=None, metavar="K",
        help="attempts per task before it is quarantined (default 3);"
             " exhausted tasks exit 5 with completed work checkpointed",
    )


def _execution(args: argparse.Namespace) -> ExecutionPolicy | None:
    """Build the supervised-execution policy from the CLI flags.

    ``None`` (no flags given) keeps the library default policy;
    invalid values surface as :class:`ConfigurationError` → exit 2.
    """
    if args.task_timeout is None and args.task_retries is None:
        return None
    overrides: dict = {}
    if args.task_timeout is not None:
        overrides["timeout_seconds"] = args.task_timeout
    if args.task_retries is not None:
        overrides["max_attempts"] = args.task_retries
    return ExecutionPolicy(**overrides)


def _add_resilience_flags(sub: argparse.ArgumentParser) -> None:
    """The mitigation flags shared by ``simulate`` and ``pipeline``."""
    sub.add_argument(
        "--speculation", action="store_true",
        help="speculatively re-launch straggler tasks on other nodes"
             " (spark.speculation)",
    )
    sub.add_argument(
        "--max-task-attempts", type=int, default=None, metavar="K",
        help="retry failed tasks with backoff, up to K attempts per stage"
             " re-attempt (spark.task.maxFailures)",
    )
    sub.add_argument(
        "--blacklist", action="store_true",
        help="exclude repeatedly failing or straggling executors from"
             " scheduling (spark.blacklist)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Doppio: I/O-aware Spark performance modeling toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="show built-in workload models")

    fio = sub.add_parser("fio", help="device bandwidth sweep (Fig. 5)")
    fio.add_argument("--device", choices=("hdd", "ssd"), default="hdd")
    fio.add_argument("--write", action="store_true",
                     help="sweep the write curve instead of read")

    profile = sub.add_parser("profile", help="four-sample-run profiling")
    profile.add_argument("--workload", required=True)
    profile.add_argument("--nodes", type=int, default=3)
    profile.add_argument("--fit-gc", action="store_true",
                         help="also fit the JVM GC coefficient")
    profile.add_argument("--output", default=None,
                         help="save the fitted report as JSON")
    profile.add_argument("--cache", default=None,
                         help="pipeline result-cache file to reuse/update")

    predict = sub.add_parser("predict", help="predict a configuration")
    predict.add_argument("--workload", required=True)
    predict.add_argument("--slaves", type=int, default=10)
    predict.add_argument("--cores", type=int, default=24)
    predict.add_argument("--hdfs", choices=("hdd", "ssd"), default="ssd")
    predict.add_argument("--local", choices=("hdd", "ssd"), default="ssd")
    predict.add_argument("--profile-nodes", type=int, default=3)
    predict.add_argument("--report", default=None,
                         help="reuse a saved profiling report (skips profiling)")

    simulate = sub.add_parser(
        "simulate", help="run the discrete-event simulator on a workload"
    )
    simulate.add_argument(
        "workload", nargs="?", default=None,
        help="workload name (see list-workloads); omit with --mix",
    )
    simulate.add_argument(
        "--mix", default=None, metavar="FILE",
        help="JSON mix plan: run several workloads together on one shared"
             " cluster and report per-job interference (see"
             " docs/MULTITENANT.md)",
    )
    simulate.add_argument("--slaves", type=int, default=10)
    simulate.add_argument("--cores", type=int, default=24)
    simulate.add_argument("--hdfs", choices=("hdd", "ssd"), default="ssd")
    simulate.add_argument("--local", choices=("hdd", "ssd"), default="ssd")
    simulate.add_argument(
        "--network-gbps", type=float, default=None,
        help="per-node NIC speed; omit for the paper's infinite-wire default",
    )
    simulate.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="JSON fault plan to superimpose on the run (see docs/TESTING.md);"
             " the report then shows per-stage impact vs. the clean run",
    )
    _add_resilience_flags(simulate)
    simulate.add_argument("--json", action="store_true",
                          help="emit the results as JSON instead of tables")
    simulate.add_argument("--cache", default=None,
                          help="pipeline result-cache file to reuse/update")

    pipeline = sub.add_parser(
        "pipeline",
        help="full loop: simulate, profile, and predict one workload",
    )
    pipeline.add_argument("--workload", required=True)
    pipeline.add_argument("--slaves", type=int, default=10)
    pipeline.add_argument("--cores", type=int, default=24)
    pipeline.add_argument("--hdfs", choices=("hdd", "ssd"), default="ssd")
    pipeline.add_argument("--local", choices=("hdd", "ssd"), default="ssd")
    pipeline.add_argument("--network-gbps", type=float, default=None)
    pipeline.add_argument("--runs", type=int, default=1,
                          help="task-skew realizations to simulate")
    pipeline.add_argument("--profile-nodes", type=int, default=3)
    pipeline.add_argument("--report", default=None,
                          help="drive from a saved profiling report instead"
                               " of profiling the spec")
    pipeline.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="JSON fault plan superimposed on every measurement",
    )
    _add_resilience_flags(pipeline)
    pipeline.add_argument("--json", action="store_true",
                          help="emit RunResult records as JSON")
    pipeline.add_argument("--cache", default=None,
                          help="pipeline result-cache file to reuse/update")
    _add_workers_flag(pipeline)

    optimize = sub.add_parser("optimize", help="cloud cost optimization")
    optimize.add_argument("--workload", required=True)
    optimize.add_argument("--cluster-workers", type=int, default=10,
                          metavar="N",
                          help="modeled cluster size N (the paper fixes 10"
                               " slaves)")
    optimize.add_argument("--profile-nodes", type=int, default=3)
    optimize.add_argument("--cache", default=None,
                          help="pipeline result-cache file to reuse/update")
    optimize.add_argument("--prune", action="store_true",
                          help="branch-and-bound search on the Eq.-1 cost"
                               " lower bound (same optimum, fewer model"
                               " evaluations)")
    optimize.add_argument("--top", type=int, default=1, metavar="K",
                          help="print the K cheapest feasible configurations"
                               " (with --prune, ranks beyond 1 rank only the"
                               " candidates the bound kept)")
    optimize.add_argument("--json", action="store_true",
                          help="emit the search outcome as JSON")
    _add_workers_flag(optimize)

    bench = sub.add_parser(
        "bench",
        help="run the benchmark sections with history-gated regression"
             " detection",
    )
    bench.add_argument(
        "--sections", action="append", default=None, metavar="NAMES",
        help="comma-separated section names to run (repeatable);"
             " default: all registered sections",
    )
    bench.add_argument("--rounds", type=int, default=3,
                       help="timing rounds per section (best-of)")
    bench.add_argument(
        "--check", action="store_true",
        help="gate-only mode: judge against the rolling history without"
             " appending a record or rewriting the snapshot; exit"
             " nonzero iff a gate fails",
    )
    bench.add_argument(
        "--skip-slow", action="store_true",
        help="skip sections flagged slow (unless named via --sections)",
    )
    bench.add_argument("--json", action="store_true",
                       help="emit metrics and verdicts as JSON")
    bench.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="FILE",
        help="append-only trajectory file (default: ./BENCH_history.jsonl)",
    )
    bench.add_argument(
        "--output", default="BENCH_simulator.json", metavar="FILE",
        help="latest-snapshot view (default: ./BENCH_simulator.json)",
    )
    bench.add_argument(
        "--max-history", type=int, default=None, metavar="N",
        help="after appending, atomically rotate the history down to the"
             " newest N records",
    )
    bench.add_argument("--list", action="store_true",
                       help="print the registered sections and exit")
    bench.add_argument(
        "--report", action="store_true",
        help="render per-metric sparkline trajectories from the history"
             " file (partitioned by host fingerprint) and exit",
    )

    def _add_service_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--workloads", action="append", default=None, metavar="NAMES",
            help="comma-separated workloads to serve (repeatable;"
                 " default: all built-ins)",
        )
        sub.add_argument("--cache", default=None,
                         help="pipeline result-cache file shared as the"
                              " persistent read tier")
        sub.add_argument("--profile-nodes", type=int, default=3)
        sub.add_argument(
            "--lru-size", type=int, default=1024, metavar="N",
            help="in-process result-LRU capacity (canonical query"
                 " fingerprints)",
        )
        sub.add_argument(
            "--batch-max", type=int, default=32, metavar="N",
            help="micro-batch size bound for model-only queries",
        )
        sub.add_argument(
            "--batch-delay-ms", type=float, default=2.0, metavar="MS",
            help="micro-batch time bound: a lone query waits at most this"
                 " long for company",
        )
        sub.add_argument(
            "--queue-cap", type=int, default=16, metavar="N",
            help="max outstanding simulation queries before new ones are"
                 " rejected with a structured 429",
        )
        _add_workers_flag(sub)

    serve = sub.add_parser(
        "serve",
        help="run the what-if query service (HTTP/JSON, see"
             " docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 picks a free one)")
    serve.add_argument(
        "--warm", action="store_true",
        help="profile every served workload before accepting traffic",
    )
    _add_service_flags(serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="fire a deterministic what-if query mix at the service",
    )
    loadgen.add_argument(
        "--url", default=None, metavar="HOST:PORT",
        help="target a running `repro serve` over HTTP; omit to drive an"
             " in-process engine",
    )
    loadgen.add_argument("--workload", default="svm")
    loadgen.add_argument("--distinct", type=int, default=40,
                         help="unique predict configurations in the mix")
    loadgen.add_argument("--duplicates", type=int, default=5,
                         help="repetitions of each unique query")
    loadgen.add_argument("--concurrency", type=int, default=25,
                         help="max queries in flight at once")
    loadgen.add_argument("--json", action="store_true",
                         help="emit throughput/latency/engine stats as JSON")
    _add_service_flags(loadgen)

    return parser


_COMMANDS = {
    "list-workloads": cmd_list_workloads,
    "fio": cmd_fio,
    "profile": cmd_profile,
    "predict": cmd_predict,
    "simulate": cmd_simulate,
    "pipeline": cmd_pipeline,
    "optimize": cmd_optimize,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors become one structured line on stderr and a stable
    exit code (:func:`repro.errors.exit_code_for`): 2 for configuration
    mistakes, 4 for unusable fault plans, 5 for host execution failures
    (worker loss, task timeouts, quarantined tasks), 3 for everything
    the simulator or model could not survive.  Exit 1 stays reserved
    for genuine crashes, which keep their tracebacks.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except DoppioError as error:
        print(f"error[{type(error).__name__}]: {error}", file=sys.stderr)
        return exit_code_for(error)
