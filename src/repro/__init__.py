"""Doppio: I/O-aware performance analysis, modeling and optimization for
in-memory computing frameworks.

A from-scratch reproduction of the ISPASS 2018 paper (Zhou et al.).  The
package layout:

- :mod:`repro.core` — the I/O-aware analytic model (Equation 1), the
  break-point theory, the four-sample-run profiler, and the predictor.
- :mod:`repro.storage` — HDD/SSD device models with effective bandwidth
  vs. request size, HDFS and Spark-local stores, fio/iostat tools.
- :mod:`repro.cluster` — nodes, networks, and the paper's testbed configs.
- :mod:`repro.simulator` — the discrete-event cluster simulator that plays
  the role of the paper's physical measurements.
- :mod:`repro.spark` — a functional RDD engine plus the framework models
  (shuffle geometry, storage memory).
- :mod:`repro.workloads` — GATK4 and the five Section-V applications.
- :mod:`repro.cloud` — Google Cloud disks, prices, and the cost optimizer.
- :mod:`repro.analysis` — error metrics, sweeps, and report rendering.
- :mod:`repro.parallel` — pluggable serial/process-pool execution
  backends behind every ``workers=`` parameter (see docs/PERFORMANCE.md).

Quickstart::

    from repro import (
        make_gatk4_workload, Profiler, Predictor, make_paper_cluster,
        HYBRID_CONFIGS, measure_workload,
    )

    workload = make_gatk4_workload()
    predictor = Predictor(Profiler(workload, nodes=3).profile())
    cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
    print(predictor.predict_runtime(cluster, cores_per_node=24))
"""

from repro.core import (
    ApplicationModel,
    EffectiveBandwidthTable,
    Predictor,
    Profiler,
    StageModel,
)
from repro.cluster import Cluster, HYBRID_CONFIGS, make_paper_cluster
from repro.parallel import (
    ProcessPoolBackend,
    SerialBackend,
    available_cpus,
    resolve_backend,
)
from repro.spark import DoppioContext, SparkConf
from repro.storage import make_hdd, make_ssd
from repro.workloads import (
    make_gatk4_workload,
    make_logistic_regression_workload,
    make_pagerank_workload,
    make_svm_workload,
    make_terasort_workload,
    make_triangle_count_workload,
)
from repro.workloads.runner import measure_stage, measure_workload

__version__ = "1.0.0"

__all__ = [
    "ApplicationModel",
    "EffectiveBandwidthTable",
    "Predictor",
    "Profiler",
    "StageModel",
    "Cluster",
    "HYBRID_CONFIGS",
    "make_paper_cluster",
    "ProcessPoolBackend",
    "SerialBackend",
    "available_cpus",
    "resolve_backend",
    "DoppioContext",
    "SparkConf",
    "make_hdd",
    "make_ssd",
    "make_gatk4_workload",
    "make_logistic_regression_workload",
    "make_pagerank_workload",
    "make_svm_workload",
    "make_terasort_workload",
    "make_triangle_count_workload",
    "measure_stage",
    "measure_workload",
    "__version__",
]
