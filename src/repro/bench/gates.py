"""Statistical regression detection against the rolling bench history.

Each :class:`MetricGate` names one metric inside a section's record (a
dotted path, e.g. ``"search.pruned_wall_seconds"``) and how to judge it:

- ``"lower"`` / ``"higher"`` — noisy quantities (wall times, rates,
  speedups).  The fresh value is compared against the **median of the
  last K** matching history records; drifting past ``warn_ratio`` of
  the median is a ``warn``, past ``fail_ratio`` a ``fail``.  Matching
  is partitioned by host fingerprint (see
  :func:`repro.bench.history.fingerprint_key`) so a 1-CPU CI runner is
  never judged against multi-core dev-host history.  With fewer than
  ``GatePolicy.min_history`` matching records the gate passes with a
  thin-history note — the section's absolute floors (its ``guards``)
  still apply, which is the fallback the monolith's fixed thresholds
  used to provide.
- ``"exact"`` — deterministic quantities (simulated makespans, the
  search optimum).  The engine is deterministic across hosts and
  backends, so these compare against the most recent history record
  that carries the metric, regardless of fingerprint, within
  ``rel_tolerance``.  Any divergence is a ``fail``: simulation output
  changed, which is a correctness event, not noise.

Verdicts are structured (:class:`Verdict`) so the CLI can render them,
``--json`` can emit them, and CI can annotate warns while failing only
on fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Any


@dataclass(frozen=True)
class MetricGate:
    """How one metric of a section is judged against history."""

    metric: str
    direction: str  # "lower" | "higher" | "exact"
    warn_ratio: float = 2.0
    fail_ratio: float = 4.0
    rel_tolerance: float = 1e-9  # exact gates only
    fingerprint_scoped: bool = True

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher", "exact"):
            raise ValueError(f"unknown gate direction {self.direction!r}")
        if self.direction != "exact" and not (
            1.0 < self.warn_ratio <= self.fail_ratio
        ):
            raise ValueError(
                "gate ratios must satisfy 1 < warn_ratio <= fail_ratio"
            )


@dataclass(frozen=True)
class GatePolicy:
    """Window sizing for the rolling comparison."""

    window: int = 5  # median-of-last-K
    min_history: int = 3  # fewer matching records -> thin-history pass


@dataclass(frozen=True)
class Verdict:
    """One gate's structured outcome."""

    section: str
    metric: str
    status: str  # "pass" | "warn" | "fail" | "skip"
    value: Any = None
    reference: Any = None
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "section": self.section,
            "metric": self.metric,
            "status": self.status,
            "value": self.value,
            "reference": self.reference,
            "detail": self.detail,
        }

    def describe(self) -> str:
        line = f"[{self.status.upper()}] {self.section}.{self.metric}"
        return f"{line}: {self.detail}" if self.detail else line


def metric_value(metrics: dict, path: str) -> Any:
    """Resolve a dotted path inside a metrics mapping (None if absent)."""
    value: Any = metrics
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def _matching_values(
    gate: MetricGate,
    section_name: str,
    history: list[dict],
    fingerprint: str | None,
) -> list[Any]:
    """The gate's metric, extracted from matching records, oldest first."""
    values = []
    for record in history:
        if gate.fingerprint_scoped and fingerprint is not None:
            if record.get("fingerprint_key") != fingerprint:
                continue
        metrics = record.get("sections", {}).get(section_name)
        if metrics is None:
            continue
        value = metric_value(metrics, gate.metric)
        if value is not None:
            values.append(value)
    return values


def _exact_equal(fresh: Any, reference: Any, rel: float) -> bool:
    if isinstance(fresh, (int, float)) and isinstance(reference, (int, float)):
        a, b = float(fresh), float(reference)
        return abs(a - b) <= rel * max(abs(a), abs(b), 1.0)
    if isinstance(fresh, (list, tuple)) and isinstance(reference, (list, tuple)):
        return len(fresh) == len(reference) and all(
            _exact_equal(f, r, rel) for f, r in zip(fresh, reference)
        )
    return fresh == reference


def _judge_band(
    gate: MetricGate, fresh: float, reference: float
) -> tuple[str, str]:
    """(status, detail) of a noisy metric vs its history median."""
    if gate.direction == "lower":
        warn_at, fail_at = reference * gate.warn_ratio, reference * gate.fail_ratio
        if fresh > fail_at:
            return "fail", (
                f"{fresh:g} exceeds {gate.fail_ratio:g}x the rolling median"
                f" {reference:g}"
            )
        if fresh > warn_at:
            return "warn", (
                f"{fresh:g} exceeds {gate.warn_ratio:g}x the rolling median"
                f" {reference:g}"
            )
    else:  # higher is better
        warn_at, fail_at = reference / gate.warn_ratio, reference / gate.fail_ratio
        if fresh < fail_at:
            return "fail", (
                f"{fresh:g} is below 1/{gate.fail_ratio:g} of the rolling"
                f" median {reference:g}"
            )
        if fresh < warn_at:
            return "warn", (
                f"{fresh:g} is below 1/{gate.warn_ratio:g} of the rolling"
                f" median {reference:g}"
            )
    return "pass", f"{fresh:g} within the noise band of median {reference:g}"


def evaluate_gate(
    gate: MetricGate,
    section_name: str,
    metrics: dict,
    history: list[dict],
    fingerprint: str | None,
    policy: GatePolicy,
) -> Verdict:
    """Judge one metric; always returns a verdict (possibly ``skip``)."""
    fresh = metric_value(metrics, gate.metric)
    if fresh is None:
        return Verdict(
            section_name, gate.metric, "skip",
            detail="metric absent from this run",
        )
    matching = _matching_values(gate, section_name, history, fingerprint)

    if gate.direction == "exact":
        if not matching:
            return Verdict(
                section_name, gate.metric, "pass", fresh, None,
                "no prior record to compare against",
            )
        reference = matching[-1]
        if _exact_equal(fresh, reference, gate.rel_tolerance):
            return Verdict(
                section_name, gate.metric, "pass", fresh, reference,
                "matches the last recorded value",
            )
        return Verdict(
            section_name, gate.metric, "fail", fresh, reference,
            f"deterministic metric changed: {fresh!r} vs recorded"
            f" {reference!r}",
        )

    if len(matching) < policy.min_history:
        return Verdict(
            section_name, gate.metric, "pass", fresh, None,
            f"thin history ({len(matching)} < {policy.min_history}"
            " matching records); absolute floors apply",
        )
    reference = median(float(v) for v in matching[-policy.window:])
    status, detail = _judge_band(gate, float(fresh), reference)
    return Verdict(section_name, gate.metric, status, fresh, reference, detail)


def evaluate_section(
    section_name: str,
    gates: tuple[MetricGate, ...],
    metrics: dict,
    history: list[dict],
    fingerprint: str | None,
    policy: GatePolicy | None = None,
) -> list[Verdict]:
    """All of one section's gate verdicts against the rolling history."""
    policy = policy or GatePolicy()
    return [
        evaluate_gate(gate, section_name, metrics, history, fingerprint, policy)
        for gate in gates
    ]
