"""The old ``benchmarks/perf_simulator.py`` contract, on the registry.

``collect``/``check``/``main`` keep the monolith's exact semantics —
same snapshot shape, same guard thresholds, same ``--check`` exit
behaviour — so the file in ``benchmarks/`` shrinks to a shim and CI's
``perf_simulator.py --check`` step keeps working unchanged.  The fresh
absolute guards are the sections' own ``guards`` callables (single
source of truth); the baseline comparisons below are the monolith's
snapshot-vs-fresh checks, kept separate from the history gates because
they compare against the *committed* ``BENCH_simulator.json``, not the
trajectory.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.bench.history import write_snapshot
from repro.bench.registry import all_sections
from repro.bench.runner import compose_snapshot
from repro.bench.sections import DEFAULT_ROUNDS, WALL_TOLERANCE

#: Where the monolith kept its snapshot: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[3] / "BENCH_simulator.json"


def collect(rounds: int) -> dict:
    """Run every registered section; return the legacy snapshot dict."""
    metrics = {
        section.name: section.run(rounds) for section in all_sections()
    }
    return compose_snapshot(metrics)


def _close(a: float, b: float, rel: float = 1e-9) -> bool:
    return abs(a - b) <= rel * max(abs(a), abs(b), 1.0)


def check(fresh: dict, baseline: dict) -> list[str]:
    """Compare a fresh run against the committed baseline; return failures.

    Fresh guards come from the registered sections; everything else is
    the monolith's baseline comparison logic, verbatim.
    """
    failures: list[str] = []

    # Absolute floors — these hold on every run, baseline or not.
    by_key = {
        section.snapshot_key: section for section in all_sections()
    }
    for key, section in by_key.items():
        metrics = fresh if key is None else fresh.get(key)
        if metrics is not None:
            failures.extend(section.guards(metrics))

    if not _close(
        fresh["simulated_makespan_seconds"],
        baseline["simulated_makespan_seconds"],
    ):
        failures.append(
            "MD-stage makespan changed:"
            f" {fresh['simulated_makespan_seconds']!r} vs baseline"
            f" {baseline['simulated_makespan_seconds']!r}"
        )
    if fresh["wall_seconds_best"] > baseline["wall_seconds_best"] * WALL_TOLERANCE:
        failures.append(
            "MD-stage wall time regressed:"
            f" {fresh['wall_seconds_best']}s vs baseline"
            f" {baseline['wall_seconds_best']}s (tolerance {WALL_TOLERANCE}x)"
        )

    sweep_f, sweep_b = fresh["core_sweep"], baseline.get("core_sweep")
    if sweep_b is not None:
        if not all(
            _close(a, b)
            for a, b in zip(
                sweep_f["total_seconds_per_p"], sweep_b["total_seconds_per_p"]
            )
        ):
            failures.append(
                "core_sweep: simulated totals changed:"
                f" {sweep_f['total_seconds_per_p']} vs"
                f" {sweep_b['total_seconds_per_p']}"
            )
        if sweep_f["cold_wall_seconds"] > (
            sweep_b["cold_wall_seconds"] * WALL_TOLERANCE
        ):
            failures.append(
                "core_sweep: cold wall time regressed:"
                f" {sweep_f['cold_wall_seconds']}s vs baseline"
                f" {sweep_b['cold_wall_seconds']}s (tolerance {WALL_TOLERANCE}x)"
            )

    search_f, search_b = fresh["optimizer_search"], baseline.get(
        "optimizer_search"
    )
    if search_b is not None and "best_runtime_seconds" in search_b:
        if not _close(
            search_f["best_runtime_seconds"], search_b["best_runtime_seconds"]
        ):
            failures.append(
                "optimizer_search: predicted optimum runtime changed:"
                f" {search_f['best_runtime_seconds']!r} vs"
                f" {search_b['best_runtime_seconds']!r}"
            )
        if "wall_seconds" in search_b and search_f["wall_seconds"] > (
            search_b["wall_seconds"] * WALL_TOLERANCE
        ):
            failures.append(
                "optimizer_search: wall time regressed:"
                f" {search_f['wall_seconds']}s vs baseline"
                f" {search_b['wall_seconds']}s (tolerance {WALL_TOLERANCE}x)"
            )

    resil, base_r = fresh["resilience"], baseline.get("resilience")
    if base_r is not None:
        for field in (
            "clean_seconds", "clean_speculation_seconds",
            "unmitigated_seconds", "mitigated_seconds",
        ):
            if not _close(resil[field], base_r[field]):
                failures.append(
                    f"resilience: {field} changed:"
                    f" {resil[field]!r} vs baseline {base_r[field]!r}"
                )

    search = fresh["parallel"]["search"]
    grid = fresh["parallel"]["grid"]
    base_p = baseline.get("parallel")
    if base_p is not None:
        if search["best_config"] != base_p["search"]["best_config"]:
            failures.append(
                "parallel: pruned-search optimum changed:"
                f" {search['best_config']!r} vs baseline"
                f" {base_p['search']['best_config']!r}"
            )
        if not _close(
            search["best_cost_dollars"],
            base_p["search"]["best_cost_dollars"],
            rel=1e-6,
        ):
            failures.append(
                "parallel: pruned-search optimum cost changed:"
                f" {search['best_cost_dollars']!r} vs baseline"
                f" {base_p['search']['best_cost_dollars']!r}"
            )
        if search["pruned_wall_seconds"] > (
            base_p["search"]["pruned_wall_seconds"] * WALL_TOLERANCE
        ):
            failures.append(
                "parallel: pruned-search wall time regressed:"
                f" {search['pruned_wall_seconds']}s vs baseline"
                f" {base_p['search']['pruned_wall_seconds']}s"
                f" (tolerance {WALL_TOLERANCE}x)"
            )
        if grid["warm_wall_seconds"] > (
            base_p["grid"]["warm_wall_seconds"] * WALL_TOLERANCE
        ):
            failures.append(
                "parallel: warm grid replay regressed:"
                f" {grid['warm_wall_seconds']}s vs baseline"
                f" {base_p['grid']['warm_wall_seconds']}s"
                f" (tolerance {WALL_TOLERANCE}x) — fingerprint hoisting"
                " or the shard merge slowed composition down"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Micro-benchmark the simulator on paper-scale scenarios"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write (or read, with --check) the JSON result",
    )
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument(
        "--check", action="store_true",
        help="compare a fresh run against the recorded JSON instead of"
             " overwriting it; non-zero exit on regression",
    )
    args = parser.parse_args(argv)

    result = collect(args.rounds)
    if args.check:
        baseline = json.loads(args.output.read_text())
        failures = check(result, baseline)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        vec = result["vectorized"]
        kernel = (
            f"kernel {vec['python_cand_per_s']} cand/s (py)"
            + (
                f" / {vec['numpy_cand_per_s']} (numpy),"
                f" {vec['speedup_vs_scalar']}x vs scalar"
                if vec["numpy_cand_per_s"] is not None else ""
            )
        )
        print(
            "perf check OK:"
            f" md {result['wall_seconds_best']}s"
            f" (baseline {baseline['wall_seconds_best']}s),"
            f" sweep cache {result['core_sweep']['cache_speedup']}x,"
            f" search {result['optimizer_search']['wall_seconds']}s,"
            f" prune kept"
            f" {result['parallel']['search']['pruned_evaluated']}/"
            f"{result['parallel']['search']['num_candidates']},"
            f" {result['parallel']['grid']['workers']}-worker grid"
            f" {result['parallel']['grid']['parallel_speedup']}x"
            f" on {result['parallel']['grid']['usable_cpus']} CPU(s),"
            f" {kernel}"
        )
        return 0

    write_snapshot(args.output, result)
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.output}]")
    return 0
