"""Trajectory report: per-metric sparklines over the bench history.

``python -m repro bench --report`` renders the append-only
``BENCH_history.jsonl`` as a compact terminal view: one sparkline per
numeric metric showing its trajectory across records, labeled with the
git SHA of each record so a drift is attributable to a commit range at
a glance.

Records are **partitioned by fingerprint key** (the same
host-and-backend identity the gate policy scopes to): a laptop's
timings and CI's timings never share a sparkline, for the same reason
they never share a band gate.  Within a partition, a record that lacks
a section or metric (partial ``--sections`` runs are normal) renders as
a gap (``·``) rather than breaking the series.
"""

from __future__ import annotations

from repro.bench.history import fingerprint_key

__all__ = ["flatten_metrics", "render_history_report", "sparkline"]

#: Eight-level bar glyphs, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: A record missing this metric (partial-section run) renders as a gap.
GAP_CHAR = "·"

#: At most this many newest records per fingerprint partition.
MAX_COLUMNS = 16

#: Per-round raw lists and similar non-scalar leaves are skipped; these
#: metric name suffixes are explicitly excluded even when numeric.
_SKIP_SUFFIXES = ("wall_seconds_all",)


def flatten_metrics(section: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a section's metrics dict, under dotted paths."""
    flat: dict[str, float] = {}
    for name, value in section.items():
        path = f"{prefix}{name}"
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=f"{path}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            if not path.endswith(_SKIP_SUFFIXES):
                flat[path] = float(value)
    return flat


def sparkline(values: list[float | None]) -> str:
    """Min-max-normalized bar string; ``None`` entries become gaps."""
    present = [value for value in values if value is not None]
    if not present:
        return GAP_CHAR * len(values)
    low, high = min(present), max(present)
    span = high - low
    chars = []
    for value in values:
        if value is None:
            chars.append(GAP_CHAR)
        elif span == 0:
            chars.append(SPARK_CHARS[len(SPARK_CHARS) // 2])
        else:
            level = int((value - low) / span * (len(SPARK_CHARS) - 1))
            chars.append(SPARK_CHARS[level])
    return "".join(chars)


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:.4g}"


def render_history_report(records: list[dict], path=None) -> str:
    """The full ``bench --report`` text for a loaded history."""
    lines = []
    source = f" in {path}" if path is not None else ""
    lines.append(f"bench history: {len(records)} record(s){source}")
    if not records:
        lines.append("  (no records yet — run `repro bench` to seed one)")
        return "\n".join(lines)

    partitions: dict[str, list[dict]] = {}
    for record in records:
        key = record.get("fingerprint_key") or fingerprint_key(
            record.get("fingerprint", {})
        )
        partitions.setdefault(key, []).append(record)

    for key, group in partitions.items():
        group = group[-MAX_COLUMNS:]
        lines.append("")
        lines.append(f"fingerprint {key} — {len(group)} record(s)")
        shas = [str(record.get("git_sha", "unknown"))[:7] for record in group]
        lines.append(f"  sha: {' '.join(shas)}")

        # Union of section names / metric paths, in first-seen order.
        section_names: list[str] = []
        metric_paths: dict[str, list[str]] = {}
        for record in group:
            for name, metrics in record.get("sections", {}).items():
                if name not in section_names:
                    section_names.append(name)
                    metric_paths[name] = []
                for metric in flatten_metrics(metrics):
                    if metric not in metric_paths[name]:
                        metric_paths[name].append(metric)

        width = max(
            (
                len(f"{name}.{metric}")
                for name in section_names
                for metric in metric_paths[name]
            ),
            default=0,
        )
        for name in section_names:
            for metric in metric_paths[name]:
                series: list[float | None] = []
                for record in group:
                    metrics = record.get("sections", {}).get(name)
                    series.append(
                        flatten_metrics(metrics).get(metric)
                        if isinstance(metrics, dict)
                        else None
                    )
                present = [value for value in series if value is not None]
                first, last = present[0], present[-1]
                label = f"{name}.{metric}"
                lines.append(
                    f"  {label:<{width}}  {sparkline(series)}"
                    f"  {_fmt(first)} -> {_fmt(last)}"
                )
    return "\n".join(lines)
