"""Orchestration behind ``python -m repro bench`` and the legacy shim.

:func:`run_bench` runs the selected sections, judges every metric gate
against the rolling history, folds the sections' absolute floors into
the same verdict stream (metric ``"guard"``, always a fail), and hands
back a :class:`BenchReport`.  Persistence — appending the history
record, rotating, writing the snapshot — is the caller's business, so
the runner is equally usable from the CLI, the legacy entry point, and
tests.

:func:`compose_snapshot` rebuilds the ``BENCH_simulator.json`` view
from per-section metrics: the ``engine`` section's metrics form the
top level (the historical shape), every other section sits under its
``snapshot_key``.  Passing the previously-written snapshot as
``existing`` lets a partial ``--sections`` run refresh only the
sections it actually ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.gates import GatePolicy, Verdict, evaluate_section
from repro.bench.history import (
    BenchHistory,
    fingerprint_key,
    host_fingerprint,
    make_record,
)
from repro.bench.registry import BenchmarkSection, all_sections


@dataclass
class BenchReport:
    """Everything one bench run produced."""

    sections: dict[str, dict]
    verdicts: list[Verdict]
    fingerprint: dict
    rounds: int
    record: dict = field(default_factory=dict)

    @property
    def failures(self) -> list[Verdict]:
        return [v for v in self.verdicts if v.status == "fail"]

    @property
    def warnings(self) -> list[Verdict]:
        return [v for v in self.verdicts if v.status == "warn"]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "sections": self.sections,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "fingerprint": self.fingerprint,
            "fingerprint_key": fingerprint_key(self.fingerprint),
            "rounds": self.rounds,
            "ok": self.ok,
        }


def run_bench(
    sections: list[BenchmarkSection] | None = None,
    rounds: int = 3,
    history: BenchHistory | None = None,
    policy: GatePolicy | None = None,
) -> BenchReport:
    """Run sections, judge gates and floors, return the full report.

    ``history`` is only *read* here (for the gate comparisons); the
    caller decides whether the returned ``report.record`` gets
    appended.
    """
    sections = sections if sections is not None else all_sections()
    records = history.load() if history is not None else []
    fingerprint = host_fingerprint()
    fp_key = fingerprint_key(fingerprint)

    metrics_by_name: dict[str, dict] = {}
    verdicts: list[Verdict] = []
    for section in sections:
        metrics = section.run(rounds)
        metrics_by_name[section.name] = metrics
        for failure in section.guards(metrics):
            verdicts.append(Verdict(
                section.name, "guard", "fail", detail=failure,
            ))
        verdicts.extend(evaluate_section(
            section.name, section.gates, metrics, records, fp_key, policy,
        ))

    return BenchReport(
        sections=metrics_by_name,
        verdicts=verdicts,
        fingerprint=fingerprint,
        rounds=rounds,
        record=make_record(metrics_by_name, rounds, fingerprint),
    )


def compose_snapshot(
    section_metrics: dict[str, dict], existing: dict | None = None
) -> dict:
    """The ``BENCH_simulator.json`` view of per-section metrics.

    The ``engine`` section (``snapshot_key is None``) merges at the top
    level — that is the monolith's historical shape — and every other
    section sits under its key.  ``existing`` seeds the result so a
    subset run preserves the sections it did not touch.
    """
    keys = {
        section.name: section.snapshot_key for section in all_sections()
    }
    snapshot = dict(existing) if existing else {}
    for name, metrics in section_metrics.items():
        key = keys.get(name, name)
        if key is None:
            snapshot.update(metrics)
        else:
            snapshot[key] = metrics
    return snapshot
