"""The built-in benchmark sections, decomposed from the old monolith.

Each section is a registered :class:`~repro.bench.registry.BenchmarkSection`
carrying three layers of protection:

1. **correctness asserts** inside ``run`` — bit-identity, exactness vs
   the scalar model — which fire on every invocation;
2. **absolute floors** in ``guards`` — the legacy monolith's fixed
   thresholds (cache speedup >= 2x, kernel >= 1e5 cand/s, ...), which
   hold on every run and are the fallback when history is thin;
3. **history gates** in ``gates`` — the statistical detector's metric
   specs, judged against the rolling ``BENCH_history.jsonl`` window.

Metric dictionaries keep the exact key shape the monolith wrote, so the
regenerated ``BENCH_simulator.json`` is drop-in identical for the same
host and the committed trajectory stays comparable across the refactor.
"""

from __future__ import annotations

import json
import platform
import time

from repro.bench.gates import MetricGate
from repro.bench.registry import BenchmarkSection, register_section

# -- scenario constants (values unchanged from benchmarks/perf_simulator.py) --

NUM_SLAVES = 10
CORES_PER_NODE = 24
DEFAULT_ROUNDS = 3

#: Fig. 3 setting: the 3-slave motivation cluster, 2SSD placement.
SWEEP_SLAVES = 3
SWEEP_CORES = (12, 24, 36)

#: Fig. 13/15 search grid (the benchmark suite's vcpu grid).
SEARCH_VCPUS = (8, 16, 32)

# Wall time of the same scenario under the O(active)-scan event loop that
# predates the indexed event heap, measured on the reference container when
# the heap landed.  Kept as a fixed baseline so the speedup column stays
# meaningful without checking out old revisions.
SCAN_LOOP_BASELINE_SECONDS = 0.777

#: Legacy snapshot check: fresh wall times may not exceed this multiple of
#: the recorded ones — generous, because CI machines are noisy.  The
#: history gates reuse it as their fail band.
WALL_TOLERANCE = 4.0

#: Minimum cold/warm speedup the result cache must deliver.
MIN_CACHE_SPEEDUP = 2.0

#: The resilience scenario's straggler severity (matches the shipped
#: example plan family) and the ceiling on what an armed-but-idle
#: speculation policy may cost a clean run.
STRAGGLER_SLOWDOWN = 2.5
MAX_CLEAN_SPECULATION_OVERHEAD = 0.05

#: Largest share of the grid the bound-pruned search may still evaluate
#: — pruning must discard at least half (measured: ~93% discarded).
MAX_PRUNE_EVAL_FRACTION = 0.5

#: Array-kernel throughput floors (candidates scored per second, one
#: core) and the minimum batch-vs-scalar speedup with numpy installed.
MIN_PYTHON_CAND_PER_S = 1e5
MIN_NUMPY_CAND_PER_S = 1e6
MIN_VECTOR_SPEEDUP_VS_SCALAR = 20.0

#: The vectorized benchmark's disk-size axis (the Fig. 13-15 sweep) and
#: how many times the resulting grid is tiled for stable timing.
VECTOR_SIZES_GB = (
    20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 1500.0, 2000.0, 3000.0, 4000.0
)
VECTOR_TILE_REPS = 50

#: Minimum parallel-vs-serial wall-clock speedup with two workers —
#: enforced only on hosts where two workers can actually run at once.
MIN_PARALLEL_SPEEDUP = 1.5
PARALLEL_WORKERS = 2

#: The parallel grid: Fig.-3-shaped cold sweep, four cells so two
#: workers can balance it.
PARALLEL_GRID_CORES = (8, 12, 24, 36)

#: Clean-path supervision overhead ceiling: on a healthy run the
#: supervisor (per-item futures, deadlines, retry bookkeeping) may cost
#: at most this fraction over a raw chunked ``Executor.map``.
MAX_SUPERVISION_OVERHEAD = 0.05
SUPERVISION_ITEMS = 32

#: History-gate band shared by wall-time metrics: warn at half the
#: legacy tolerance, fail at the legacy tolerance itself.
_WALL_BAND = {"warn_ratio": WALL_TOLERANCE / 2, "fail_ratio": WALL_TOLERANCE}


def _gatk4_predictor():
    from repro.core import Predictor, Profiler
    from repro.workloads import make_gatk4_workload

    workload = make_gatk4_workload()
    return workload, Predictor(Profiler(workload, nodes=3).profile())


def _paper_optimizer(predictor):
    from repro.cloud.optimizer import CostOptimizer
    from repro.workloads import make_gatk4_workload

    hdfs_gb, local_gb = CostOptimizer.capacity_requirements(
        make_gatk4_workload(), num_workers=10
    )
    return CostOptimizer(
        predictor, num_workers=10,
        min_hdfs_gb=hdfs_gb, min_local_gb=local_gb,
    )


# -- engine: the GATK4 MD-stage event-loop microbenchmark ---------------------


def run_md_stage_once() -> tuple[float, float]:
    """Build and run the MD stage once; returns (wall seconds, makespan)."""
    from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
    from repro.simulator.engine import SimulationEngine
    from repro.workloads import make_gatk4_workload

    spec = make_gatk4_workload().stages[0]
    cluster = make_paper_cluster(NUM_SLAVES, HYBRID_CONFIGS[0])
    tasks = spec.build_tasks(cores_per_node=CORES_PER_NODE, jitter_offset=0.0)
    engine = SimulationEngine(cluster, cores_per_node=CORES_PER_NODE)
    start = time.perf_counter()
    makespan = engine.run(tasks)
    return time.perf_counter() - start, makespan


def run_engine(rounds: int) -> dict:
    """The historical event-loop microbenchmark (fields kept stable)."""
    walls = []
    makespan = None
    for _ in range(max(1, rounds)):
        wall, makespan = run_md_stage_once()
        walls.append(wall)
    best = min(walls)
    return {
        "benchmark": "gatk4-md-stage",
        "num_slaves": NUM_SLAVES,
        "cores_per_node": CORES_PER_NODE,
        "rounds": len(walls),
        "wall_seconds_best": round(best, 4),
        "wall_seconds_all": [round(w, 4) for w in walls],
        "simulated_makespan_seconds": makespan,
        "scan_loop_baseline_seconds": SCAN_LOOP_BASELINE_SECONDS,
        "speedup_vs_scan_loop": round(SCAN_LOOP_BASELINE_SECONDS / best, 2),
        "python": platform.python_version(),
    }


register_section(BenchmarkSection(
    name="engine",
    title="GATK4 MD stage on the indexed event heap (973 tasks, 10 slaves)",
    snapshot_key=None,
    run=run_engine,
    gates=(
        MetricGate("simulated_makespan_seconds", "exact",
                   fingerprint_scoped=False),
        MetricGate("wall_seconds_best", "lower", **_WALL_BAND),
    ),
))


# -- cache: the Fig. 3 sweep, cold then warm ----------------------------------


def run_cache(rounds: int) -> dict:
    """Fig. 3 sweep, cold then warm through one result cache."""
    del rounds  # the cold/warm pair is inherently one round
    from repro.analysis.sweep import sweep_cores
    from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
    from repro.pipeline import ResultCache

    workload, predictor = _gatk4_predictor()
    cluster = make_paper_cluster(SWEEP_SLAVES, HYBRID_CONFIGS[0])
    cache = ResultCache()

    start = time.perf_counter()
    cold_points = sweep_cores(workload, predictor, cluster, SWEEP_CORES, cache)
    cold_wall = time.perf_counter() - start

    start = time.perf_counter()
    warm_points = sweep_cores(workload, predictor, cluster, SWEEP_CORES, cache)
    warm_wall = time.perf_counter() - start

    assert [p.total.measured for p in warm_points] == [
        p.total.measured for p in cold_points
    ], "cache hits must be bit-identical"
    return {
        "benchmark": "fig3-core-sweep",
        "num_slaves": SWEEP_SLAVES,
        "core_counts": list(SWEEP_CORES),
        "total_seconds_per_p": [p.total.measured for p in cold_points],
        "cold_wall_seconds": round(cold_wall, 4),
        "warm_wall_seconds": round(warm_wall, 4),
        "cache_speedup": round(cold_wall / warm_wall, 2),
        "cache_stats": cache.stats_summary(),
    }


def guard_cache(metrics: dict) -> list[str]:
    if metrics["cache_speedup"] < MIN_CACHE_SPEEDUP:
        return [
            f"core_sweep: cache speedup {metrics['cache_speedup']}x is"
            f" below the required {MIN_CACHE_SPEEDUP}x"
        ]
    return []


register_section(BenchmarkSection(
    name="cache",
    title="Fig. 3 core sweep cold vs warm through the shared result cache",
    snapshot_key="core_sweep",
    run=run_cache,
    guards=guard_cache,
    gates=(
        MetricGate("total_seconds_per_p", "exact", fingerprint_scoped=False),
        MetricGate("cold_wall_seconds", "lower", **_WALL_BAND),
        MetricGate("cache_speedup", "higher", **_WALL_BAND),
    ),
    slow=True,
))


# -- search: the Fig. 13/15 grid through the array kernel ---------------------


def run_search(rounds: int) -> dict:
    """Fig. 13/15 grid search through the array kernel.

    The search scores the whole grid as one
    :class:`~repro.model.arrays.CandidateBatch`, so there is no
    per-candidate prediction cache to warm any more — the recorded
    numbers are the search wall time (best of ``rounds``) and the
    grid-candidates-per-second rate it implies.
    """
    _workload, predictor = _gatk4_predictor()
    optimizer = _paper_optimizer(predictor)

    walls = []
    result = None
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        result = optimizer.grid_search(vcpu_grid=SEARCH_VCPUS)
        walls.append(time.perf_counter() - start)
    best_wall = min(walls)

    return {
        "benchmark": "fig13-15-grid-search",
        "vcpu_grid": list(SEARCH_VCPUS),
        "num_candidates": result.num_evaluated,
        "best_config": result.best.config.label(),
        "best_cost_dollars": round(result.best.cost_dollars, 4),
        "best_runtime_seconds": result.best.runtime_seconds,
        "wall_seconds": round(best_wall, 4),
        "candidates_per_second": round(result.num_evaluated / best_wall),
    }


register_section(BenchmarkSection(
    name="search",
    title="Fig. 13/15 cost-optimizer grid search (864 candidates)",
    snapshot_key="optimizer_search",
    run=run_search,
    gates=(
        MetricGate("best_runtime_seconds", "exact", fingerprint_scoped=False),
        MetricGate("best_cost_dollars", "exact", fingerprint_scoped=False),
        MetricGate("best_config", "exact", fingerprint_scoped=False),
        MetricGate("wall_seconds", "lower", **_WALL_BAND),
        MetricGate("candidates_per_second", "higher", **_WALL_BAND),
    ),
))


# -- resilience: speculation + blacklisting vs a straggler --------------------


def run_resilience(rounds: int) -> dict:
    """Speculation + blacklisting vs a 2.5x straggler on the MD stage.

    Four deterministic measurements of the same single-stage workload:
    clean, clean with speculation armed (the overhead probe), faulted
    without mitigations, and faulted with speculation + blacklisting.
    """
    del rounds  # deterministic: repeated rounds would remeasure the same run
    from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
    from repro.faults import FaultPlan, StragglerFault
    from repro.resilience import (
        BlacklistPolicy,
        ResiliencePolicy,
        SpeculationPolicy,
        merge_summaries,
    )
    from repro.workloads import make_gatk4_workload
    from repro.workloads.base import WorkloadSpec
    from repro.workloads.runner import measure_workload

    stage = make_gatk4_workload().stages[0]
    workload = WorkloadSpec(name="md-stage", stages=(stage,))
    plan = FaultPlan(
        name="bench-straggler",
        faults=(StragglerFault(node=1, slowdown=STRAGGLER_SLOWDOWN),),
    )
    policy = ResiliencePolicy(
        speculation=SpeculationPolicy(),
        blacklist=BlacklistPolicy(max_node_strikes=2),
    )
    speculation_only = ResiliencePolicy(speculation=SpeculationPolicy())

    def measure(faults=None, resilience=None):
        cluster = make_paper_cluster(NUM_SLAVES, HYBRID_CONFIGS[0])
        start = time.perf_counter()
        result = measure_workload(
            cluster, CORES_PER_NODE, workload,
            faults=faults, resilience=resilience,
        )
        return time.perf_counter() - start, result

    wall = 0.0
    elapsed, clean = measure()
    wall += elapsed
    elapsed, clean_armed = measure(resilience=speculation_only)
    wall += elapsed
    elapsed, unmitigated = measure(faults=plan)
    wall += elapsed
    elapsed, mitigated = measure(faults=plan, resilience=policy)
    wall += elapsed

    overhead = clean_armed.total_seconds / clean.total_seconds - 1.0
    summary = merge_summaries(s.resilience for s in mitigated.stages)
    return {
        "benchmark": "resilience-straggler",
        "num_slaves": NUM_SLAVES,
        "cores_per_node": CORES_PER_NODE,
        "straggler_slowdown": STRAGGLER_SLOWDOWN,
        "clean_seconds": clean.total_seconds,
        "clean_speculation_seconds": clean_armed.total_seconds,
        "clean_speculation_overhead_fraction": round(overhead, 6),
        "unmitigated_seconds": unmitigated.total_seconds,
        "mitigated_seconds": mitigated.total_seconds,
        "recovered_fraction": round(
            1.0 - mitigated.total_seconds / unmitigated.total_seconds, 4
        ),
        "speculative_launched": summary.speculative_launched,
        "speculative_wins": summary.speculative_wins,
        "blacklisted": list(summary.blacklisted),
        "wall_seconds": round(wall, 4),
    }


def guard_resilience(metrics: dict) -> list[str]:
    failures = []
    if metrics["mitigated_seconds"] >= metrics["unmitigated_seconds"]:
        failures.append(
            "resilience: mitigation no longer beats the straggler:"
            f" mitigated {metrics['mitigated_seconds']}s vs unmitigated"
            f" {metrics['unmitigated_seconds']}s"
        )
    if metrics[
        "clean_speculation_overhead_fraction"
    ] > MAX_CLEAN_SPECULATION_OVERHEAD:
        failures.append(
            "resilience: armed speculation costs a clean run"
            f" {metrics['clean_speculation_overhead_fraction'] * 100:.2f}%,"
            f" above the {MAX_CLEAN_SPECULATION_OVERHEAD * 100:.0f}% ceiling"
        )
    return failures


register_section(BenchmarkSection(
    name="resilience",
    title="speculation + blacklisting vs a 2.5x straggler on the MD stage",
    snapshot_key="resilience",
    run=run_resilience,
    guards=guard_resilience,
    gates=(
        MetricGate("clean_seconds", "exact", fingerprint_scoped=False),
        MetricGate("clean_speculation_seconds", "exact",
                   fingerprint_scoped=False),
        MetricGate("unmitigated_seconds", "exact", fingerprint_scoped=False),
        MetricGate("mitigated_seconds", "exact", fingerprint_scoped=False),
        MetricGate("wall_seconds", "lower", **_WALL_BAND),
    ),
))


# -- parallel: bound-pruned search and process-parallel grids -----------------


def _supervision_work(seed: int) -> int:
    """A few milliseconds of pure CPU; module-level so pools can pickle it.

    Sized like a small grid cell (several ms), not a micro-item: the
    overhead metric should reflect the supervisor's bookkeeping on its
    real workload, where per-item future cost is marginal.
    """
    total = seed
    for value in range(60_000):
        total = (total * 1103515245 + value) % 2147483647
    return total


def run_parallel(rounds: int) -> dict:
    """PR-5 accelerators: bound-pruned search and process-parallel grids.

    Correctness (identical best, bit-identical records) is asserted on
    every run; the wall-clock and pruning guards live in the section's
    floors and gates.  The ``supervision`` block times the fault-
    tolerant execution tier's clean path against a raw chunked map.
    """
    from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
    from repro.parallel import available_cpus
    from repro.pipeline.experiment import Experiment
    from repro.pipeline.sources import ResolvedSource

    workload, predictor = _gatk4_predictor()

    def cold_search(**kwargs):
        # A fresh optimizer per round: no cache, so the search is cold.
        optimizer = _paper_optimizer(predictor)
        start = time.perf_counter()
        result = optimizer.grid_search(vcpu_grid=SEARCH_VCPUS, **kwargs)
        return time.perf_counter() - start, result

    exhaustive_walls, pruned_walls = [], []
    exhaustive = pruned = None
    for _ in range(max(1, rounds)):
        wall, exhaustive = cold_search()
        exhaustive_walls.append(wall)
        wall, pruned = cold_search(prune=True)
        pruned_walls.append(wall)
    assert pruned.best.config == exhaustive.best.config, (
        "pruned search must return the exhaustive optimum"
    )
    assert pruned.best.cost_dollars == exhaustive.best.cost_dollars

    # Cold Fig.-3-shaped sweep, serial vs two worker processes, fresh
    # caches on both sides so every cell really simulates.
    def cold_grid(workers):
        experiment = Experiment(
            ResolvedSource(workload, predictor.report),
            make_paper_cluster(SWEEP_SLAVES, HYBRID_CONFIGS[0]),
        )
        start = time.perf_counter()
        results = experiment.run_grid(
            nodes=(SWEEP_SLAVES,),
            cores_per_node=PARALLEL_GRID_CORES,
            workers=workers,
        )
        wall = time.perf_counter() - start
        dump = json.dumps([r.to_dict() for r in results], sort_keys=True)
        return wall, dump, experiment

    serial_wall, serial_dump, _ = cold_grid(None)
    parallel_wall, parallel_dump, parallel_experiment = cold_grid(
        PARALLEL_WORKERS
    )
    assert parallel_dump == serial_dump, (
        "parallel grid records must be bit-identical to serial"
    )

    # Warm replay from the merged shards: times the hoisted-fingerprint
    # composition path and proves the parallel run fully warmed its cache.
    start = time.perf_counter()
    replay = parallel_experiment.run_grid(
        nodes=(SWEEP_SLAVES,), cores_per_node=PARALLEL_GRID_CORES
    )
    warm_wall = time.perf_counter() - start
    assert json.dumps(
        [r.to_dict() for r in replay], sort_keys=True
    ) == serial_dump

    # Clean-path supervision overhead: the same CPU-bound items through
    # a raw chunked Executor.map and through the TaskSupervisor, each on
    # a fresh two-worker pool so neither side inherits warm workers.
    from repro.parallel import ProcessPoolBackend, TaskSupervisor

    items = list(range(SUPERVISION_ITEMS))
    expected = [_supervision_work(item) for item in items]
    raw_walls, supervised_walls = [], []
    for _ in range(max(1, rounds)):
        with ProcessPoolBackend(PARALLEL_WORKERS) as backend:
            start = time.perf_counter()
            raw_results = backend.map(_supervision_work, items)
            raw_walls.append(time.perf_counter() - start)
        with ProcessPoolBackend(PARALLEL_WORKERS) as backend:
            supervisor = TaskSupervisor(backend)
            start = time.perf_counter()
            supervised_results = supervisor.map(_supervision_work, items)
            supervised_walls.append(time.perf_counter() - start)
    assert raw_results == expected and supervised_results == expected, (
        "supervised map must return exactly the raw map's results"
    )
    overhead = min(supervised_walls) / min(raw_walls) - 1.0

    return {
        "benchmark": "pr5-parallel-and-pruning",
        "search": {
            "vcpu_grid": list(SEARCH_VCPUS),
            "num_candidates": exhaustive.num_evaluated,
            "best_config": pruned.best.config.label(),
            "best_cost_dollars": round(pruned.best.cost_dollars, 4),
            "exhaustive_wall_seconds": round(min(exhaustive_walls), 4),
            "pruned_wall_seconds": round(min(pruned_walls), 4),
            "pruned_evaluated": pruned.num_evaluated,
            "pruned_skipped": pruned.num_pruned,
            "prune_speedup": round(
                min(exhaustive_walls) / min(pruned_walls), 2
            ),
        },
        "grid": {
            "num_slaves": SWEEP_SLAVES,
            "core_counts": list(PARALLEL_GRID_CORES),
            "workers": PARALLEL_WORKERS,
            "usable_cpus": available_cpus(),
            "serial_wall_seconds": round(serial_wall, 4),
            "parallel_wall_seconds": round(parallel_wall, 4),
            "parallel_speedup": round(serial_wall / parallel_wall, 2),
            "warm_wall_seconds": round(warm_wall, 4),
            "records_bit_identical": True,
        },
        "supervision": {
            "num_items": SUPERVISION_ITEMS,
            "workers": PARALLEL_WORKERS,
            "raw_wall_seconds": round(min(raw_walls), 4),
            "supervised_wall_seconds": round(min(supervised_walls), 4),
            "overhead_fraction": round(overhead, 4),
            "results_identical": True,
        },
    }


def guard_parallel(metrics: dict) -> list[str]:
    failures = []
    search, grid = metrics["search"], metrics["grid"]
    # Pruning must keep cutting most of the grid (the array kernel made
    # wall time a wash — the win is skipped model evaluations);
    # parallelism must pay for itself wherever two workers can actually
    # run at once.
    if search["pruned_evaluated"] > (
        search["num_candidates"] * MAX_PRUNE_EVAL_FRACTION
    ):
        failures.append(
            f"parallel: pruned search evaluated {search['pruned_evaluated']}"
            f" of {search['num_candidates']} candidates — the bound must"
            f" discard at least {1 - MAX_PRUNE_EVAL_FRACTION:.0%} of the grid"
        )
    if search["pruned_skipped"] == 0:
        failures.append("parallel: the pruning bound discarded no candidates")
    if (
        grid["usable_cpus"] >= 2
        and grid["parallel_speedup"] < MIN_PARALLEL_SPEEDUP
    ):
        failures.append(
            f"parallel: {grid['workers']}-worker grid speedup"
            f" {grid['parallel_speedup']}x is below the required"
            f" {MIN_PARALLEL_SPEEDUP}x on {grid['usable_cpus']} CPUs"
        )
    # Like the speedup floor, the overhead ceiling only means something
    # where two workers genuinely run at once: on a one-CPU host both
    # sides of the comparison serialize onto the same core and the
    # ratio measures scheduler noise, not supervisor bookkeeping.
    supervision = metrics["supervision"]
    if (
        grid["usable_cpus"] >= 2
        and supervision["overhead_fraction"] > MAX_SUPERVISION_OVERHEAD
    ):
        failures.append(
            f"parallel: clean-path supervision overhead"
            f" {supervision['overhead_fraction']:.1%} exceeds the"
            f" {MAX_SUPERVISION_OVERHEAD:.0%} ceiling over a raw map"
        )
    return failures


register_section(BenchmarkSection(
    name="parallel",
    title="bound-pruned search + two-worker process-parallel grid (PR 5)",
    snapshot_key="parallel",
    run=run_parallel,
    guards=guard_parallel,
    gates=(
        MetricGate("search.best_config", "exact", fingerprint_scoped=False),
        MetricGate("search.best_cost_dollars", "exact", rel_tolerance=1e-6,
                   fingerprint_scoped=False),
        MetricGate("search.pruned_evaluated", "exact",
                   fingerprint_scoped=False),
        MetricGate("search.pruned_wall_seconds", "lower", **_WALL_BAND),
        MetricGate("grid.warm_wall_seconds", "lower", **_WALL_BAND),
        MetricGate("supervision.supervised_wall_seconds", "lower",
                   **_WALL_BAND),
    ),
    slow=True,
))


# -- vectorized: the PR-6 array kernel ----------------------------------------


def run_vectorized(rounds: int) -> dict:
    """Array-kernel throughput on a tiled Fig. 13-15 grid.

    Scores the optimizer's full (vCPU x disk kind x size x size) grid —
    tiled :data:`VECTOR_TILE_REPS` times so each timing covers tens of
    thousands of candidates — per backend, against the scalar
    per-configuration path on the untiled grid.  Before timing, the
    batch results are equality-checked (``==`` on floats) against the
    scalar model, so the recorded rates always describe a kernel that
    is still exact.
    """
    from repro.core import Predictor, Profiler
    from repro.model.arrays import (
        CandidateBatch,
        Eq1BatchEvaluator,
        backend_name,
    )
    from repro.workloads import make_gatk4_workload

    workload = make_gatk4_workload()
    report = Profiler(workload, nodes=3).profile()
    optimizer = _paper_optimizer(Predictor(report))
    configs = optimizer._grid_candidates(
        (4, 8, 16, 32), ("pd-standard", "pd-ssd"),
        VECTOR_SIZES_GB, VECTOR_SIZES_GB,
    )
    grid = CandidateBatch.from_configs(configs)
    evaluator = Eq1BatchEvaluator(report)

    # Scalar reference: the per-configuration path the kernel replaced.
    start = time.perf_counter()
    scalar = [optimizer._predict_fresh(config) for config in configs]
    scalar_wall = time.perf_counter() - start
    scalar_rate = len(configs) / scalar_wall

    # Exactness gate on the untiled grid (both available backends).
    backends = ["python"] + (["numpy"] if backend_name() == "numpy" else [])
    for backend in backends:
        scores = evaluator.score(grid, backend=backend)
        assert [float(r) for r in scores.runtime_seconds] == [
            p.t_app for p in scalar
        ], f"{backend} kernel runtimes diverged from the scalar model"
        assert [float(c) for c in scores.cost_dollars] == [
            config.cost_for_runtime(p.t_app)
            for config, p in zip(configs, scalar)
        ], f"{backend} kernel costs diverged from the scalar model"

    tiled = CandidateBatch(
        nodes=grid.nodes * VECTOR_TILE_REPS,
        cores=grid.cores * VECTOR_TILE_REPS,
        hdfs_kinds=grid.hdfs_kinds * VECTOR_TILE_REPS,
        hdfs_sizes_gb=grid.hdfs_sizes_gb * VECTOR_TILE_REPS,
        local_kinds=grid.local_kinds * VECTOR_TILE_REPS,
        local_sizes_gb=grid.local_sizes_gb * VECTOR_TILE_REPS,
        vcpus=grid.vcpus * VECTOR_TILE_REPS,
    )
    rates = {}
    for backend in backends:
        walls = []
        for _ in range(max(1, rounds)):
            start = time.perf_counter()
            evaluator.score(tiled, want_bottlenecks=False, backend=backend)
            walls.append(time.perf_counter() - start)
        rates[backend] = len(tiled) / min(walls)

    fastest = max(rates.values())
    return {
        "benchmark": "pr6-array-kernel",
        "grid_candidates": len(configs),
        "tiled_candidates": len(tiled),
        "default_backend": backend_name(),
        "python_cand_per_s": round(rates["python"]),
        "numpy_cand_per_s": (
            round(rates["numpy"]) if "numpy" in rates else None
        ),
        "scalar_cand_per_s": round(scalar_rate),
        "speedup_vs_scalar": round(fastest / scalar_rate, 1),
        "batch_matches_scalar": True,
    }


def guard_vectorized(metrics: dict) -> list[str]:
    failures = []
    if metrics["python_cand_per_s"] < MIN_PYTHON_CAND_PER_S:
        failures.append(
            f"vectorized: pure-Python kernel at {metrics['python_cand_per_s']}"
            f" cand/s is below the required {MIN_PYTHON_CAND_PER_S:.0e}"
        )
    if metrics["numpy_cand_per_s"] is not None:
        if metrics["numpy_cand_per_s"] < MIN_NUMPY_CAND_PER_S:
            failures.append(
                f"vectorized: numpy kernel at {metrics['numpy_cand_per_s']}"
                f" cand/s is below the required {MIN_NUMPY_CAND_PER_S:.0e}"
            )
        if metrics["speedup_vs_scalar"] < MIN_VECTOR_SPEEDUP_VS_SCALAR:
            failures.append(
                f"vectorized: {metrics['speedup_vs_scalar']}x over the scalar"
                f" path is below the required"
                f" {MIN_VECTOR_SPEEDUP_VS_SCALAR:.0f}x"
            )
    return failures


register_section(BenchmarkSection(
    name="vectorized",
    title="array-kernel throughput, both backends, exactness-gated (PR 6)",
    snapshot_key="vectorized",
    run=run_vectorized,
    guards=guard_vectorized,
    gates=(
        MetricGate("python_cand_per_s", "higher", **_WALL_BAND),
        MetricGate("numpy_cand_per_s", "higher", **_WALL_BAND),
    ),
))


# -- multitenant: two jobs sharing one cluster (PR 8) -------------------------

#: The co-location scenario: LR and SVM on the paper cluster with both
#: disks spinning (2HDD placement maximizes I/O contention), SVM
#: arriving mid-run under fair scheduling.
MIX_SLAVES = NUM_SLAVES
MIX_CORES = CORES_PER_NODE
MIX_ARRIVAL_SECONDS = 30.0

#: The mix must show *real* contention: the most-slowed job's runtime
#: must exceed its solo baseline by at least this factor.  Both jobs
#: must also never run faster mixed than solo, within the engine's
#: float-reordering tolerance (see repro.invariants.INTERFERENCE_REL_TOL).
MIN_MIX_SLOWDOWN = 1.05


def run_multitenant(rounds: int) -> dict:
    """A two-job mix through ``Experiment.measure_mix``, cold per round.

    Correctness asserts on every run: the K = 1 mix is bit-identical to
    the plain solo measurement, per-job byte conservation holds, and no
    job beats its solo baseline.  The recorded metrics are the mix
    makespan and per-job slowdowns (deterministic, exactness-gated) plus
    the cold wall time (band-gated).
    """
    from repro.invariants import (
        check_interference_dominance,
        check_mix_conservation,
    )
    from repro.pipeline import ClusterPlatform, Experiment
    from repro.schedule import MixJob
    from repro.workloads import (
        make_logistic_regression_workload,
        make_svm_workload,
    )

    lr = make_logistic_regression_workload(num_slaves=MIX_SLAVES)
    svm = make_svm_workload()
    platform = ClusterPlatform(hdfs_kind="hdd", local_kind="hdd")
    jobs = [MixJob(spec=lr), MixJob(spec=svm, arrival=MIX_ARRIVAL_SECONDS)]

    walls = []
    mix = None
    for _ in range(max(1, rounds)):
        experiment = Experiment(lr, platform)  # fresh cache: a cold mix
        start = time.perf_counter()
        mix = experiment.measure_mix(
            jobs, policy="fair", nodes=MIX_SLAVES, cores_per_node=MIX_CORES
        )
        walls.append(time.perf_counter() - start)

    # Solo baselines and the K = 1 delegation identity, one shared cache.
    experiment = Experiment(lr, platform)
    solos = {
        spec.name: Experiment(spec, platform, cache=experiment.cache).measure(
            MIX_SLAVES, MIX_CORES
        )
        for spec in (lr, svm)
    }
    solo_mix = experiment.measure_mix(
        [MixJob(spec=lr)], nodes=MIX_SLAVES, cores_per_node=MIX_CORES
    )
    assert solo_mix.jobs[0].measurement == solos[lr.name], (
        "K=1 mix must be bit-identical to the solo measurement"
    )
    violations = check_mix_conservation(jobs, mix)
    violations += check_interference_dominance(mix, solos)
    assert not violations, "; ".join(str(v) for v in violations)

    slowdowns = {
        timeline.name: round(
            timeline.measurement.total_seconds
            / solos[timeline.name].total_seconds,
            6,
        )
        for timeline in mix.jobs
    }
    return {
        "benchmark": "multitenant-mix",
        "num_slaves": MIX_SLAVES,
        "cores_per_node": MIX_CORES,
        "policy": mix.policy,
        "arrival_seconds": MIX_ARRIVAL_SECONDS,
        "jobs": [timeline.name for timeline in mix.jobs],
        "mix_makespan_seconds": mix.makespan,
        "job_runtime_seconds": {
            timeline.name: timeline.measurement.total_seconds
            for timeline in mix.jobs
        },
        "solo_seconds": {
            name: measurement.total_seconds
            for name, measurement in solos.items()
        },
        "slowdowns": slowdowns,
        "interference_slowdown": max(slowdowns.values()),
        "wall_seconds": round(min(walls), 4),
    }


def guard_multitenant(metrics: dict) -> list[str]:
    from repro.invariants import INTERFERENCE_REL_TOL

    failures = []
    if metrics["interference_slowdown"] < MIN_MIX_SLOWDOWN:
        failures.append(
            f"multitenant: peak slowdown {metrics['interference_slowdown']}x"
            f" is below the required {MIN_MIX_SLOWDOWN}x — the mix no longer"
            " exhibits contention"
        )
    for name, slowdown in metrics["slowdowns"].items():
        if slowdown < 1.0 - INTERFERENCE_REL_TOL:
            failures.append(
                f"multitenant: {name} runs {slowdown}x its solo time —"
                " faster with neighbors than alone"
            )
    return failures


register_section(BenchmarkSection(
    name="multitenant",
    title="two-job LR+SVM mix with cross-job disk contention (PR 8)",
    snapshot_key="multitenant",
    run=run_multitenant,
    guards=guard_multitenant,
    gates=(
        MetricGate("mix_makespan_seconds", "exact", fingerprint_scoped=False),
        MetricGate("interference_slowdown", "exact", rel_tolerance=1e-6,
                   fingerprint_scoped=False),
        MetricGate("wall_seconds", "lower", **_WALL_BAND),
    ),
))


# -- section: service -------------------------------------------------------

#: The service load mix: ``SERVICE_DISTINCT`` unique predict queries
#: plus ``SERVICE_OPT_DISTINCT`` unique grid-search (optimize) queries,
#: each arriving ``SERVICE_DUPLICATES`` / ``SERVICE_OPT_DUPLICATES``
#: times, interleaved, under ``SERVICE_CONCURRENCY`` in flight.
SERVICE_DISTINCT = 24
SERVICE_DUPLICATES = 5
SERVICE_OPT_DISTINCT = 4
SERVICE_OPT_DUPLICATES = 10
SERVICE_CONCURRENCY = 16

#: The service must beat one-query-one-evaluation serving by at least
#: this factor on the same mix (the PR-10 acceptance threshold).
MIN_SERVICE_SPEEDUP = 5.0


def run_service(rounds: int) -> dict:
    """The what-if query engine vs. naive one-query-one-evaluation.

    The same deterministic query mix — cheap predict queries plus
    repeated grid-search (optimize) queries, the dashboard pattern the
    service exists for — is answered two ways: by a warmed
    :class:`~repro.service.engine.QueryEngine` (single-flight
    coalescing, LRU, micro-batched kernel calls) under concurrency, and
    by a naive loop making one scalar
    :meth:`~repro.cloud.optimizer.CostOptimizer.evaluate` or
    :meth:`~repro.cloud.optimizer.CostOptimizer.grid_search` call per
    query.  Correctness asserts on every run: the engine's answers are
    bit-identical to the direct library calls', and at least one
    micro-batch actually flushed (the mix cannot have been served
    query-at-a-time).  Profiling happens before timing on both sides
    (one shared cache), so the comparison is pure serving cost.
    """
    import asyncio

    from repro.cloud.optimizer import CostOptimizer
    from repro.core.predictor import Predictor
    from repro.pipeline import ResultCache, SpecSource
    from repro.service import QueryEngine
    from repro.service.loadgen import (
        build_queries,
        naive_baseline,
        run_against_engine,
    )
    from repro.workloads import make_svm_workload

    spec = make_svm_workload()
    queries = build_queries(
        "svm",
        distinct=SERVICE_DISTINCT,
        duplicates=SERVICE_DUPLICATES,
        optimize_distinct=SERVICE_OPT_DISTINCT,
        optimize_duplicates=SERVICE_OPT_DUPLICATES,
    )
    num_predict = sum(1 for q in queries if q["kind"] == "predict")
    num_optimize = len(queries) - num_predict

    # One cache shares the profiled report across rounds and with the
    # naive side, so neither side ever times profiling.
    cache = ResultCache()

    async def serve_once() -> dict:
        engine = QueryEngine({"svm": spec}, cache=cache)
        async with engine:
            await engine.warm(["svm"])  # profiling off the timed path
            return await run_against_engine(
                engine, queries, concurrency=SERVICE_CONCURRENCY
            )

    best = None
    for _ in range(max(1, rounds)):
        outcome = asyncio.run(serve_once())
        if best is None or outcome["wall_seconds"] < best["wall_seconds"]:
            best = outcome

    # The naive reference: the same floors and worker count the engine
    # applies, one direct library call per query.
    resolved = SpecSource(spec, profile_nodes=3).resolve(cache)
    min_hdfs, min_local = CostOptimizer.capacity_requirements(
        spec, num_workers=10
    )
    optimizer = CostOptimizer(
        Predictor(resolved.report),
        num_workers=10,
        min_hdfs_gb=min_hdfs,
        min_local_gb=min_local,
    )
    naive = naive_baseline(optimizer, queries)

    # Bit-identity: every service answer equals the direct call's.
    for payload, served, reference in zip(queries, best["results"], naive["results"]):
        if payload["kind"] == "predict":
            assert served["runtime_seconds"] == reference.runtime_seconds, (
                "service runtime diverged from the scalar model:"
                f" {served['runtime_seconds']} != {reference.runtime_seconds}"
            )
            assert served["cost_dollars"] == reference.cost_dollars, (
                "service cost diverged from the scalar model:"
                f" {served['cost_dollars']} != {reference.cost_dollars}"
            )
        else:
            assert (
                served["best"]["cost_dollars"] == reference.best.cost_dollars
                and served["best"]["runtime_seconds"]
                == reference.best.runtime_seconds
                and served["num_evaluated"] == reference.num_evaluated
                and served["num_pruned"] == reference.num_pruned
            ), (
                "service grid search diverged from CostOptimizer"
                f".grid_search: {served['best']} != {reference.best!r}"
            )

    stats = best["engine"]
    total = len(queries)
    wall = best["wall_seconds"]
    return {
        "benchmark": "what-if-service",
        "workload": "svm",
        "num_queries": total,
        "num_predict": num_predict,
        "num_optimize": num_optimize,
        "distinct": SERVICE_DISTINCT + SERVICE_OPT_DISTINCT,
        "concurrency": SERVICE_CONCURRENCY,
        "wall_seconds": round(wall, 4),
        "qps": round(total / wall, 1) if wall > 0 else 0.0,
        "p50_ms": round(best["p50_ms"], 4),
        "p99_ms": round(best["p99_ms"], 4),
        "naive_wall_seconds": round(naive["wall_seconds"], 4),
        "speedup_vs_naive": round(naive["wall_seconds"] / wall, 2),
        "coalesced": stats["coalesced"],
        "lru_hits": stats["lru"]["hits"],
        "lru_hit_rate": round(stats["lru"]["hits"] / total, 4),
        "batches_flushed": stats["batches"]["flushed"],
        "max_batch_width": stats["batches"]["max_size"],
        "reference_runtime_seconds": naive["results"][0].runtime_seconds,
        "reference_cost_dollars": naive["results"][0].cost_dollars,
    }


def guard_service(metrics: dict) -> list[str]:
    failures = []
    if metrics["speedup_vs_naive"] < MIN_SERVICE_SPEEDUP:
        failures.append(
            f"service: {metrics['speedup_vs_naive']}x over the naive"
            f" baseline is below the required {MIN_SERVICE_SPEEDUP}x —"
            " coalescing/batching no longer pays"
        )
    if metrics["batches_flushed"] < 1:
        failures.append(
            "service: no micro-batch flushed — queries were served"
            " one-at-a-time"
        )
    if metrics["coalesced"] + metrics["lru_hits"] == 0:
        failures.append(
            "service: duplicate queries hit neither the single-flight"
            " table nor the LRU"
        )
    return failures


register_section(BenchmarkSection(
    name="service",
    title="what-if query engine: coalesced + batched serving (PR 10)",
    snapshot_key="service",
    run=run_service,
    guards=guard_service,
    gates=(
        MetricGate("reference_runtime_seconds", "exact",
                   fingerprint_scoped=False),
        MetricGate("reference_cost_dollars", "exact",
                   fingerprint_scoped=False),
        MetricGate("speedup_vs_naive", "higher", **_WALL_BAND),
        MetricGate("qps", "higher", **_WALL_BAND),
        MetricGate("wall_seconds", "lower", **_WALL_BAND),
        MetricGate("p50_ms", "lower", **_WALL_BAND),
        MetricGate("p99_ms", "lower", **_WALL_BAND),
    ),
))
