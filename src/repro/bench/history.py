"""Append-only benchmark trajectory store and the atomic snapshot view.

``BENCH_history.jsonl`` holds one JSON record per bench run — the
trajectory the old overwritten snapshot could never show.  Each record
carries the git SHA, a UTC timestamp, the host fingerprint (CPU count,
python version, numpy presence, pinned arrays backend) and every
section's metrics.  The file is append-only so the perf story across
PRs is a curve, not a point; :meth:`BenchHistory.rotate` trims it when
asked, atomically.

Reading mirrors the :class:`~repro.pipeline.cache.ResultCache`
checkpoint semantics: a corrupt line (truncated append, hand-editing)
is skipped with a warning, never fatal — history is an accelerator for
regression detection, and the worst acceptable outcome of damage is a
thinner window.

``BENCH_simulator.json`` stays as the latest-snapshot compatibility
view; :func:`write_snapshot` writes it atomically (temp file +
``os.replace``, like the cache checkpoints) so an interrupted bench run
can never leave a truncated snapshot behind.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import warnings
from datetime import datetime, timezone
from pathlib import Path

#: History record format marker.
HISTORY_FORMAT_VERSION = 1


def host_fingerprint() -> dict:
    """The environment facts that make wall-clock numbers comparable.

    CPU count uses the affinity-aware
    :func:`repro.parallel.available_cpus`, so a container restricted to
    one core fingerprints as one core — exactly the partition that keeps
    1-CPU CI runs from gating against multi-core dev-host history.
    """
    from repro.model.arrays import backend_name
    from repro.parallel import available_cpus

    try:
        import numpy

        numpy_version: str | None = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "cpus": available_cpus(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "arrays_backend": backend_name(),
        "backend_env": os.environ.get("REPRO_ARRAYS_BACKEND"),
    }


def fingerprint_key(fingerprint: dict) -> str:
    """The partition key history comparisons are scoped by.

    Patch-level python releases don't move performance enough to split
    the history, so only ``major.minor`` participates.
    """
    major_minor = ".".join(str(fingerprint.get("python", "")).split(".")[:2])
    numpy_part = "numpy" if fingerprint.get("numpy") else "purepy"
    return (
        f"cpu{fingerprint.get('cpus')}-py{major_minor}-{numpy_part}"
        f"-{fingerprint.get('arrays_backend')}"
    )


def git_sha(cwd: str | Path | None = None) -> str | None:
    """The current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=str(cwd) if cwd is not None else None,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def make_record(
    sections: dict[str, dict],
    rounds: int,
    fingerprint: dict | None = None,
    sha: str | None = None,
) -> dict:
    """One history record for a bench run over ``sections`` metrics."""
    fingerprint = fingerprint if fingerprint is not None else host_fingerprint()
    return {
        "format_version": HISTORY_FORMAT_VERSION,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "git_sha": sha if sha is not None else git_sha(),
        "rounds": rounds,
        "argv": list(sys.argv[1:]),
        "fingerprint": fingerprint,
        "fingerprint_key": fingerprint_key(fingerprint),
        "sections": sections,
    }


class BenchHistory:
    """The ``BENCH_history.jsonl`` append-only store."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: dict) -> None:
        """Append exactly one record as one JSON line."""
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def load(self) -> list[dict]:
        """Every parseable record, oldest first; corrupt lines skip+warn."""
        if not self.path.exists():
            return []
        records: list[dict] = []
        with open(self.path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    warnings.warn(
                        f"bench history {self.path}: skipping corrupt line"
                        f" {number} ({exc})",
                        stacklevel=2,
                    )
                    continue
                if not isinstance(record, dict):
                    warnings.warn(
                        f"bench history {self.path}: skipping non-record line"
                        f" {number}",
                        stacklevel=2,
                    )
                    continue
                records.append(record)
        return records

    def rotate(self, max_records: int) -> int:
        """Keep only the newest ``max_records``; returns how many dropped.

        The rewrite is atomic (temp file + ``os.replace``) so a crash
        mid-rotation leaves the previous file intact.
        """
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        records = self.load()
        if len(records) <= max_records:
            return 0
        kept = records[-max_records:]
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in kept:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        return len(records) - len(kept)

    def __len__(self) -> int:
        return len(self.load())


def write_snapshot(path: str | Path, snapshot: dict) -> Path:
    """Atomically write the ``BENCH_simulator.json`` latest view.

    Temp file in the same directory then ``os.replace`` — the same
    crash-safety contract as :meth:`repro.pipeline.cache.ResultCache.save`:
    an interrupted bench run leaves the previous snapshot, never a
    truncated one.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(snapshot, indent=2) + "\n")
    os.replace(tmp, target)
    return target
