"""First-class benchmark subsystem: sections, history, regression gates.

Benchmarking used to live in one 745-line ``benchmarks/perf_simulator.py``
monolith that overwrote a single ``BENCH_simulator.json`` snapshot; the
performance trajectory (the 9.7x engine rewrite, the 7x bound-pruned
search, the ~200x array kernel) was invisible, and regressions were only
caught by hand-tuned per-section guards buried in ``check()``.  This
package promotes all of that to a subsystem:

- :mod:`repro.bench.registry` — the :class:`BenchmarkSection` protocol
  and the plugin registry the CLI and the compat shim both consume;
- :mod:`repro.bench.sections` — the monolith's scenarios (engine, cache,
  search, resilience, parallel, vectorized) decomposed into registered
  sections, with every legacy guard threshold preserved as a
  section-level floor;
- :mod:`repro.bench.history` — the append-only ``BENCH_history.jsonl``
  store (one record per run: git SHA, timestamp, host fingerprint,
  per-section metrics) plus the atomic latest-snapshot writer that keeps
  ``BENCH_simulator.json`` as the compatibility view;
- :mod:`repro.bench.gates` — the statistical regression detector:
  median-of-last-K history comparison inside a noise band, partitioned
  by host fingerprint, with structured pass/warn/fail verdicts;
- :mod:`repro.bench.runner` — orchestration behind
  ``python -m repro bench`` (and ``--check`` gate-only mode);
- :mod:`repro.bench.legacy` — the old ``perf_simulator.py`` entry point
  (``collect``/``check``/``main``) reimplemented on the registry, so the
  monolith shrinks to a shim without changing CI semantics.

See docs/BENCHMARKS.md for the history schema and how gates decide.
"""

from __future__ import annotations

from repro.bench.gates import GatePolicy, MetricGate, Verdict, evaluate_section
from repro.bench.history import (
    BenchHistory,
    fingerprint_key,
    host_fingerprint,
    write_snapshot,
)
from repro.bench.report import render_history_report
from repro.bench.registry import (
    BenchmarkSection,
    all_sections,
    register_section,
    resolve_sections,
    section_names,
)
from repro.bench.runner import BenchReport, compose_snapshot, run_bench

# Importing the module registers the built-in sections.
import repro.bench.sections  # noqa: E402,F401  (import for side effect)

__all__ = [
    "BenchHistory",
    "BenchReport",
    "BenchmarkSection",
    "GatePolicy",
    "MetricGate",
    "Verdict",
    "all_sections",
    "compose_snapshot",
    "evaluate_section",
    "fingerprint_key",
    "host_fingerprint",
    "register_section",
    "render_history_report",
    "resolve_sections",
    "run_bench",
    "section_names",
    "write_snapshot",
]
