"""The :class:`BenchmarkSection` protocol and its plugin registry.

A *section* is one self-contained benchmark scenario: it knows how to run
itself (``run(rounds) -> metrics``), where its metrics live in the legacy
``BENCH_simulator.json`` snapshot (``snapshot_key``), which hard floors
must hold on every run regardless of history (``guards``), and which
metrics the statistical regression detector tracks against the rolling
history (``gates``).  Sections register themselves at import time; the
CLI, the runner, and the legacy ``perf_simulator.py`` shim all consume
the same registry, so adding a benchmark is one decorated declaration —
no CLI or CI changes needed.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.bench.gates import MetricGate
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BenchmarkSection:
    """One registered benchmark scenario.

    Parameters
    ----------
    name:
        Registry name (``--sections`` selector), e.g. ``"engine"``.
    title:
        One-line human description for ``bench --list``.
    snapshot_key:
        Where the metrics sit in the ``BENCH_simulator.json`` view:
        a top-level key (``"core_sweep"``) or ``None`` for the engine
        section, whose metrics historically *are* the snapshot's top
        level (merged in place for compatibility).
    run:
        ``run(rounds) -> dict`` producing the metrics.  Correctness
        assertions (bit-identity, exactness vs the scalar model) live
        inside ``run`` and fire on every invocation.
    guards:
        ``guards(metrics) -> list[str]``: the section's absolute floors
        — the legacy monolith's fresh-run guard thresholds.  They hold
        on every run, history or not, and double as the fallback when
        the rolling history is too thin for statistical gating.
    gates:
        Metrics the regression detector compares against the rolling
        history (see :mod:`repro.bench.gates`).
    slow:
        Sections that dominate wall time (cold sweeps, process pools);
        ``--skip-slow`` drops them so the CI gate stays in budget.
    """

    name: str
    title: str
    snapshot_key: str | None
    run: Callable[[int], dict]
    guards: Callable[[dict], list[str]] = field(default=lambda metrics: [])
    gates: tuple[MetricGate, ...] = ()
    slow: bool = False


_REGISTRY: dict[str, BenchmarkSection] = {}


def register_section(section: BenchmarkSection) -> BenchmarkSection:
    """Add a section to the registry; name collisions are config errors."""
    if section.name in _REGISTRY:
        raise ConfigurationError(
            f"benchmark section {section.name!r} is already registered"
        )
    _REGISTRY[section.name] = section
    return section


def all_sections() -> list[BenchmarkSection]:
    """Every registered section, in registration order."""
    return list(_REGISTRY.values())


def section_names() -> list[str]:
    return list(_REGISTRY)


def resolve_sections(
    names: Sequence[str] | None = None, skip_slow: bool = False
) -> list[BenchmarkSection]:
    """Select sections to run, preserving registration order.

    ``names=None`` selects everything; ``skip_slow`` then drops the
    sections flagged slow.  Explicitly named sections are never
    slow-filtered — asking for one by name means you want it.
    """
    if names is None:
        sections = all_sections()
        if skip_slow:
            sections = [section for section in sections if not section.slow]
        return sections
    unknown = [name for name in names if name not in _REGISTRY]
    if unknown:
        raise ConfigurationError(
            f"unknown benchmark section(s) {', '.join(sorted(unknown))};"
            f" registered: {', '.join(_REGISTRY)}"
        )
    # Preserve registry order (and drop duplicates) rather than CLI order,
    # so records and snapshots are stable however the request was spelled.
    wanted = set(names)
    return [section for section in all_sections() if section.name in wanted]
