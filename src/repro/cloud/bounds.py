"""Admissible Eq.-1 runtime and cost lower bounds for search pruning.

A full candidate evaluation builds two bandwidth tables, a resource
registry, and a stage model per stage before evaluating Equation 1.
Most of that work is invariant across the optimizer's grid: the profiled
stages never change, and only ``(N, P, disk kind, disk size)`` vary.
:class:`RuntimeLowerBound` precomputes the per-stage constants once and
then bounds each candidate with a handful of float operations:

    t_app >= sum_stages max(t_scale, t_read_lb, t_write_lb)

where the ``t_scale`` term is *exact* (it does not depend on disks) and
each I/O limit term replaces every channel's effective bandwidth with
:func:`~repro.cloud.disks.bandwidth_upper_bound` — an over-estimate of
the bandwidth the real model would read from the built tables, so the
resulting ``D / (N * BW)`` terms under-estimate the model's.  Every
remaining operation mirrors :class:`~repro.core.stage_model.StageModel`
(same fill and delta constants, same ``max(0, .)`` clamps, channels
grouped per device role with unknown roles skipped), and all of these
transformations are monotone, so the bound can only drop below the true
Eq.-1 runtime — never above it.  Cost is monotone in runtime
(``Cost = hourly_rate * Time / 3600`` with a runtime-independent rate),
so a runtime lower bound yields a cost lower bound.

Admissibility is what makes branch-and-bound exact: a candidate is
discarded only when even its *optimistic* cost cannot beat the incumbent,
so :meth:`CostOptimizer.grid_search(prune=True)
<repro.cloud.optimizer.CostOptimizer.grid_search>` provably returns the
same ``best`` as exhaustive search (property-tested in
``tests/properties/test_parallel.py``; derivation in
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.cloud.disks import bandwidth_upper_bound
from repro.cloud.pricing import CloudConfiguration
from repro.core.profiler import ProfilingReport
from repro.model.arrays import CandidateBatch, LowerBoundBatch

#: Multiplicative safety margin on the bound.  The table's log-space
#: round-trip (``exp(log(bw))``) can land one ulp *above* the spec value
#: exactly at an anchor size; shaving a relative 1e-9 off the bound
#: absorbs that drift while costing essentially no pruning power.
_SAFETY = 1.0 - 1e-9

#: Device roles the optimizer provisions disks for.
_DISK_ROLES = ("hdfs", "local")


@dataclass(frozen=True)
class _ChannelTerm:
    """One non-empty channel's static half of ``D / (N * BW)``."""

    role: str
    total_bytes: float
    request_size: float
    is_write: bool


@dataclass(frozen=True)
class _StageTerms:
    """Per-stage constants of Equation 1, device-independent."""

    num_tasks: int
    t_avg: float
    gc_coeff: float
    delta_scale: float
    fill_seconds: float
    delta_read: float
    delta_write: float
    read_channels: tuple[_ChannelTerm, ...]
    write_channels: tuple[_ChannelTerm, ...]


class RuntimeLowerBound:
    """Per-candidate lower bound on the Eq.-1 job runtime (admissible).

    Built once per search from the profiling report; each
    :meth:`runtime_bound` call is pure arithmetic — no bandwidth tables,
    no registry, no stage models.
    """

    def __init__(self, report: ProfilingReport) -> None:
        stages = []
        for stage in report.stages:
            reads, writes = [], []
            for channel in stage.channels:
                # The model skips empty channels; channels on roles the
                # optimizer provisions no disk for are treated as
                # infinitely fast here (dropping a term only lowers the
                # bound, keeping it admissible).
                if channel.total_bytes == 0 or channel.role not in _DISK_ROLES:
                    continue
                term = _ChannelTerm(
                    role=channel.role,
                    total_bytes=channel.total_bytes,
                    request_size=channel.request_size,
                    is_write=channel.is_write,
                )
                (writes if channel.is_write else reads).append(term)
            stages.append(
                _StageTerms(
                    num_tasks=stage.num_tasks,
                    t_avg=stage.t_avg,
                    gc_coeff=stage.gc_coeff,
                    delta_scale=stage.delta_scale,
                    fill_seconds=stage.fill_seconds,
                    delta_read=stage.delta_read,
                    delta_write=stage.delta_write,
                    read_channels=tuple(reads),
                    write_channels=tuple(writes),
                )
            )
        self._stages = tuple(stages)
        self._batch_bound: LowerBoundBatch | None = None

    def runtime_bound(self, config: CloudConfiguration) -> float:
        """Seconds the job takes on ``config`` at the very least."""
        nodes = config.num_workers
        cores = config.cores_per_node
        disks = {
            "hdfs": (config.hdfs_disk_kind, config.hdfs_disk_gb),
            "local": (config.local_disk_kind, config.local_disk_gb),
        }
        total = 0.0
        for stage in self._stages:
            # Exact t_scale: same operation order and clamp as StageModel.
            per_task = stage.t_avg + stage.gc_coeff * cores
            t_scale = (
                stage.num_tasks / (nodes * cores) * per_task
                + stage.delta_scale
            )
            if t_scale < 0.0:
                t_scale = 0.0
            t_read = self._limit_bound(
                stage.read_channels, disks, nodes,
                stage.fill_seconds, stage.delta_read,
            )
            t_write = self._limit_bound(
                stage.write_channels, disks, nodes,
                stage.fill_seconds, stage.delta_write,
            )
            total += max(t_scale, t_read, t_write)
        return total * _SAFETY

    def cost_bound(self, config: CloudConfiguration) -> float:
        """Dollars the job costs on ``config`` at the very least."""
        return config.cost_for_runtime(self.runtime_bound(config))

    # -- vectorized block bounds ---------------------------------------------

    def _batch(self) -> LowerBoundBatch:
        if self._batch_bound is None:
            self._batch_bound = LowerBoundBatch(self._stages, safety=_SAFETY)
        return self._batch_bound

    def runtime_bounds(
        self, candidates: CandidateBatch | Sequence[CloudConfiguration]
    ) -> Sequence[float]:
        """Per-candidate :meth:`runtime_bound`, evaluated as array ops.

        Accepts a :class:`~repro.model.arrays.CandidateBatch` or a
        sequence of configurations.  The values are bitwise identical to
        the scalar method (the batch kernel replays the same float
        operations; see :mod:`repro.model.arrays`), so branch-and-bound
        pruning decisions do not depend on which entry point scored a
        block.
        """
        if not isinstance(candidates, CandidateBatch):
            candidates = CandidateBatch.from_configs(candidates)
        return self._batch().runtime_bounds(candidates)

    def cost_bounds(
        self, candidates: CandidateBatch | Sequence[CloudConfiguration]
    ) -> Sequence[float]:
        """Per-candidate :meth:`cost_bound`, evaluated as array ops."""
        if not isinstance(candidates, CandidateBatch):
            candidates = CandidateBatch.from_configs(candidates)
        return self._batch().cost_bounds(candidates)

    @staticmethod
    def _limit_bound(
        channels: tuple[_ChannelTerm, ...],
        disks: dict[str, tuple[str, float]],
        nodes: int,
        fill_seconds: float,
        delta: float,
    ) -> float:
        """Mirror of ``StageModel.t_read_limit``/``t_write_limit``.

        Per-role ``D / BW_ub`` sums, max across roles, then
        ``per_node / N + fill + delta`` with the model's clamps — except
        ``BW_ub >= BW_table``, so the result is <= the model's term.
        """
        per_role: dict[str, float] = {}
        for channel in channels:
            kind, size_gb = disks[channel.role]
            ceiling = bandwidth_upper_bound(
                kind, size_gb, channel.request_size, channel.is_write
            )
            per_role[channel.role] = (
                per_role.get(channel.role, 0.0)
                + channel.total_bytes / ceiling
            )
        if not per_role:
            return 0.0
        value = max(per_role.values()) / nodes + fill_seconds + delta
        return value if value > 0.0 else 0.0
