"""Google Cloud persistent-disk performance model.

Persistent disks are network-attached and virtualized: their performance
is set by *provisioned limits* that scale linearly with the disk's size up
to hard caps (the GCP "Storage Options" datasheet the paper cites).  For a
disk of ``S`` GB the effective bandwidth at request size ``rs`` is::

    BW(rs) = min(throughput_per_gb * S  (capped),
                 iops_per_gb * S (capped) * rs)

Small-request workloads (Spark shuffle read) hit the IOPS term; streaming
workloads hit the throughput term.  This reproduces Fig. 14's shape:
GATK4's runtime keeps dropping as the local pd-standard disk grows —
because shuffle-read IOPS grow with size — until the stage crosses into
its compute-bound regime (~2 TB), after which the curve is flat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bandwidth import EffectiveBandwidthTable
from repro.errors import ConfigurationError
from repro.storage.device import StorageDevice
from repro.units import GB, KB, MB

#: Request sizes anchored in every virtual-disk bandwidth table.
_ANCHOR_SIZES = (
    4 * KB,
    16 * KB,
    30 * KB,
    64 * KB,
    128 * KB,
    512 * KB,
    1 * MB,
    4 * MB,
    16 * MB,
    128 * MB,
    512 * MB,
)


@dataclass(frozen=True)
class PersistentDiskSpec:
    """Provisioned-performance rules for one disk type.

    Rates are per provisioned GB; caps are absolute.  Values follow the
    2017 GCP datasheet for ``pd-standard`` and ``pd-ssd`` attached to
    16-vCPU instances.
    """

    kind: str
    read_throughput_per_gb: float  # bytes/s per GB
    read_throughput_cap: float  # bytes/s
    write_throughput_per_gb: float
    write_throughput_cap: float
    read_iops_per_gb: float
    read_iops_cap: float
    write_iops_per_gb: float
    write_iops_cap: float

    def read_throughput_limit(self, size_gb: float) -> float:
        """Sustained read bytes/s for a disk of ``size_gb``."""
        return min(self.read_throughput_per_gb * size_gb, self.read_throughput_cap)

    def write_throughput_limit(self, size_gb: float) -> float:
        """Sustained write bytes/s for a disk of ``size_gb``."""
        return min(self.write_throughput_per_gb * size_gb, self.write_throughput_cap)

    def read_iops_limit(self, size_gb: float) -> float:
        """Read operations/s for a disk of ``size_gb``."""
        return min(self.read_iops_per_gb * size_gb, self.read_iops_cap)

    def write_iops_limit(self, size_gb: float) -> float:
        """Write operations/s for a disk of ``size_gb``."""
        return min(self.write_iops_per_gb * size_gb, self.write_iops_cap)

    def read_bandwidth(self, size_gb: float, request_size: float) -> float:
        """Effective read bytes/s at one request size."""
        return min(
            self.read_throughput_limit(size_gb),
            self.read_iops_limit(size_gb) * request_size,
        )

    def write_bandwidth(self, size_gb: float, request_size: float) -> float:
        """Effective write bytes/s at one request size."""
        return min(
            self.write_throughput_limit(size_gb),
            self.write_iops_limit(size_gb) * request_size,
        )


#: Magnetic persistent disk ("Standard provisioned space" in Table V).
PD_STANDARD = PersistentDiskSpec(
    kind="pd-standard",
    read_throughput_per_gb=0.12 * MB,
    read_throughput_cap=180 * MB,
    write_throughput_per_gb=0.12 * MB,
    write_throughput_cap=120 * MB,
    read_iops_per_gb=0.75,
    read_iops_cap=3000.0,
    write_iops_per_gb=1.5,
    write_iops_cap=15000.0,
)

#: SSD persistent disk ("SSD provisioned space" in Table V).
PD_SSD = PersistentDiskSpec(
    kind="pd-ssd",
    read_throughput_per_gb=0.48 * MB,
    read_throughput_cap=400 * MB,
    write_throughput_per_gb=0.48 * MB,
    write_throughput_cap=400 * MB,
    read_iops_per_gb=30.0,
    read_iops_cap=25000.0,
    write_iops_per_gb=30.0,
    write_iops_cap=25000.0,
)

SPEC_BY_KIND = {PD_STANDARD.kind: PD_STANDARD, PD_SSD.kind: PD_SSD}


def bandwidth_upper_bound(
    kind: str, size_gb: float, request_size: float, is_write: bool = False
) -> float:
    """Cheap upper bound on a built disk's effective bandwidth.

    :func:`make_persistent_disk` anchors the exact spec values
    ``min(T, I * rs)`` at :data:`_ANCHOR_SIZES` and interpolates
    *linearly in log-log space* between them.  ``log(min(T, I * e^x))``
    is the minimum of two affine functions of ``x`` — concave — so every
    interpolation chord lies on or below the spec curve: within the
    anchored range the table can only under-shoot the closed formula.
    Below the smallest anchor the table clamps *flat* (it may exceed the
    formula there), which clamping the request size up to the smallest
    anchor covers; above the largest anchor the formula is
    non-decreasing in ``rs`` while the table stays flat, so no clamp is
    needed.  Hence for every request size::

        table.bandwidth(rs) <= bandwidth_upper_bound(kind, S, rs)

    which is what makes the optimizer's Eq.-1 runtime lower bound
    (:mod:`repro.cloud.bounds`) admissible without building any table.
    """
    try:
        spec = SPEC_BY_KIND[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown persistent disk kind {kind!r};"
            f" expected one of {sorted(SPEC_BY_KIND)}"
        ) from None
    clamped = max(request_size, _ANCHOR_SIZES[0])
    if is_write:
        return spec.write_bandwidth(size_gb, clamped)
    return spec.read_bandwidth(size_gb, clamped)


def make_persistent_disk(
    kind: str, size_gb: float, name: str | None = None
) -> StorageDevice:
    """Build a virtual-disk :class:`~repro.storage.device.StorageDevice`.

    ``kind`` is ``"pd-standard"`` or ``"pd-ssd"``; ``size_gb`` is the
    provisioned size (which also determines the monthly price).
    """
    try:
        spec = SPEC_BY_KIND[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown persistent disk kind {kind!r};"
            f" expected one of {sorted(SPEC_BY_KIND)}"
        ) from None
    if size_gb <= 0:
        raise ConfigurationError(f"disk size must be positive, got {size_gb} GB")
    label = name or f"{kind}-{size_gb:.0f}GB"
    read_table = EffectiveBandwidthTable(
        [(rs, spec.read_bandwidth(size_gb, rs)) for rs in _ANCHOR_SIZES],
        name=f"{label}-read",
    )
    write_table = EffectiveBandwidthTable(
        [(rs, spec.write_bandwidth(size_gb, rs)) for rs in _ANCHOR_SIZES],
        name=f"{label}-write",
    )
    return StorageDevice(
        name=label,
        kind=kind,
        capacity_bytes=size_gb * GB,
        read_table=read_table,
        write_table=write_table,
    )
