"""Configuration-space search for minimum cost (Section VI-1).

The optimizer composes three pieces:

1. the Doppio :class:`~repro.core.predictor.Predictor` (built from four
   profiling sample runs) supplies ``Time`` for any candidate
   configuration;
2. :mod:`repro.cloud.pricing` supplies ``Cost = f(config, Time)``;
3. a search strategy walks the discrete space
   ``(vCPUs, DiskTypes, DiskSize_HDFS, DiskSize_local)``.

Two strategies are provided: exhaustive ``grid_search`` (the space is only
a few thousand points) and ``coordinate_descent``, the discrete analogue
of the gradient-descent procedure the paper describes; both honour
capacity feasibility (disks must actually hold the job's data).

Candidates are scored through the array-native Eq.-1 kernel
(:mod:`repro.model.arrays`): the search builds one
:class:`~repro.model.arrays.CandidateBatch` (or one per
branch-and-bound chunk), scores it as parallel arrays, and materializes
``EvaluatedConfiguration`` records from the score columns — bitwise
identical to the historical per-candidate path, hundreds of times
faster.  The scalar :meth:`CostOptimizer.evaluate` remains for single
configurations (reference points, descent starts, cache-threaded
what-ifs).

``grid_search`` additionally takes two independent knobs:

- ``workers=k`` is accepted for interface compatibility (and still
  validates like the rest of the pipeline); the batch kernel scores the
  whole grid in-process faster than candidates could be pickled to a
  pool, so every worker count returns bit-identical results trivially;
- ``prune=True`` runs branch-and-bound on the admissible
  :class:`~repro.cloud.bounds.RuntimeLowerBound`, whose block bounds
  are themselves evaluated vectorized: candidates whose optimistic cost
  already meets or exceeds the incumbent best are discarded without
  scoring.  The pruned search provably returns the same ``best`` as
  exhaustive (see ``docs/PERFORMANCE.md``), and the result reports
  evaluated-vs-pruned counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cloud.bounds import RuntimeLowerBound
from repro.cloud.disks import SPEC_BY_KIND, make_persistent_disk
from repro.cloud.instance import machine_for_vcpus
from repro.cloud.pricing import CloudConfiguration
from repro.core.predictor import Predictor
from repro.errors import OptimizationError
from repro.model.arrays import CandidateBatch, Eq1BatchEvaluator
from repro.parallel import ExecutionPolicy, resolve_backend, validate_execution
from repro.units import GB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.cache import ResultCache

#: Candidates bound-checked per branch-and-bound round.  Fixed — the
#: evaluated/pruned counts of a pruned search are part of the search's
#: observable contract, so the block size must not drift with the
#: environment (workers, backend) scoring it.
_PRUNE_CHUNK = 64

#: Default provisioned-size grid, in GB (the paper sweeps 20 GB - 4 TB).
DEFAULT_SIZE_GRID_GB: tuple[float, ...] = (
    20, 50, 100, 200, 500, 1000, 1500, 2000, 3000, 4000,
)
#: Default worker shapes to explore.
DEFAULT_VCPU_GRID: tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class EvaluatedConfiguration:
    """One candidate with its predicted runtime and cost."""

    config: CloudConfiguration
    runtime_seconds: float
    cost_dollars: float

    def __repr__(self) -> str:
        return (
            f"EvaluatedConfiguration({self.config.label()},"
            f" {self.runtime_seconds / 60:.1f}min, ${self.cost_dollars:.2f})"
        )


@dataclass(frozen=True)
class OptimizationResult:
    """Search outcome: the winner plus every point evaluated.

    ``num_pruned`` counts the feasible candidates a branch-and-bound
    search discarded on their cost lower bound alone (0 for exhaustive
    searches); ``num_evaluated + num_pruned`` is the whole feasible
    grid.
    """

    best: EvaluatedConfiguration
    evaluated: tuple[EvaluatedConfiguration, ...]
    num_pruned: int = 0

    @property
    def num_evaluated(self) -> int:
        """How many feasible configurations were scored."""
        return len(self.evaluated)

    @property
    def num_considered(self) -> int:
        """Feasible grid size: scored plus bound-pruned candidates."""
        return self.num_evaluated + self.num_pruned

    def savings_versus(self, other: EvaluatedConfiguration) -> float:
        """Fractional cost saving of the winner vs. a reference config."""
        if other.cost_dollars <= 0:
            raise OptimizationError("reference configuration has no cost")
        return 1.0 - self.best.cost_dollars / other.cost_dollars


class CostOptimizer:
    """Minimizes job cost over cloud configurations using the Doppio model.

    Parameters
    ----------
    predictor:
        A profiled :class:`~repro.core.predictor.Predictor` for the job.
    num_workers:
        ``N`` — fixed worker count (the paper fixes ten slaves).
    min_hdfs_gb / min_local_gb:
        Per-node capacity the job needs on each disk; candidates below
        these are infeasible.
    cache:
        Optional pipeline :class:`~repro.pipeline.cache.ResultCache`.
        Candidate predictions are then memoized under the same
        content-addressed keys the experiment pipeline uses, so repeated
        searches — a grid refinement, several descent starts, the CLI run
        after a validation sweep — skip every configuration already
        scored anywhere in the process (or cache file).
    """

    def __init__(
        self,
        predictor: Predictor,
        num_workers: int = 10,
        min_hdfs_gb: float = 0.0,
        min_local_gb: float = 0.0,
        cache: ResultCache | None = None,
    ) -> None:
        if num_workers <= 0:
            raise OptimizationError("worker count must be positive")
        self.predictor = predictor
        self.num_workers = num_workers
        self.min_hdfs_gb = min_hdfs_gb
        self.min_local_gb = min_local_gb
        self.cache = cache
        self._report_fp: str | None = None
        self._evaluator: Eq1BatchEvaluator | None = None

    # -- evaluation -----------------------------------------------------------

    def is_feasible(self, config: CloudConfiguration) -> bool:
        """Capacity check: disks must hold the job's per-node data."""
        return (
            config.hdfs_disk_gb >= self.min_hdfs_gb
            and config.local_disk_gb >= self.min_local_gb
        )

    def predict_runtime(self, config: CloudConfiguration) -> float:
        """Model-predicted job runtime on ``config``, in seconds."""
        if self.cache is None:
            return self._predict_fresh(config).t_app
        key = self._candidate_key(config)
        prediction = self.cache.get_prediction(key)
        if prediction is None:
            prediction = self._predict_fresh(config)
            self.cache.put_prediction(key, prediction)
        return prediction.t_app

    def _candidate_key(self, config: CloudConfiguration) -> str:
        """The pipeline's content-addressed prediction key for a candidate."""
        # Imported here: repro.cloud is a pipeline dependency (platform
        # construction), so the dependency cannot run the other way at
        # module level.
        from repro.pipeline.cache import prediction_key
        from repro.pipeline.platforms import CloudPlatform

        return prediction_key(
            self._report_fingerprint(),
            CloudPlatform(config).fingerprint(),
            config.num_workers,
            config.cores_per_node,
        )

    def _predict_fresh(self, config: CloudConfiguration):
        devices = {
            "hdfs": make_persistent_disk(config.hdfs_disk_kind, config.hdfs_disk_gb),
            "local": make_persistent_disk(config.local_disk_kind, config.local_disk_gb),
        }
        model = self.predictor.model_for_devices(devices)
        return model.predict(config.num_workers, config.cores_per_node)

    def batch_evaluator(self) -> Eq1BatchEvaluator:
        """The memoized array-kernel evaluator for this job's report."""
        if self._evaluator is None:
            self._evaluator = Eq1BatchEvaluator(self.predictor.report)
        return self._evaluator

    def score_candidates(
        self, configs: list[CloudConfiguration]
    ) -> list[EvaluatedConfiguration]:
        """Batch-score configurations into evaluated records, in order.

        One :class:`~repro.model.arrays.CandidateBatch` crosses the
        kernel; runtimes and costs come back as parallel arrays and are
        materialized per candidate.  The floats equal
        :meth:`evaluate`'s bit for bit (see :mod:`repro.model.arrays`),
        so searches built on either path agree exactly.
        """
        if not configs:
            return []
        scores = self.batch_evaluator().score(
            CandidateBatch.from_configs(configs), want_bottlenecks=False
        )
        return [
            EvaluatedConfiguration(
                config=config,
                runtime_seconds=float(runtime),
                cost_dollars=float(cost),
            )
            for config, runtime, cost in zip(
                configs, scores.runtime_seconds, scores.cost_dollars
            )
        ]

    def _report_fingerprint(self) -> str:
        if self._report_fp is None:
            from repro.core.serialization import report_to_dict
            from repro.pipeline.fingerprint import fingerprint

            self._report_fp = fingerprint(report_to_dict(self.predictor.report))
        return self._report_fp

    def evaluate(self, config: CloudConfiguration) -> EvaluatedConfiguration:
        """Score one configuration (must be feasible)."""
        if not self.is_feasible(config):
            raise OptimizationError(
                f"infeasible configuration {config.label()}: needs"
                f" >= {self.min_hdfs_gb:.0f}GB HDFS and"
                f" >= {self.min_local_gb:.0f}GB local per node"
            )
        runtime = self.predict_runtime(config)
        return EvaluatedConfiguration(
            config=config,
            runtime_seconds=runtime,
            cost_dollars=config.cost_for_runtime(runtime),
        )

    def make_config(
        self,
        vcpus: int,
        hdfs_kind: str,
        hdfs_gb: float,
        local_kind: str,
        local_gb: float,
    ) -> CloudConfiguration:
        """Convenience constructor bound to this optimizer's worker count."""
        return CloudConfiguration(
            machine=machine_for_vcpus(vcpus),
            num_workers=self.num_workers,
            hdfs_disk_kind=hdfs_kind,
            hdfs_disk_gb=hdfs_gb,
            local_disk_kind=local_kind,
            local_disk_gb=local_gb,
        )

    # -- search strategies -------------------------------------------------------

    def grid_search(
        self,
        vcpu_grid: tuple[int, ...] = DEFAULT_VCPU_GRID,
        disk_kinds: tuple[str, ...] = ("pd-standard", "pd-ssd"),
        hdfs_sizes_gb: tuple[float, ...] = DEFAULT_SIZE_GRID_GB,
        local_sizes_gb: tuple[float, ...] = DEFAULT_SIZE_GRID_GB,
        workers: int | None = None,
        prune: bool = False,
        execution: ExecutionPolicy | None = None,
    ) -> OptimizationResult:
        """Score every feasible grid point; ``best`` is always the optimum.

        The feasible grid is scored through the array kernel as one
        batch (or chunk-wise bound-filtered batches with
        ``prune=True``), so all four ``workers`` × ``prune``
        combinations return the identical ``best`` (and, without
        pruning, the identical ``evaluated`` tuple) — only the
        evaluated/pruned split changes.  ``workers`` keeps its pipeline
        semantics for validation (``None``/``1``/``0``/``k`` accepted,
        anything else is a :class:`~repro.errors.ConfigurationError`)
        but no process pool is spun up: one in-process kernel pass
        outruns pickling candidates to workers by orders of magnitude.
        ``execution`` is validated the same way (an
        :class:`~repro.parallel.ExecutionPolicy` or ``None``) so the
        CLI threads one set of supervision flags through both
        ``pipeline`` and ``optimize``; with no pool there is nothing to
        supervise, and searches cannot fail partially.
        """
        for kind in disk_kinds:
            if kind not in SPEC_BY_KIND:
                raise OptimizationError(f"unknown disk kind {kind!r}")
        candidates = self._grid_candidates(
            vcpu_grid, disk_kinds, hdfs_sizes_gb, local_sizes_gb
        )
        if not candidates:
            raise OptimizationError("no feasible configuration on the grid")
        # Validate the workers and execution requests exactly like the
        # process-pool era did, then release the backend unused (see
        # the docstring).
        resolve_backend(workers).shutdown()
        validate_execution(execution)
        if prune:
            evaluated, best, pruned = self._search_pruned(candidates)
        else:
            evaluated = self.score_candidates(candidates)
            best = min(evaluated, key=lambda e: e.cost_dollars)
            pruned = 0
        return OptimizationResult(
            best=best, evaluated=tuple(evaluated), num_pruned=pruned
        )

    def _grid_candidates(
        self,
        vcpu_grid: tuple[int, ...],
        disk_kinds: tuple[str, ...],
        hdfs_sizes_gb: tuple[float, ...],
        local_sizes_gb: tuple[float, ...],
    ) -> list[CloudConfiguration]:
        """Feasible grid points in canonical (nested-loop) order."""
        candidates: list[CloudConfiguration] = []
        for vcpus in vcpu_grid:
            for hdfs_kind in disk_kinds:
                for hdfs_gb in hdfs_sizes_gb:
                    if hdfs_gb < self.min_hdfs_gb:
                        continue
                    for local_kind in disk_kinds:
                        for local_gb in local_sizes_gb:
                            if local_gb < self.min_local_gb:
                                continue
                            candidates.append(self.make_config(
                                vcpus, hdfs_kind, hdfs_gb, local_kind, local_gb
                            ))
        return candidates

    def _search_pruned(
        self,
        candidates: list[CloudConfiguration],
    ) -> tuple[list[EvaluatedConfiguration], EvaluatedConfiguration, int]:
        """Branch-and-bound in grid order; same ``best`` as exhaustive.

        Candidates are consumed in fixed-size chunks: each chunk's cost
        lower bounds are evaluated as one vectorized block
        (:meth:`~repro.cloud.bounds.RuntimeLowerBound.cost_bounds`,
        bitwise equal to the scalar bound — so the evaluated/pruned
        split is too), survivors are batch-scored in order, and the
        incumbent advances with a strict ``<`` — the same tie-break as
        ``min`` over the full grid.  The exhaustive winner is the
        *first* global minimum in grid order; when its chunk arrives the
        incumbent still costs strictly more, so its (admissible) bound
        can never reach the incumbent and it is always evaluated —
        hence ``best`` is identical.
        """
        bound = RuntimeLowerBound(self.predictor.report)
        evaluated: list[EvaluatedConfiguration] = []
        best: EvaluatedConfiguration | None = None
        pruned = 0
        for start in range(0, len(candidates), _PRUNE_CHUNK):
            chunk = candidates[start:start + _PRUNE_CHUNK]
            survivors: list[CloudConfiguration] = []
            if best is None:
                survivors = chunk
            else:
                incumbent = best.cost_dollars
                for config, cost_lb in zip(chunk, bound.cost_bounds(chunk)):
                    if cost_lb >= incumbent:
                        pruned += 1
                    else:
                        survivors.append(config)
            for item in self.score_candidates(survivors):
                evaluated.append(item)
                if best is None or item.cost_dollars < best.cost_dollars:
                    best = item
        assert best is not None  # candidates is non-empty
        return evaluated, best, pruned

    def coordinate_descent(
        self,
        start: CloudConfiguration,
        vcpu_grid: tuple[int, ...] = DEFAULT_VCPU_GRID,
        size_grid_gb: tuple[float, ...] = DEFAULT_SIZE_GRID_GB,
        max_rounds: int = 20,
    ) -> OptimizationResult:
        """Discrete descent: improve one coordinate at a time to a fixpoint.

        This is the paper's "gradient descent" on the discrete multivariate
        cost function; disk *types* stay fixed to the start point's (run it
        once per type combination, as the paper does for HDD and SSD).

        Each round's feasible neighbours are scored as one kernel batch;
        the within-round incumbent updates then replay the historical
        sequential comparisons over the batch columns, so the descent
        path (and every evaluated record) is unchanged.
        """
        if not self.is_feasible(start):
            raise OptimizationError(f"start configuration {start.label()} infeasible")
        current = self.evaluate(start)
        evaluated = [current]
        for _ in range(max_rounds):
            improved = False
            neighbors = [
                candidate
                for candidate in self._neighbors(
                    current.config, vcpu_grid, size_grid_gb
                )
                if self.is_feasible(candidate)
            ]
            for scored in self.score_candidates(neighbors):
                evaluated.append(scored)
                if scored.cost_dollars < current.cost_dollars - 1e-9:
                    current = scored
                    improved = True
            if not improved:
                break
        return OptimizationResult(best=current, evaluated=tuple(evaluated))

    def _neighbors(
        self,
        config: CloudConfiguration,
        vcpu_grid: tuple[int, ...],
        size_grid_gb: tuple[float, ...],
    ) -> list[CloudConfiguration]:
        """Grid neighbours along each coordinate axis."""
        neighbors: list[CloudConfiguration] = []
        for vcpus in _adjacent(sorted(vcpu_grid), config.machine.vcpus):
            neighbors.append(
                self.make_config(
                    vcpus,
                    config.hdfs_disk_kind,
                    config.hdfs_disk_gb,
                    config.local_disk_kind,
                    config.local_disk_gb,
                )
            )
        for hdfs_gb in _adjacent(sorted(size_grid_gb), config.hdfs_disk_gb):
            neighbors.append(
                self.make_config(
                    config.machine.vcpus,
                    config.hdfs_disk_kind,
                    hdfs_gb,
                    config.local_disk_kind,
                    config.local_disk_gb,
                )
            )
        for local_gb in _adjacent(sorted(size_grid_gb), config.local_disk_gb):
            neighbors.append(
                self.make_config(
                    config.machine.vcpus,
                    config.hdfs_disk_kind,
                    config.hdfs_disk_gb,
                    config.local_disk_kind,
                    local_gb,
                )
            )
        return neighbors

    # -- capacity helper --------------------------------------------------------

    @staticmethod
    def capacity_requirements(
        workload, num_workers: int, headroom: float = 1.2
    ) -> tuple[float, float]:
        """Per-node (hdfs_gb, local_gb) a workload needs, with headroom.

        HDFS must hold the largest stage's HDFS reads plus all HDFS writes
        (already replication-inclusive in the specs); Spark-local must hold
        the largest simultaneous shuffle plus persisted data.
        """
        hdfs_bytes = 0.0
        local_bytes = 0.0
        max_read = 0.0
        for stage in workload.stages:
            summary = stage.channel_summary()
            max_read = max(max_read, summary.get("hdfs_read", (0.0, 0.0))[0])
            hdfs_bytes += summary.get("hdfs_write", (0.0, 0.0))[0]
            local_bytes = max(
                local_bytes,
                summary.get("shuffle_write", (0.0, 0.0))[0]
                + summary.get("persist_write", (0.0, 0.0))[0] / max(stage.repeat, 1),
            )
        hdfs_bytes += max_read
        per_node_hdfs = hdfs_bytes * headroom / num_workers / GB
        per_node_local = local_bytes * headroom / num_workers / GB
        return (per_node_hdfs, per_node_local)


def _adjacent(grid: list, value) -> list:
    """Grid values immediately below and above ``value`` (plus snapping)."""
    below = [g for g in grid if g < value]
    above = [g for g in grid if g > value]
    candidates = []
    if below:
        candidates.append(below[-1])
    if above:
        candidates.append(above[0])
    return candidates
