"""Configuration-space search for minimum cost (Section VI-1).

The optimizer composes three pieces:

1. the Doppio :class:`~repro.core.predictor.Predictor` (built from four
   profiling sample runs) supplies ``Time`` for any candidate
   configuration;
2. :mod:`repro.cloud.pricing` supplies ``Cost = f(config, Time)``;
3. a search strategy walks the discrete space
   ``(vCPUs, DiskTypes, DiskSize_HDFS, DiskSize_local)``.

Two strategies are provided: exhaustive ``grid_search`` (the space is only
a few thousand points) and ``coordinate_descent``, the discrete analogue
of the gradient-descent procedure the paper describes; both honour
capacity feasibility (disks must actually hold the job's data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cloud.disks import SPEC_BY_KIND, make_persistent_disk
from repro.cloud.instance import machine_for_vcpus
from repro.cloud.pricing import CloudConfiguration
from repro.core.predictor import Predictor
from repro.errors import OptimizationError
from repro.units import GB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.cache import ResultCache

#: Default provisioned-size grid, in GB (the paper sweeps 20 GB - 4 TB).
DEFAULT_SIZE_GRID_GB: tuple[float, ...] = (
    20, 50, 100, 200, 500, 1000, 1500, 2000, 3000, 4000,
)
#: Default worker shapes to explore.
DEFAULT_VCPU_GRID: tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class EvaluatedConfiguration:
    """One candidate with its predicted runtime and cost."""

    config: CloudConfiguration
    runtime_seconds: float
    cost_dollars: float

    def __repr__(self) -> str:
        return (
            f"EvaluatedConfiguration({self.config.label()},"
            f" {self.runtime_seconds / 60:.1f}min, ${self.cost_dollars:.2f})"
        )


@dataclass(frozen=True)
class OptimizationResult:
    """Search outcome: the winner plus every point evaluated."""

    best: EvaluatedConfiguration
    evaluated: tuple[EvaluatedConfiguration, ...]

    @property
    def num_evaluated(self) -> int:
        """How many feasible configurations were scored."""
        return len(self.evaluated)

    def savings_versus(self, other: EvaluatedConfiguration) -> float:
        """Fractional cost saving of the winner vs. a reference config."""
        if other.cost_dollars <= 0:
            raise OptimizationError("reference configuration has no cost")
        return 1.0 - self.best.cost_dollars / other.cost_dollars


class CostOptimizer:
    """Minimizes job cost over cloud configurations using the Doppio model.

    Parameters
    ----------
    predictor:
        A profiled :class:`~repro.core.predictor.Predictor` for the job.
    num_workers:
        ``N`` — fixed worker count (the paper fixes ten slaves).
    min_hdfs_gb / min_local_gb:
        Per-node capacity the job needs on each disk; candidates below
        these are infeasible.
    cache:
        Optional pipeline :class:`~repro.pipeline.cache.ResultCache`.
        Candidate predictions are then memoized under the same
        content-addressed keys the experiment pipeline uses, so repeated
        searches — a grid refinement, several descent starts, the CLI run
        after a validation sweep — skip every configuration already
        scored anywhere in the process (or cache file).
    """

    def __init__(
        self,
        predictor: Predictor,
        num_workers: int = 10,
        min_hdfs_gb: float = 0.0,
        min_local_gb: float = 0.0,
        cache: ResultCache | None = None,
    ) -> None:
        if num_workers <= 0:
            raise OptimizationError("worker count must be positive")
        self.predictor = predictor
        self.num_workers = num_workers
        self.min_hdfs_gb = min_hdfs_gb
        self.min_local_gb = min_local_gb
        self.cache = cache
        self._report_fp: str | None = None

    # -- evaluation -----------------------------------------------------------

    def is_feasible(self, config: CloudConfiguration) -> bool:
        """Capacity check: disks must hold the job's per-node data."""
        return (
            config.hdfs_disk_gb >= self.min_hdfs_gb
            and config.local_disk_gb >= self.min_local_gb
        )

    def predict_runtime(self, config: CloudConfiguration) -> float:
        """Model-predicted job runtime on ``config``, in seconds."""
        if self.cache is None:
            return self._predict_fresh(config).t_app
        # Imported here: repro.cloud is a pipeline dependency (platform
        # construction), so the dependency cannot run the other way at
        # module level.
        from repro.pipeline.cache import prediction_key
        from repro.pipeline.platforms import CloudPlatform

        key = prediction_key(
            self._report_fingerprint(),
            CloudPlatform(config).fingerprint(),
            config.num_workers,
            config.cores_per_node,
        )
        prediction = self.cache.get_prediction(key)
        if prediction is None:
            prediction = self._predict_fresh(config)
            self.cache.put_prediction(key, prediction)
        return prediction.t_app

    def _predict_fresh(self, config: CloudConfiguration):
        devices = {
            "hdfs": make_persistent_disk(config.hdfs_disk_kind, config.hdfs_disk_gb),
            "local": make_persistent_disk(config.local_disk_kind, config.local_disk_gb),
        }
        model = self.predictor.model_for_devices(devices)
        return model.predict(config.num_workers, config.cores_per_node)

    def _report_fingerprint(self) -> str:
        if self._report_fp is None:
            from repro.core.serialization import report_to_dict
            from repro.pipeline.fingerprint import fingerprint

            self._report_fp = fingerprint(report_to_dict(self.predictor.report))
        return self._report_fp

    def evaluate(self, config: CloudConfiguration) -> EvaluatedConfiguration:
        """Score one configuration (must be feasible)."""
        if not self.is_feasible(config):
            raise OptimizationError(
                f"infeasible configuration {config.label()}: needs"
                f" >= {self.min_hdfs_gb:.0f}GB HDFS and"
                f" >= {self.min_local_gb:.0f}GB local per node"
            )
        runtime = self.predict_runtime(config)
        return EvaluatedConfiguration(
            config=config,
            runtime_seconds=runtime,
            cost_dollars=config.cost_for_runtime(runtime),
        )

    def make_config(
        self,
        vcpus: int,
        hdfs_kind: str,
        hdfs_gb: float,
        local_kind: str,
        local_gb: float,
    ) -> CloudConfiguration:
        """Convenience constructor bound to this optimizer's worker count."""
        return CloudConfiguration(
            machine=machine_for_vcpus(vcpus),
            num_workers=self.num_workers,
            hdfs_disk_kind=hdfs_kind,
            hdfs_disk_gb=hdfs_gb,
            local_disk_kind=local_kind,
            local_disk_gb=local_gb,
        )

    # -- search strategies -------------------------------------------------------

    def grid_search(
        self,
        vcpu_grid: tuple[int, ...] = DEFAULT_VCPU_GRID,
        disk_kinds: tuple[str, ...] = ("pd-standard", "pd-ssd"),
        hdfs_sizes_gb: tuple[float, ...] = DEFAULT_SIZE_GRID_GB,
        local_sizes_gb: tuple[float, ...] = DEFAULT_SIZE_GRID_GB,
    ) -> OptimizationResult:
        """Exhaustively score every feasible grid point."""
        for kind in disk_kinds:
            if kind not in SPEC_BY_KIND:
                raise OptimizationError(f"unknown disk kind {kind!r}")
        evaluated: list[EvaluatedConfiguration] = []
        for vcpus in vcpu_grid:
            for hdfs_kind in disk_kinds:
                for hdfs_gb in hdfs_sizes_gb:
                    if hdfs_gb < self.min_hdfs_gb:
                        continue
                    for local_kind in disk_kinds:
                        for local_gb in local_sizes_gb:
                            if local_gb < self.min_local_gb:
                                continue
                            config = self.make_config(
                                vcpus, hdfs_kind, hdfs_gb, local_kind, local_gb
                            )
                            evaluated.append(self.evaluate(config))
        if not evaluated:
            raise OptimizationError("no feasible configuration on the grid")
        best = min(evaluated, key=lambda e: e.cost_dollars)
        return OptimizationResult(best=best, evaluated=tuple(evaluated))

    def coordinate_descent(
        self,
        start: CloudConfiguration,
        vcpu_grid: tuple[int, ...] = DEFAULT_VCPU_GRID,
        size_grid_gb: tuple[float, ...] = DEFAULT_SIZE_GRID_GB,
        max_rounds: int = 20,
    ) -> OptimizationResult:
        """Discrete descent: improve one coordinate at a time to a fixpoint.

        This is the paper's "gradient descent" on the discrete multivariate
        cost function; disk *types* stay fixed to the start point's (run it
        once per type combination, as the paper does for HDD and SSD).
        """
        if not self.is_feasible(start):
            raise OptimizationError(f"start configuration {start.label()} infeasible")
        current = self.evaluate(start)
        evaluated = [current]
        for _ in range(max_rounds):
            improved = False
            for candidate in self._neighbors(current.config, vcpu_grid, size_grid_gb):
                if not self.is_feasible(candidate):
                    continue
                scored = self.evaluate(candidate)
                evaluated.append(scored)
                if scored.cost_dollars < current.cost_dollars - 1e-9:
                    current = scored
                    improved = True
            if not improved:
                break
        return OptimizationResult(best=current, evaluated=tuple(evaluated))

    def _neighbors(
        self,
        config: CloudConfiguration,
        vcpu_grid: tuple[int, ...],
        size_grid_gb: tuple[float, ...],
    ) -> list[CloudConfiguration]:
        """Grid neighbours along each coordinate axis."""
        neighbors: list[CloudConfiguration] = []
        for vcpus in _adjacent(sorted(vcpu_grid), config.machine.vcpus):
            neighbors.append(
                self.make_config(
                    vcpus,
                    config.hdfs_disk_kind,
                    config.hdfs_disk_gb,
                    config.local_disk_kind,
                    config.local_disk_gb,
                )
            )
        for hdfs_gb in _adjacent(sorted(size_grid_gb), config.hdfs_disk_gb):
            neighbors.append(
                self.make_config(
                    config.machine.vcpus,
                    config.hdfs_disk_kind,
                    hdfs_gb,
                    config.local_disk_kind,
                    config.local_disk_gb,
                )
            )
        for local_gb in _adjacent(sorted(size_grid_gb), config.local_disk_gb):
            neighbors.append(
                self.make_config(
                    config.machine.vcpus,
                    config.hdfs_disk_kind,
                    config.hdfs_disk_gb,
                    config.local_disk_kind,
                    local_gb,
                )
            )
        return neighbors

    # -- capacity helper --------------------------------------------------------

    @staticmethod
    def capacity_requirements(
        workload, num_workers: int, headroom: float = 1.2
    ) -> tuple[float, float]:
        """Per-node (hdfs_gb, local_gb) a workload needs, with headroom.

        HDFS must hold the largest stage's HDFS reads plus all HDFS writes
        (already replication-inclusive in the specs); Spark-local must hold
        the largest simultaneous shuffle plus persisted data.
        """
        hdfs_bytes = 0.0
        local_bytes = 0.0
        max_read = 0.0
        for stage in workload.stages:
            summary = stage.channel_summary()
            max_read = max(max_read, summary.get("hdfs_read", (0.0, 0.0))[0])
            hdfs_bytes += summary.get("hdfs_write", (0.0, 0.0))[0]
            local_bytes = max(
                local_bytes,
                summary.get("shuffle_write", (0.0, 0.0))[0]
                + summary.get("persist_write", (0.0, 0.0))[0] / max(stage.repeat, 1),
            )
        hdfs_bytes += max_read
        per_node_hdfs = hdfs_bytes * headroom / num_workers / GB
        per_node_local = local_bytes * headroom / num_workers / GB
        return (per_node_hdfs, per_node_local)


def _adjacent(grid: list, value) -> list:
    """Grid values immediately below and above ``value`` (plus snapping)."""
    below = [g for g in grid if g < value]
    above = [g for g in grid if g > value]
    candidates = []
    if below:
        candidates.append(below[-1])
    if above:
        candidates.append(above[0])
    return candidates
