"""Google Cloud machine types and hourly prices (2017 us-central1 list).

The paper's exploration varies the vCPU count per worker; the n1-standard
family prices scale linearly with vCPUs, which is what makes the
cost-vs-cores tradeoff non-trivial: double the cores halves (at best) the
compute-bound time but doubles the hourly rate, so I/O-bound stages decide
the winner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB


@dataclass(frozen=True)
class MachineType:
    """One machine type: vCPUs, RAM, and on-demand hourly price."""

    name: str
    vcpus: int
    ram_bytes: float
    price_per_hour: float

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ConfigurationError(f"{self.name}: vCPUs must be positive")
        if self.price_per_hour <= 0:
            raise ConfigurationError(f"{self.name}: price must be positive")


#: n1-standard machine family (3.75 GB RAM per vCPU, $0.0475/vCPU-hour).
N1_STANDARD: tuple[MachineType, ...] = tuple(
    MachineType(
        name=f"n1-standard-{vcpus}",
        vcpus=vcpus,
        ram_bytes=vcpus * 3.75 * GB,
        price_per_hour=round(vcpus * 0.0475, 4),
    )
    for vcpus in (1, 2, 4, 8, 16, 32, 64)
)


def machine_for_vcpus(vcpus: int) -> MachineType:
    """The n1-standard machine with exactly ``vcpus`` cores."""
    for machine in N1_STANDARD:
        if machine.vcpus == vcpus:
            return machine
    raise ConfigurationError(
        f"no n1-standard machine with {vcpus} vCPUs;"
        f" available: {[m.vcpus for m in N1_STANDARD]}"
    )
