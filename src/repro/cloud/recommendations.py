"""Reference provisioning rules the paper compares against (Section VI-1).

- **R1** — Apache Spark's "Hardware Provisioning" page [12]: 4-8 disks per
  node, and the paper reads it as a 1:2 ratio of disks to CPU cores.  For
  a 16-vCPU worker that is 8 x 1 TB standard disks = **8 TB** of
  provisioned space per node (estimated cost $6.06 in the paper).
- **R2** — Cloudera's Hadoop hardware guide [13]: two hex-core machines
  with 12 x 1 TB disks, i.e. a 1:1 disk-to-core ratio — **16 TB** per
  16-vCPU node (estimated cost $8.65).

Both rules provision capacity-oriented spinning disks; Doppio's point is
that a model-chosen configuration (1 TB HDFS HDD + a small fast local
disk) does the same work far cheaper.
"""

from __future__ import annotations

from repro.cloud.instance import machine_for_vcpus
from repro.cloud.pricing import CloudConfiguration


def r1_spark_recommendation(
    vcpus: int = 16, num_workers: int = 10
) -> CloudConfiguration:
    """R1: one disk per two cores, 1 TB pd-standard each.

    The total provisioned space is split evenly between HDFS and
    Spark-local, as a Spark cluster following the guide would mount all
    disks for both roles.
    """
    total_gb = (vcpus // 2) * 1000.0
    return CloudConfiguration(
        machine=machine_for_vcpus(vcpus),
        num_workers=num_workers,
        hdfs_disk_kind="pd-standard",
        hdfs_disk_gb=total_gb / 2,
        local_disk_kind="pd-standard",
        local_disk_gb=total_gb / 2,
    )


def r2_cloudera_recommendation(
    vcpus: int = 16, num_workers: int = 10
) -> CloudConfiguration:
    """R2: one 1 TB disk per core (Cloudera's 12-disk hex-core pairs)."""
    total_gb = vcpus * 1000.0
    return CloudConfiguration(
        machine=machine_for_vcpus(vcpus),
        num_workers=num_workers,
        hdfs_disk_kind="pd-standard",
        hdfs_disk_gb=total_gb / 2,
        local_disk_kind="pd-standard",
        local_disk_gb=total_gb / 2,
    )
