"""Google Cloud cost modeling and configuration optimization (Section VI).

- :mod:`repro.cloud.disks` — persistent-disk models: virtual disks whose
  throughput and IOPS scale with provisioned size up to hard caps, so the
  effective bandwidth at a request size is
  ``min(throughput_limit, iops_limit * request_size)``.
- :mod:`repro.cloud.instance` — machine types and their hourly prices.
- :mod:`repro.cloud.pricing` — Table V disk prices and the cost function
  ``Cost = f(P, DiskTypes, DiskSize_HDFS, DiskSize_local, Time)``.
- :mod:`repro.cloud.optimizer` — grid search (optionally parallel and
  bound-pruned) plus coordinate descent over the configuration space,
  using the Doppio model for ``Time``.
- :mod:`repro.cloud.bounds` — the admissible Eq.-1 runtime/cost lower
  bound that makes the pruned search exact.
- :mod:`repro.cloud.recommendations` — the R1 (Apache Spark) and R2
  (Cloudera) reference provisioning rules the paper compares against.
"""

from repro.cloud.bounds import RuntimeLowerBound
from repro.cloud.disks import (
    PersistentDiskSpec,
    PD_STANDARD,
    PD_SSD,
    bandwidth_upper_bound,
    make_persistent_disk,
)
from repro.cloud.instance import MachineType, N1_STANDARD, machine_for_vcpus
from repro.cloud.pricing import (
    DISK_PRICE_PER_GB_MONTH,
    CloudConfiguration,
    disk_cost_per_hour,
    configuration_cost,
)
from repro.cloud.optimizer import (
    CostOptimizer,
    EvaluatedConfiguration,
    OptimizationResult,
)
from repro.cloud.recommendations import (
    r1_spark_recommendation,
    r2_cloudera_recommendation,
)

__all__ = [
    "RuntimeLowerBound",
    "PersistentDiskSpec",
    "PD_STANDARD",
    "PD_SSD",
    "bandwidth_upper_bound",
    "make_persistent_disk",
    "MachineType",
    "N1_STANDARD",
    "machine_for_vcpus",
    "DISK_PRICE_PER_GB_MONTH",
    "CloudConfiguration",
    "disk_cost_per_hour",
    "configuration_cost",
    "CostOptimizer",
    "EvaluatedConfiguration",
    "OptimizationResult",
    "r1_spark_recommendation",
    "r2_cloudera_recommendation",
]
