"""Cloud pricing: Table V disk prices and the configuration cost function.

The optimization target of Section VI::

    Cost = f(CoreNum, DiskTypes, DiskSize_HDFS, DiskSize_Spark_Local, Time)

Concretely: every worker node runs one machine instance and attaches two
persistent disks (HDFS and Spark-local); disks are billed per GB-month,
instances per hour, and the job occupies everything for ``Time``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance import MachineType
from repro.errors import ConfigurationError
from repro.units import MONTH_HOURS

#: Table V: Google Cloud disk prices per GB-month.
DISK_PRICE_PER_GB_MONTH: dict[str, float] = {
    "pd-standard": 0.040,
    "pd-ssd": 0.170,
}


def disk_price_ratio() -> float:
    """SSD / standard price ratio (the paper quotes 4.2x)."""
    return DISK_PRICE_PER_GB_MONTH["pd-ssd"] / DISK_PRICE_PER_GB_MONTH["pd-standard"]


def disk_cost_per_hour(kind: str, size_gb: float) -> float:
    """Hourly cost of one provisioned disk."""
    try:
        per_month = DISK_PRICE_PER_GB_MONTH[kind]
    except KeyError:
        raise ConfigurationError(
            f"no price for disk kind {kind!r};"
            f" expected one of {sorted(DISK_PRICE_PER_GB_MONTH)}"
        ) from None
    if size_gb < 0:
        raise ConfigurationError("disk size must be non-negative")
    return size_gb * per_month / MONTH_HOURS


@dataclass(frozen=True)
class CloudConfiguration:
    """One point of the Section-VI configuration space.

    Attributes
    ----------
    machine:
        Worker machine type (``CoreNum`` = its vCPUs).
    num_workers:
        ``N`` — worker node count.
    hdfs_disk_kind / hdfs_disk_gb:
        Type and provisioned size of the per-node HDFS disk.
    local_disk_kind / local_disk_gb:
        Type and provisioned size of the per-node Spark-local disk.
    """

    machine: MachineType
    num_workers: int
    hdfs_disk_kind: str
    hdfs_disk_gb: float
    local_disk_kind: str
    local_disk_gb: float

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ConfigurationError("worker count must be positive")
        if self.hdfs_disk_gb <= 0 or self.local_disk_gb <= 0:
            raise ConfigurationError("disk sizes must be positive")

    @property
    def cores_per_node(self) -> int:
        """``P`` for the performance model."""
        return self.machine.vcpus

    def hourly_rate(self) -> float:
        """Cluster cost per hour: instances plus both disks, all workers."""
        per_node = (
            self.machine.price_per_hour
            + disk_cost_per_hour(self.hdfs_disk_kind, self.hdfs_disk_gb)
            + disk_cost_per_hour(self.local_disk_kind, self.local_disk_gb)
        )
        return per_node * self.num_workers

    def cost_for_runtime(self, runtime_seconds: float) -> float:
        """Dollars to run a job of ``runtime_seconds`` on this configuration."""
        if runtime_seconds < 0:
            raise ConfigurationError("runtime must be non-negative")
        return self.hourly_rate() * runtime_seconds / 3600.0

    def label(self) -> str:
        """Readable summary, e.g. ``16vCPU, HDFS=pd-standard 1000GB, ...``."""
        return (
            f"{self.machine.vcpus}vCPU x{self.num_workers},"
            f" HDFS={self.hdfs_disk_kind} {self.hdfs_disk_gb:.0f}GB,"
            f" local={self.local_disk_kind} {self.local_disk_gb:.0f}GB"
        )


def configuration_cost(
    config: CloudConfiguration, runtime_seconds: float
) -> float:
    """Functional form of ``Cost = f(..., Time)``."""
    return config.cost_for_runtime(runtime_seconds)
