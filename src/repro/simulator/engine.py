"""The fluid discrete-event loop, over generic shared resources.

State advances between *phase completion* events.  Between events every
I/O stream progresses at the rate its resources allocated (see
:mod:`repro.resources`) and every compute phase progresses at 1 s/s.
Completion times are kept in an event heap; a stream's ``remaining_bytes``
is only materialized when its rate actually changes (rate-epoch
invalidation), so an event touches the streams whose allocation changed
rather than every active stream.  At each event the engine:

1. retires phases whose heap entry came due,
2. moves their tasks to the next phase (or finishes them, freeing a core
   slot), launching waiting tasks onto freed slots, and
3. re-balances exactly the resources whose membership changed —
   re-scheduling only streams whose rate moved.

Tasks hold one core slot from launch to finish — like Spark tasks, whose
I/O (shuffle read, HDFS read/write) happens on the task's own thread.
The pipeline overlap of Fig. 6 emerges naturally: while one task
computes, other tasks' I/O proceeds.

Contention is expressed entirely through :mod:`repro.resources`:

- each node's executor cores are a :class:`SlotPool`;
- each storage device direction is a :class:`DeviceResource` (per array
  *member* when a :class:`~repro.storage.array.DiskArray` asks for
  per-member mode — streams are striped round-robin across members, like
  Spark round-robins files across local dirs);
- when a :class:`~repro.cluster.network.NetworkModel` is passed, each
  node gets a NIC :class:`LinkResource` and shuffle-read phases
  (``via_network=True``) split into a local-disk stream plus a remote
  stream bound to both the disk and the NIC, in the proportion
  ``NetworkModel.remote_fraction`` dictates.  With no network configured
  (the default) the wire is treated as infinite and results recover the
  paper's disk-only numbers exactly.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkModel
from repro.cluster.node import Node
from repro.errors import SimulationError, StageFailedError
from repro.faults.injector import (
    FaultAction,
    FaultInjector,
    JitterToggle,
    NodeKill,
    ScaleToggle,
)
from repro.faults.plan import FaultPlan
from repro.resilience import ResiliencePolicy, StageResilience
from repro.resources import (
    DeviceResource,
    LinkResource,
    Resource,
    ResourceRegistry,
    SharedStream,
    SlotPool,
    rebalance_coupled,
)
from repro.schedule.scheduler import ExecutorBlacklist
from repro.simulator.task import ComputePhase, IoPhase, SimTask
from repro.storage.array import DiskArray
from repro.storage.iostat import IostatCollector

#: Remaining work below these thresholds counts as complete.
_BYTE_EPS = 1e-6
_TIME_EPS = 1e-9

#: Heap entry kinds.
_EV_STREAM = 0
_EV_COMPUTE = 1
_EV_FAULT = 2
_EV_RETRY = 3
_EV_SPEC = 4
_EV_STALL = 5


@dataclass
class _Running:
    """Book-keeping for one in-flight task attempt."""

    task: SimTask
    node: Node
    phase_index: int = 0
    #: I/O streams of the current phase still moving bytes (a phase may
    #: hold several when a shuffle read splits into local + remote).
    open_streams: int = 0
    compute_remaining: float = 0.0
    #: Bumped at every phase transition; stale heap entries are dropped.
    epoch: int = 0
    streams: list[SharedStream] = field(default_factory=list)
    # -- resilience-only fields (inert without a policy) -------------------
    #: When this attempt started (== ``task.start_time`` without a policy;
    #: retries and speculative duplicates start later than the task).
    attempt_start: float = 0.0
    speculative: bool = False
    record: _TaskRecord | None = None

    @property
    def in_io(self) -> bool:
        return self.open_streams > 0


@dataclass
class _TaskRecord:
    """Resilience book-keeping for one logical task across its attempts.

    Retry and speculation heap events carry the record itself and are
    re-validated when they fire, so ``epoch`` stays 0 forever (the heap's
    epoch check is satisfied trivially).
    """

    task: SimTask
    completed: bool = False
    #: Consecutive failures in the current attempt budget (reset when a
    #: stage re-attempt grants a fresh one).
    failures: int = 0
    stage_reattempts: int = 0
    #: A speculative duplicate has been decided for this task (at most
    #: one per task, like Spark's single speculatable copy).
    spec_scheduled: bool = False
    #: An _EV_SPEC re-check is already in the heap.
    spec_event_pending: bool = False
    running: list[_Running] = field(default_factory=list)
    failed_nodes: set[str] = field(default_factory=set)
    epoch: int = 0


class SimulationEngine:
    """Runs task sets on a cluster with ``P`` executor cores per node."""

    def __init__(
        self,
        cluster: Cluster,
        cores_per_node: int,
        iostat: IostatCollector | None = None,
        max_events: int = 50_000_000,
        network: NetworkModel | None = None,
        faults: FaultPlan | None = None,
        resilience: ResiliencePolicy | None = None,
        stage_name: str = "stage",
    ) -> None:
        if cores_per_node <= 0:
            raise SimulationError("cores per node must be positive")
        for node in cluster.slaves:
            if cores_per_node > node.num_cores:
                raise SimulationError(
                    f"requested {cores_per_node} executor cores but node"
                    f" {node.name} has only {node.num_cores}"
                )
        self.cluster = cluster
        self.cores_per_node = cores_per_node
        self.iostat = iostat
        self.max_events = max_events
        self.network = network
        self.registry = ResourceRegistry()
        self._cores: dict[str, SlotPool] = {}
        #: Round-robin cursors for striping streams across array members,
        #: keyed like the device resources.
        self._stripe: dict[tuple, int] = {}
        for node in cluster.slaves:
            self._cores[node.name] = self.registry.register(
                ("cores", node.name), SlotPool(f"{node.name}:cores", cores_per_node)
            )  # type: ignore[assignment]
            # One resource per *physical* device direction (HDFS and local
            # may share a device); per-member arrays get one per member.
            for device in (node.hdfs_device, node.local_device):
                for is_write in (False, True):
                    key = ("device", id(device), is_write)
                    if key in self.registry:
                        continue
                    if isinstance(device, DiskArray) and device.per_member:
                        for index, member in enumerate(device.members):
                            self.registry.register(
                                key + (index,), DeviceResource(member, is_write)
                            )
                        self._stripe[key] = 0
                    else:
                        self.registry.register(key, DeviceResource(device, is_write))
            if network is not None:
                self.registry.register(
                    ("nic", node.name),
                    LinkResource(f"{node.name}:nic", network.link_bandwidth),
                )
        #: (resource, busy-accounting key) pairs, computed once.
        self._rate_resources: list[tuple[Resource, tuple[str, bool]]] = []
        for resource in self.registry.values():
            if isinstance(resource, DeviceResource):
                self._rate_resources.append(
                    (resource, (resource.device.name, resource.is_write))
                )
            elif isinstance(resource, LinkResource):
                self._rate_resources.append((resource, (resource.name, False)))
        #: Seconds each (device name, is_write) direction had >= 1 active
        #: stream, accumulated by :meth:`run`.
        self.device_busy_seconds: dict[tuple[str, bool], float] = {}
        #: Core-seconds occupied by tasks (held during I/O and compute).
        self.core_busy_seconds: float = 0.0
        # -- fault injection ------------------------------------------------
        self.faults = faults
        self._injector: FaultInjector | None = None
        self._slowdowns: dict[str, float] = {}
        if faults is not None and faults.faults:
            self._injector = FaultInjector(faults, cluster, self.registry, network)
            self._slowdowns = self._injector.slowdowns
        # -- resilience -----------------------------------------------------
        #: ``None`` keeps every code path bit-identical to the
        #: pre-resilience engine; every mitigation below is gated on it.
        self.resilience = resilience
        self._rpolicy = resilience
        self.stage_name = stage_name
        # -- per-run state (reset in :meth:`run`) --------------------------
        self._heap: list[tuple] = []
        self._seq = itertools.count()
        self._dirty: set[int] = set()
        self._dirty_resources: dict[int, Resource] = {}
        self._owner: dict[int, _Running] = {}
        self._stalled: dict[int, SharedStream] = {}
        self._freed_nodes: set[str] = set()
        self._dead_nodes: set[str] = set()
        self._active: dict[int, _Running] = {}
        self._records: dict[int, _TaskRecord] = {}
        self._records_order: list[_TaskRecord] = []
        self._finished_durations: list[float] = []
        self._total_tasks = 0
        self._spec_candidates: list[_TaskRecord] = []
        self._stall_failed: list[_Running] = []
        self._blacklist: ExecutorBlacklist | None = None
        self._res_attempts = 0
        self._res_spec_launched = 0
        self._res_spec_wins = 0
        self._res_retries = 0
        self._res_reattempts = 0
        self._res_backoff = 0.0

    # -- resource resolution ----------------------------------------------

    def _resource_for(self, node: Node, role: str, is_write: bool) -> Resource:
        """Resolve a phase's device resource, striping across array members."""
        device = node.device_for(role)
        key = ("device", id(device), is_write)
        if key in self._stripe:
            members = len(device.members)  # type: ignore[attr-defined]
            cursor = self._stripe[key]
            self._stripe[key] = (cursor + 1) % members
            return self.registry.get(key + (cursor,))
        return self.registry.get(key)

    # -- the event loop ----------------------------------------------------

    def run(self, tasks: list[SimTask]) -> float:
        """Execute ``tasks`` to completion; returns the makespan in seconds.

        Tasks are assigned to nodes round-robin at submission (Spark's
        locality-free scheduling under a uniform data spread) and started
        FIFO as cores free up.  Submission order is canonicalized by
        ``task_id`` so that shuffling a task list cannot change the
        schedule.  Task ``start_time``/``finish_time`` are filled in.
        """
        if not tasks:
            return 0.0
        tasks = sorted(tasks, key=lambda t: t.task_id)
        pending: dict[str, deque[SimTask]] = {
            node.name: deque() for node in self.cluster.slaves
        }
        for index, task in enumerate(tasks):
            node = self.cluster.slaves[index % self.cluster.num_slaves]
            pending[node.name].append(task)

        self._heap = []
        self._seq = itertools.count()
        self._dirty_resources = {}
        self._owner = {}
        self._stalled = {}
        self._freed_nodes = set()
        self._dead_nodes = set()
        self._active = {}
        self._pending = pending
        self._remaining_tasks = len(tasks)
        self._num_running = 0
        if self._rpolicy is not None:
            self._records = {}
            self._records_order = []
            for task in tasks:
                record = _TaskRecord(task=task)
                self._records[task.task_id] = record
                self._records_order.append(record)
            self._finished_durations = []
            self._total_tasks = len(tasks)
            self._spec_candidates = []
            self._stall_failed = []
            self._res_attempts = 0
            self._res_spec_launched = 0
            self._res_spec_wins = 0
            self._res_retries = 0
            self._res_reattempts = 0
            self._res_backoff = 0.0
            self._blacklist = None
            if self._rpolicy.blacklist is not None:
                self._blacklist = ExecutorBlacklist(
                    self._rpolicy.blacklist.max_node_strikes,
                    [node.name for node in self.cluster.slaves],
                )
        if self._injector is not None:
            self._injector.reset()
            for at_seconds, action in self._injector.initial_actions():
                heapq.heappush(
                    self._heap, (at_seconds, next(self._seq), _EV_FAULT, action, 0)
                )

        now = 0.0
        self._launch_waiting(now)
        self._settle(now)
        events = 0
        while self._remaining_tasks > 0:
            events += 1
            if events > self.max_events:
                raise SimulationError(
                    f"exceeded {self.max_events} events; simulation is stuck"
                )
            batch = self._pop_batch()
            if not batch:
                # With a retry policy, stalled-at-zero attempts become
                # task failures instead of a dead end: fail them and let
                # the retries repopulate the heap.
                if self._rescue_stalled(now):
                    self._settle(now)
                    continue
                self._raise_stuck()
            dt = batch[0][0] - now
            self._account_busy_time(dt)
            now = batch[0][0]
            for entry in batch:
                self._process_entry(entry, now)
            self._settle(now)
        return now

    def _pop_batch(self) -> list[tuple]:
        """Pop all valid entries due within ``_TIME_EPS`` of the earliest."""
        heap = self._heap
        batch: list[tuple] = []
        while heap:
            entry = heap[0]
            if not self._entry_valid(entry):
                heapq.heappop(heap)
                continue
            if batch and entry[0] > batch[0][0] + _TIME_EPS:
                break
            batch.append(heapq.heappop(heap))
        return batch

    @staticmethod
    def _entry_valid(entry: tuple) -> bool:
        _, _, kind, obj, epoch = entry
        return obj.epoch == epoch

    def _process_entry(self, entry: tuple, now: float) -> None:
        _, _, kind, obj, epoch = entry
        if obj.epoch != epoch:
            # Invalidated by an earlier entry of the same batch.
            return
        if kind == _EV_FAULT:
            self._process_fault(obj, now)
        elif kind == _EV_COMPUTE:
            running = obj
            running.compute_remaining = 0.0
            self._transition(running, now)
        elif kind == _EV_RETRY:
            self._process_retry(obj, now)
        elif kind == _EV_SPEC:
            self._process_spec(obj, now)
        elif kind == _EV_STALL:
            self._process_stall(obj, now)
        else:
            stream = obj
            stream.remaining_bytes = 0.0
            self._complete_stream(stream, now)

    def _process_fault(self, action: FaultAction, now: float) -> None:
        """Execute one timed fault action from the heap."""
        assert self._injector is not None
        if isinstance(action, ScaleToggle):
            for resource in action.resources:
                self._injector.toggle(resource, action.factor, action.on)
                self._mark_dirty(resource)
        elif isinstance(action, JitterToggle):
            for resource in action.resources:
                self._injector.toggle(resource, action.factor, action.entering)
                self._mark_dirty(resource)
            heapq.heappush(
                self._heap,
                (now + action.next_delay, next(self._seq), _EV_FAULT,
                 action.flipped(), 0),
            )
        elif isinstance(action, NodeKill):
            self._kill_node(action.node_name, now)
        else:  # pragma: no cover - action union is closed
            raise SimulationError(f"unknown fault action: {action!r}")

    def _kill_node(self, name: str, now: float) -> None:
        """Take a node out of service; its tasks re-execute on survivors.

        In-flight tasks lose all progress (their streams are detached and
        their compute abandoned) and are re-queued from scratch, together
        with the dead node's pending queue, round-robin across the
        surviving nodes — Spark's task re-execution on executor loss.

        With a resilience policy, in-flight attempts instead *fail*: each
        is charged against its task's attempt budget and resubmitted
        after the modeled backoff (never to the dead node), escalating to
        stage re-attempts and :class:`~repro.errors.StageFailedError`.
        Pending tasks never started, so they move without a charge.
        """
        if name in self._dead_nodes:
            return
        self._dead_nodes.add(name)
        survivors = [
            node for node in self.cluster.slaves if node.name not in self._dead_nodes
        ]
        if self._rpolicy is not None:
            if not survivors and self._remaining_tasks > 0:
                raise SimulationError(
                    f"node {name} died leaving no live nodes with"
                    f" {self._remaining_tasks} task(s) unfinished"
                )
            doomed = [r for r in self._active.values() if r.node.name == name]
            doomed.sort(key=lambda r: (r.task.task_id, r.speculative))
            for running in doomed:
                self._fail_attempt(
                    running, now, f"node {name} died", release_slot=False
                )
            queue = self._pending[name]
            moved = sorted(queue, key=lambda t: t.task_id)
            queue.clear()
            if moved:
                targets = [node for node in self._eligible_nodes()
                           if node.name != name]
                for index, task in enumerate(moved):
                    self._pending[targets[index % len(targets)].name].append(task)
                self._freed_nodes.update(node.name for node in targets)
            return
        requeue: list[SimTask] = []
        for running in [r for r in self._active.values() if r.node.name == name]:
            running.epoch += 1  # drop any scheduled compute entry
            for stream in running.streams:
                stream.epoch += 1  # drop any scheduled stream entry
                self._stalled.pop(stream.stream_id, None)
                self._owner.pop(stream.stream_id, None)
                for resource in list(stream.resources):
                    resource.detach(stream, rebalance=False)
                    self._mark_dirty(resource)
            running.streams.clear()
            running.open_streams = 0
            del self._active[id(running)]
            self._num_running -= 1
            task = running.task
            task.start_time = -1.0
            task.finish_time = -1.0
            requeue.append(task)
        queue = self._pending[name]
        requeue.extend(queue)
        queue.clear()
        if not survivors:
            if self._remaining_tasks > 0:
                raise SimulationError(
                    f"node {name} died leaving no live nodes with"
                    f" {self._remaining_tasks} task(s) unfinished"
                )
            return
        requeue.sort(key=lambda t: t.task_id)
        for index, task in enumerate(requeue):
            self._pending[survivors[index % len(survivors)].name].append(task)
        if requeue:
            self._freed_nodes.update(node.name for node in survivors)

    def _complete_stream(self, stream: SharedStream, now: float) -> None:
        stream.epoch += 1  # invalidate any scheduled entry
        self._stalled.pop(stream.stream_id, None)
        for resource in list(stream.resources):
            resource.detach(stream, rebalance=False)
            self._mark_dirty(resource)
        running = self._owner.pop(stream.stream_id)
        running.streams.remove(stream)
        running.open_streams -= 1
        if running.open_streams == 0:
            self._transition(running, now)

    def _transition(self, running: _Running, now: float) -> None:
        """Move a task past its completed phase; free its slot if done."""
        running.epoch += 1
        running.phase_index += 1
        if not self._enter_phase(running, now):
            self._active.pop(id(running), None)
            self._cores[running.node.name].release()
            self._num_running -= 1
            if self._rpolicy is None:
                self._remaining_tasks -= 1
            else:
                self._finish_task(running, now)
            self._freed_nodes.add(running.node.name)

    def _launch_waiting(self, now: float) -> None:
        for node in self.cluster.slaves:
            if node.name in self._dead_nodes:
                continue
            queue = self._pending[node.name]
            pool = self._cores[node.name]
            while queue and pool.free > 0:
                task = queue.popleft()
                pool.acquire()
                self._num_running += 1
                task.start_time = now
                if self._rpolicy is None:
                    running = _Running(task=task, node=node)
                else:
                    record = self._records[task.task_id]
                    running = _Running(
                        task=task, node=node, attempt_start=now, record=record
                    )
                    record.running.append(running)
                    self._res_attempts += 1
                if not self._enter_phase(running, now):
                    pool.release()
                    self._num_running -= 1
                    if self._rpolicy is None:
                        self._remaining_tasks -= 1
                    else:
                        self._finish_task(running, now)
                        self._freed_nodes.add(node.name)
                else:
                    self._active[id(running)] = running
                    if self._rpolicy is not None:
                        self._arm_spec_check(running, now)

    def _settle(self, now: float) -> None:
        """Launch onto freed slots and re-balance dirty resources, to fixpoint.

        Materializing remaining bytes at a rate change can itself complete
        a stream (the sub-:data:`_BYTE_EPS` clamp), which frees slots and
        dirties more resources — hence the loop.
        """
        while True:
            if self._rpolicy is not None and self._stall_failed:
                failed = self._stall_failed
                self._stall_failed = []
                for running in failed:
                    if id(running) in self._active:
                        self._fail_attempt(
                            running, now, "stream stalled at zero rate"
                        )
            if self._freed_nodes:
                self._freed_nodes.clear()
                self._launch_waiting(now)
            if self._rpolicy is not None and self._spec_candidates:
                self._launch_speculative(now)
            if not self._dirty_resources:
                if self._rpolicy is not None and (
                    self._stall_failed or self._freed_nodes
                ):
                    continue
                return
            dirty = self._dirty_resources
            self._dirty_resources = {}
            for component in self._components(dirty):
                self._rebalance_component(component, now)

    def _mark_dirty(self, resource: Resource) -> None:
        self._dirty_resources[id(resource)] = resource

    @staticmethod
    def _components(dirty: dict[int, Resource]) -> list[list[Resource]]:
        """Group dirty resources into coupling components.

        Two resources are coupled when a stream is bound to both (a remote
        shuffle-read stream on disk + NIC); the closure pulls in coupled
        resources even if they were not dirtied directly.
        """
        components: list[list[Resource]] = []
        seen: set[int] = set()
        for resource in dirty.values():
            if id(resource) in seen:
                continue
            component: list[Resource] = []
            frontier = [resource]
            seen.add(id(resource))
            while frontier:
                current = frontier.pop()
                component.append(current)
                for stream in current.streams:
                    for other in stream.resources:
                        if id(other) not in seen:
                            seen.add(id(other))
                            frontier.append(other)
            components.append(component)
        return components

    def _rebalance_component(self, component: list[Resource], now: float) -> None:
        before: dict[int, tuple[SharedStream, float]] = {}
        for resource in component:
            for stream in resource.streams:
                before[stream.stream_id] = (stream, stream.rate)
        if len(component) == 1 and all(
            len(stream.resources) == 1 for stream, _ in before.values()
        ):
            # Singly-bound streams on one resource: the exact historical
            # water-filling arithmetic (bit-identical default path).
            component[0].rebalance()
        else:
            rebalance_coupled(component)
        for stream, old_rate in before.values():
            if self._rpolicy is not None and stream.stream_id not in self._owner:
                # Cancelled mid-loop: a first-finisher win earlier in this
                # iteration tore down its losing twin's streams.
                continue
            if stream.rate == old_rate:
                if stream.rate <= 0.0 and not stream.done:
                    self._note_stall(stream, now)
                continue
            self._materialize(stream, old_rate, now)
            if stream.done:
                self._complete_stream(stream, now)
            else:
                self._reschedule(stream, now)

    @staticmethod
    def _materialize(stream: SharedStream, old_rate: float, now: float) -> None:
        """Apply the progress accrued at the stream's previous rate."""
        elapsed = now - stream.last_update
        if elapsed > 0.0 and old_rate > 0.0:
            stream.remaining_bytes -= old_rate * elapsed
            if stream.remaining_bytes < _BYTE_EPS:
                stream.remaining_bytes = 0.0
        stream.last_update = now

    def _reschedule(self, stream: SharedStream, now: float) -> None:
        stream.epoch += 1
        if stream.rate > 0.0:
            stream.stalled = False
            self._stalled.pop(stream.stream_id, None)
            finish = now + stream.remaining_bytes / stream.rate
            heapq.heappush(
                self._heap,
                (finish, next(self._seq), _EV_STREAM, stream, stream.epoch),
            )
            return
        self._note_stall(stream, now)

    def _note_stall(self, stream: SharedStream, now: float) -> None:
        """Zero rate with work remaining: one strike, then a hard error.

        A second consecutive zero-rate allocation can never finish — fail
        loudly naming the culprit instead of hanging until ``max_events``.
        With a retry policy the stall becomes a *task failure* instead:
        the second strike defers the owning attempt to :meth:`_settle`
        (this runs mid-rebalance, so streams cannot be detached here),
        and a quiet stall that never gets a second look is bounded by an
        _EV_STALL deadline ``stall_timeout_seconds`` out — stale if the
        stream recovers (epoch bump), fatal to the attempt if not.
        """
        if stream.stalled:
            if self._rpolicy is not None:
                owner = self._owner.get(stream.stream_id)
                if owner is not None:
                    self._stall_failed.append(owner)
                return
            raise SimulationError(
                f"stream stalled at rate 0 across consecutive events:"
                f" {stream.describe()}"
            )
        stream.stalled = True
        self._stalled[stream.stream_id] = stream
        if self._rpolicy is not None:
            deadline = now + self._rpolicy.retry.stall_timeout_seconds
            heapq.heappush(
                self._heap,
                (deadline, next(self._seq), _EV_STALL, stream, stream.epoch),
            )

    def _process_stall(self, stream: SharedStream, now: float) -> None:
        """A stall deadline expired with the stream still at rate zero."""
        if stream.done or not stream.stalled:
            return
        owner = self._owner.get(stream.stream_id)
        if owner is not None and id(owner) in self._active:
            self._fail_attempt(owner, now, "stream stalled at zero rate")

    def _schedule_compute(self, running: _Running, now: float) -> None:
        finish = now + running.compute_remaining
        heapq.heappush(
            self._heap,
            (finish, next(self._seq), _EV_COMPUTE, running, running.epoch),
        )

    def _raise_stuck(self) -> None:
        if self._stalled:
            stuck = ", ".join(s.describe() for s in self._stalled.values())
            raise SimulationError(f"all remaining streams are stalled at rate 0: {stuck}")
        raise SimulationError(
            "no active tasks but work remains; scheduler invariant broken"
        )

    # -- resilience: speculation, retry, blacklisting ----------------------

    def _eligible_nodes(self) -> list[Node]:
        """Alive, non-blacklisted nodes — falling back to all alive nodes
        when the blacklist would otherwise leave nowhere to schedule."""
        alive = [
            node for node in self.cluster.slaves
            if node.name not in self._dead_nodes
        ]
        if self._blacklist is None:
            return alive
        ok = [node for node in alive if not self._blacklist.is_excluded(node.name)]
        return ok or alive

    def _strike(self, name: str) -> None:
        """Charge one blacklist strike; on exclusion, drain the node's queue."""
        if self._blacklist is None:
            return
        alive = [
            node.name for node in self.cluster.slaves
            if node.name not in self._dead_nodes
        ]
        if not self._blacklist.strike(name, survivors=alive):
            return
        queue = self._pending.get(name)
        if not queue:
            return
        moved = sorted(queue, key=lambda t: t.task_id)
        queue.clear()
        targets = [node for node in self._eligible_nodes() if node.name != name]
        if not targets:  # pragma: no cover - exclusion guarantees a survivor
            targets = [
                node for node in self.cluster.slaves
                if node.name not in self._dead_nodes and node.name != name
            ]
        for index, task in enumerate(moved):
            self._pending[targets[index % len(targets)].name].append(task)
        self._freed_nodes.update(node.name for node in targets)

    def _cancel_attempt(self, running: _Running, release_slot: bool = True) -> None:
        """Tear one attempt down: streams detached, heap entries voided."""
        running.epoch += 1
        for stream in running.streams:
            stream.epoch += 1
            self._stalled.pop(stream.stream_id, None)
            self._owner.pop(stream.stream_id, None)
            for resource in list(stream.resources):
                resource.detach(stream, rebalance=False)
                self._mark_dirty(resource)
        running.streams.clear()
        running.open_streams = 0
        self._active.pop(id(running), None)
        self._num_running -= 1
        if release_slot:
            self._cores[running.node.name].release()
            self._freed_nodes.add(running.node.name)

    def _fail_attempt(
        self,
        running: _Running,
        now: float,
        reason: str,
        release_slot: bool = True,
    ) -> None:
        """One attempt died; charge it and schedule recovery.

        If a twin attempt (speculative duplicate) is still running the
        task survives on it and only the blacklist is charged.  Otherwise
        the failure counts against the task's attempt budget, escalating
        through stage re-attempts to :class:`StageFailedError`; the retry
        is delayed by the policy's exponential backoff and lands on the
        most-free eligible node when it fires.
        """
        record = running.record
        assert record is not None and self._rpolicy is not None
        self._cancel_attempt(running, release_slot=release_slot)
        if running in record.running:
            record.running.remove(running)
        record.failed_nodes.add(running.node.name)
        self._strike(running.node.name)
        if record.completed or record.running:
            return
        retry = self._rpolicy.retry
        record.failures += 1
        failures = record.failures
        if failures >= retry.max_task_attempts:
            record.stage_reattempts += 1
            self._res_reattempts += 1
            if record.stage_reattempts >= retry.max_stage_attempts:
                raise StageFailedError(
                    self.stage_name,
                    record.task.task_id,
                    failures,
                    record.stage_reattempts,
                    reason,
                )
            record.failures = 0
        delay = retry.backoff_for(failures)
        self._res_retries += 1
        self._res_backoff += delay
        heapq.heappush(
            self._heap, (now + delay, next(self._seq), _EV_RETRY, record, 0)
        )

    def _process_retry(self, record: _TaskRecord, now: float) -> None:
        """A backoff expired: resubmit the task onto an eligible node."""
        if record.completed or record.running:
            return
        target = self._retry_target(record)
        self._pending[target.name].append(record.task)
        self._freed_nodes.add(target.name)

    def _retry_target(self, record: _TaskRecord) -> Node:
        """Deterministic retry placement: prefer nodes the task has not
        failed on, then the most free slots, then cluster order."""
        nodes = self._eligible_nodes()
        preferred = [
            node for node in nodes if node.name not in record.failed_nodes
        ]
        best: Node | None = None
        for node in preferred or nodes:
            if best is None or (
                self._cores[node.name].free > self._cores[best.name].free
            ):
                best = node
        assert best is not None  # blacklist/kill paths guarantee a survivor
        return best

    def _rescue_stalled(self, now: float) -> bool:
        """Heap empty but streams stalled: with a retry policy, convert
        the stalls into attempt failures so retries can repopulate it."""
        if self._rpolicy is None or not self._stalled:
            return False
        owners: list[_Running] = []
        seen: set[int] = set()
        for stream in self._stalled.values():
            running = self._owner.get(stream.stream_id)
            if running is not None and id(running) not in seen:
                seen.add(id(running))
                owners.append(running)
        owners.sort(key=lambda r: (r.task.task_id, r.speculative))
        failed = False
        for running in owners:
            if id(running) in self._active:
                self._fail_attempt(running, now, "stream stalled at zero rate")
                failed = True
        return failed

    def _finish_task(self, running: _Running, now: float) -> None:
        """First finisher wins: complete the task, cancel the losers."""
        record = running.record
        assert record is not None
        if running in record.running:
            record.running.remove(running)
        record.completed = True
        task = running.task
        task.start_time = running.attempt_start
        if running.speculative:
            self._res_spec_wins += 1
        for loser in list(record.running):
            self._cancel_attempt(loser)
        record.running.clear()
        self._remaining_tasks -= 1
        if self._rpolicy is not None and self._rpolicy.speculation is not None:
            self._finished_durations.append(now - running.attempt_start)
            self._update_speculation(now)

    def _arm_spec_check(self, running: _Running, now: float) -> None:
        """Schedule the straggler check for a freshly launched attempt.

        Needed for attempts that start *after* the quantile gate opened:
        no finish event will re-examine them until it may be too late.
        """
        record = running.record
        if (
            record is None
            or record.spec_scheduled
            or record.spec_event_pending
        ):
            return
        threshold = self._spec_threshold()
        if threshold is None:
            return
        record.spec_event_pending = True
        heapq.heappush(
            self._heap,
            (running.attempt_start + threshold, next(self._seq),
             _EV_SPEC, record, 0),
        )

    def _spec_threshold(self) -> float | None:
        """Elapsed time beyond which a lone running attempt is a straggler
        (``multiplier`` x the median finished duration), or ``None`` while
        too few tasks have finished for the quantile gate."""
        spec = self._rpolicy.speculation if self._rpolicy else None
        if spec is None:
            return None
        durations = self._finished_durations
        needed = max(spec.min_finished, math.ceil(spec.quantile * self._total_tasks))
        if len(durations) < needed:
            return None
        ordered = sorted(durations)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            median = ordered[mid]
        else:
            median = 0.5 * (ordered[mid - 1] + ordered[mid])
        return spec.multiplier * median

    def _update_speculation(self, now: float) -> None:
        """Re-examine running tasks against the (possibly new) threshold.

        Tasks already past it queue a duplicate; the rest get an _EV_SPEC
        re-check at the moment they would cross it (re-validated when it
        fires, since more finishes may have moved the median).
        """
        threshold = self._spec_threshold()
        if threshold is None:
            return
        for record in self._records_order:
            if record.completed or record.spec_scheduled:
                continue
            if len(record.running) != 1:
                continue
            attempt = record.running[0]
            elapsed = now - attempt.attempt_start
            if elapsed + _TIME_EPS >= threshold:
                record.spec_scheduled = True
                self._spec_candidates.append(record)
                self._strike(attempt.node.name)
            elif not record.spec_event_pending:
                record.spec_event_pending = True
                heapq.heappush(
                    self._heap,
                    (attempt.attempt_start + threshold, next(self._seq),
                     _EV_SPEC, record, 0),
                )

    def _process_spec(self, record: _TaskRecord, now: float) -> None:
        """An _EV_SPEC re-check fired; decide or re-arm against the
        current threshold (the median may have moved since scheduling)."""
        record.spec_event_pending = False
        if record.completed or record.spec_scheduled or len(record.running) != 1:
            return
        threshold = self._spec_threshold()
        if threshold is None:
            return
        attempt = record.running[0]
        elapsed = now - attempt.attempt_start
        if elapsed + _TIME_EPS >= threshold:
            record.spec_scheduled = True
            self._spec_candidates.append(record)
            self._strike(attempt.node.name)
        else:
            record.spec_event_pending = True
            heapq.heappush(
                self._heap,
                (attempt.attempt_start + threshold, next(self._seq),
                 _EV_SPEC, record, 0),
            )

    def _launch_speculative(self, now: float) -> None:
        """Start queued duplicates on free slots of eligible nodes that do
        not already host an attempt; unlaunchable candidates stay queued."""
        still: list[_TaskRecord] = []
        for record in self._spec_candidates:
            if record.completed or not record.running:
                # Finished, or failed into the retry path meanwhile.
                continue
            hosts = {r.node.name for r in record.running}
            target: Node | None = None
            for node in self._eligible_nodes():
                if node.name in hosts or self._cores[node.name].free <= 0:
                    continue
                if target is None or (
                    self._cores[node.name].free > self._cores[target.name].free
                ):
                    target = node
            if target is None:
                still.append(record)
                continue
            pool = self._cores[target.name]
            pool.acquire()
            self._num_running += 1
            self._res_attempts += 1
            self._res_spec_launched += 1
            running = _Running(
                task=record.task,
                node=target,
                attempt_start=now,
                record=record,
                speculative=True,
            )
            record.running.append(running)
            if not self._enter_phase(running, now):
                pool.release()
                self._num_running -= 1
                self._finish_task(running, now)
                self._freed_nodes.add(target.name)
            else:
                self._active[id(running)] = running
        self._spec_candidates = still

    def resilience_summary(self) -> StageResilience | None:
        """What the mitigations did over the last :meth:`run`, or ``None``
        when the engine has no policy (the bit-identical default)."""
        if self._rpolicy is None:
            return None
        return StageResilience(
            attempts=self._res_attempts,
            speculative_launched=self._res_spec_launched,
            speculative_wins=self._res_spec_wins,
            task_retries=self._res_retries,
            stage_reattempts=self._res_reattempts,
            backoff_seconds=self._res_backoff,
            blacklisted=(
                self._blacklist.excluded if self._blacklist is not None else ()
            ),
        )

    # -- reporting ---------------------------------------------------------

    def core_utilization(self, makespan: float) -> float:
        """Fraction of core-time occupied over a completed run."""
        if makespan <= 0:
            return 0.0
        total = makespan * self.cluster.num_slaves * self.cores_per_node
        return self.core_busy_seconds / total

    def device_utilization(self, device_name: str, is_write: bool,
                           makespan: float) -> float:
        """Fraction of a run one device direction spent with active I/O."""
        if makespan <= 0:
            return 0.0
        return self.device_busy_seconds.get((device_name, is_write), 0.0) / makespan

    def _account_busy_time(self, dt: float) -> None:
        if dt <= 0.0:
            return
        self.core_busy_seconds += self._num_running * dt
        for resource, key in self._rate_resources:
            if resource.num_active:
                self.device_busy_seconds[key] = (
                    self.device_busy_seconds.get(key, 0.0) + dt
                )

    # -- phase entry -------------------------------------------------------

    def _enter_phase(self, running: _Running, now: float) -> bool:
        """Advance ``running`` into its next non-empty phase.

        Returns False when the task ran out of phases (it is finished and
        its ``finish_time`` is stamped).
        """
        task = running.task
        while running.phase_index < len(task.phases):
            phase = task.phases[running.phase_index]
            if isinstance(phase, ComputePhase):
                if phase.seconds > _TIME_EPS:
                    seconds = phase.seconds
                    if self._slowdowns:
                        factor = self._slowdowns.get(running.node.name)
                        if factor is not None:
                            seconds = seconds * factor
                    running.compute_remaining = seconds
                    self._schedule_compute(running, now)
                    return True
            elif isinstance(phase, IoPhase):
                if phase.total_bytes > _BYTE_EPS:
                    self._open_io(running, phase, now)
                    return True
            else:  # pragma: no cover - phase union is closed
                raise SimulationError(f"unknown phase type: {phase!r}")
            running.phase_index += 1
        task.finish_time = now
        return False

    def _open_io(self, running: _Running, phase: IoPhase, now: float) -> None:
        """Create the phase's stream(s) and attach them (balance deferred)."""
        node = running.node
        if self.iostat is not None:
            device = node.device_for(phase.role)
            self.iostat.record(
                device_name=device.name,
                total_bytes=phase.total_bytes,
                request_size=phase.request_size,
                is_write=phase.is_write,
            )
        remote_fraction = 0.0
        if (
            phase.via_network
            and not phase.is_write
            and self.network is not None
            and self.cluster.num_slaves > 1
        ):
            remote_fraction = self.network.remote_fraction(self.cluster.num_slaves)
        disk = self._resource_for(node, phase.role, phase.is_write)
        cap = phase.per_stream_cap
        if self._slowdowns and cap is not None:
            # A straggler's software path (decompression, deserialization)
            # runs slower too: its per-stream cap T shrinks with it.
            factor = self._slowdowns.get(node.name)
            if factor is not None:
                cap = cap / factor
        splits: list[tuple[float, float | None, list[Resource], str]] = []
        if remote_fraction <= 0.0:
            splits.append((phase.total_bytes, cap, [disk], "local"))
        else:
            # Split the phase in the remote proportion; the software-path
            # cap T splits with it so the pair still totals at most T.
            local_share = 1.0 - remote_fraction
            splits.append(
                (
                    phase.total_bytes * local_share,
                    cap * local_share if cap is not None else None,
                    [disk],
                    "local",
                )
            )
            nic = self.registry.get(("nic", node.name))
            splits.append(
                (
                    phase.total_bytes * remote_fraction,
                    cap * remote_fraction if cap is not None else None,
                    [disk, nic],
                    "remote",
                )
            )
        for total_bytes, stream_cap, resources, tag in splits:
            if total_bytes <= _BYTE_EPS:
                continue
            stream = SharedStream(
                remaining_bytes=total_bytes,
                request_size=phase.request_size,
                per_stream_cap=stream_cap,
                label=f"task {running.task.task_id} {tag} {phase.role}"
                f" {'write' if phase.is_write else 'read'}",
                last_update=now,
            )
            for resource in resources:
                resource.attach(stream, rebalance=False)
                self._mark_dirty(resource)
            self._owner[stream.stream_id] = running
            running.streams.append(stream)
            running.open_streams += 1
