"""The fluid discrete-event loop, over generic shared resources.

State advances between *phase completion* events.  Between events every
I/O stream progresses at the rate its resources allocated (see
:mod:`repro.resources`) and every compute phase progresses at 1 s/s.
Completion times are kept in an event heap; a stream's ``remaining_bytes``
is only materialized when its rate actually changes (rate-epoch
invalidation), so an event touches the streams whose allocation changed
rather than every active stream.  At each event the engine:

1. retires phases whose heap entry came due,
2. moves their tasks to the next phase (or finishes them, freeing a core
   slot), launching waiting tasks onto freed slots, and
3. re-balances exactly the resources whose membership changed —
   re-scheduling only streams whose rate moved.

Tasks hold one core slot from launch to finish — like Spark tasks, whose
I/O (shuffle read, HDFS read/write) happens on the task's own thread.
The pipeline overlap of Fig. 6 emerges naturally: while one task
computes, other tasks' I/O proceeds.

Contention is expressed entirely through :mod:`repro.resources`:

- each node's executor cores are a :class:`SlotPool`;
- each storage device direction is a :class:`DeviceResource` (per array
  *member* when a :class:`~repro.storage.array.DiskArray` asks for
  per-member mode — streams are striped round-robin across members, like
  Spark round-robins files across local dirs);
- when a :class:`~repro.cluster.network.NetworkModel` is passed, each
  node gets a NIC :class:`LinkResource` and shuffle-read phases
  (``via_network=True``) split into a local-disk stream plus a remote
  stream bound to both the disk and the NIC, in the proportion
  ``NetworkModel.remote_fraction`` dictates.  With no network configured
  (the default) the wire is treated as infinite and results recover the
  paper's disk-only numbers exactly.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkModel
from repro.cluster.node import Node
from repro.errors import SimulationError
from repro.faults.injector import (
    FaultAction,
    FaultInjector,
    JitterToggle,
    NodeKill,
    ScaleToggle,
)
from repro.faults.plan import FaultPlan
from repro.resources import (
    DeviceResource,
    LinkResource,
    Resource,
    ResourceRegistry,
    SharedStream,
    SlotPool,
    rebalance_coupled,
)
from repro.simulator.task import ComputePhase, IoPhase, SimTask
from repro.storage.array import DiskArray
from repro.storage.iostat import IostatCollector

#: Remaining work below these thresholds counts as complete.
_BYTE_EPS = 1e-6
_TIME_EPS = 1e-9

#: Heap entry kinds.
_EV_STREAM = 0
_EV_COMPUTE = 1
_EV_FAULT = 2


@dataclass
class _Running:
    """Book-keeping for one in-flight task."""

    task: SimTask
    node: Node
    phase_index: int = 0
    #: I/O streams of the current phase still moving bytes (a phase may
    #: hold several when a shuffle read splits into local + remote).
    open_streams: int = 0
    compute_remaining: float = 0.0
    #: Bumped at every phase transition; stale heap entries are dropped.
    epoch: int = 0
    streams: list[SharedStream] = field(default_factory=list)

    @property
    def in_io(self) -> bool:
        return self.open_streams > 0


class SimulationEngine:
    """Runs task sets on a cluster with ``P`` executor cores per node."""

    def __init__(
        self,
        cluster: Cluster,
        cores_per_node: int,
        iostat: IostatCollector | None = None,
        max_events: int = 50_000_000,
        network: NetworkModel | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        if cores_per_node <= 0:
            raise SimulationError("cores per node must be positive")
        for node in cluster.slaves:
            if cores_per_node > node.num_cores:
                raise SimulationError(
                    f"requested {cores_per_node} executor cores but node"
                    f" {node.name} has only {node.num_cores}"
                )
        self.cluster = cluster
        self.cores_per_node = cores_per_node
        self.iostat = iostat
        self.max_events = max_events
        self.network = network
        self.registry = ResourceRegistry()
        self._cores: dict[str, SlotPool] = {}
        #: Round-robin cursors for striping streams across array members,
        #: keyed like the device resources.
        self._stripe: dict[tuple, int] = {}
        for node in cluster.slaves:
            self._cores[node.name] = self.registry.register(
                ("cores", node.name), SlotPool(f"{node.name}:cores", cores_per_node)
            )  # type: ignore[assignment]
            # One resource per *physical* device direction (HDFS and local
            # may share a device); per-member arrays get one per member.
            for device in (node.hdfs_device, node.local_device):
                for is_write in (False, True):
                    key = ("device", id(device), is_write)
                    if key in self.registry:
                        continue
                    if isinstance(device, DiskArray) and device.per_member:
                        for index, member in enumerate(device.members):
                            self.registry.register(
                                key + (index,), DeviceResource(member, is_write)
                            )
                        self._stripe[key] = 0
                    else:
                        self.registry.register(key, DeviceResource(device, is_write))
            if network is not None:
                self.registry.register(
                    ("nic", node.name),
                    LinkResource(f"{node.name}:nic", network.link_bandwidth),
                )
        #: (resource, busy-accounting key) pairs, computed once.
        self._rate_resources: list[tuple[Resource, tuple[str, bool]]] = []
        for resource in self.registry.values():
            if isinstance(resource, DeviceResource):
                self._rate_resources.append(
                    (resource, (resource.device.name, resource.is_write))
                )
            elif isinstance(resource, LinkResource):
                self._rate_resources.append((resource, (resource.name, False)))
        #: Seconds each (device name, is_write) direction had >= 1 active
        #: stream, accumulated by :meth:`run`.
        self.device_busy_seconds: dict[tuple[str, bool], float] = {}
        #: Core-seconds occupied by tasks (held during I/O and compute).
        self.core_busy_seconds: float = 0.0
        # -- fault injection ------------------------------------------------
        self.faults = faults
        self._injector: FaultInjector | None = None
        self._slowdowns: dict[str, float] = {}
        if faults is not None and faults.faults:
            self._injector = FaultInjector(faults, cluster, self.registry, network)
            self._slowdowns = self._injector.slowdowns
        # -- per-run state (reset in :meth:`run`) --------------------------
        self._heap: list[tuple] = []
        self._seq = itertools.count()
        self._dirty: set[int] = set()
        self._dirty_resources: dict[int, Resource] = {}
        self._owner: dict[int, _Running] = {}
        self._stalled: dict[int, SharedStream] = {}
        self._freed_nodes: set[str] = set()
        self._dead_nodes: set[str] = set()
        self._active: dict[int, _Running] = {}

    # -- resource resolution ----------------------------------------------

    def _resource_for(self, node: Node, role: str, is_write: bool) -> Resource:
        """Resolve a phase's device resource, striping across array members."""
        device = node.device_for(role)
        key = ("device", id(device), is_write)
        if key in self._stripe:
            members = len(device.members)  # type: ignore[attr-defined]
            cursor = self._stripe[key]
            self._stripe[key] = (cursor + 1) % members
            return self.registry.get(key + (cursor,))
        return self.registry.get(key)

    # -- the event loop ----------------------------------------------------

    def run(self, tasks: list[SimTask]) -> float:
        """Execute ``tasks`` to completion; returns the makespan in seconds.

        Tasks are assigned to nodes round-robin at submission (Spark's
        locality-free scheduling under a uniform data spread) and started
        FIFO as cores free up.  Submission order is canonicalized by
        ``task_id`` so that shuffling a task list cannot change the
        schedule.  Task ``start_time``/``finish_time`` are filled in.
        """
        if not tasks:
            return 0.0
        tasks = sorted(tasks, key=lambda t: t.task_id)
        pending: dict[str, deque[SimTask]] = {
            node.name: deque() for node in self.cluster.slaves
        }
        for index, task in enumerate(tasks):
            node = self.cluster.slaves[index % self.cluster.num_slaves]
            pending[node.name].append(task)

        self._heap = []
        self._seq = itertools.count()
        self._dirty_resources = {}
        self._owner = {}
        self._stalled = {}
        self._freed_nodes = set()
        self._dead_nodes = set()
        self._active = {}
        self._pending = pending
        self._remaining_tasks = len(tasks)
        self._num_running = 0
        if self._injector is not None:
            self._injector.reset()
            for at_seconds, action in self._injector.initial_actions():
                heapq.heappush(
                    self._heap, (at_seconds, next(self._seq), _EV_FAULT, action, 0)
                )

        now = 0.0
        self._launch_waiting(now)
        self._settle(now)
        events = 0
        while self._remaining_tasks > 0:
            events += 1
            if events > self.max_events:
                raise SimulationError(
                    f"exceeded {self.max_events} events; simulation is stuck"
                )
            batch = self._pop_batch()
            if not batch:
                self._raise_stuck()
            dt = batch[0][0] - now
            self._account_busy_time(dt)
            now = batch[0][0]
            for entry in batch:
                self._process_entry(entry, now)
            self._settle(now)
        return now

    def _pop_batch(self) -> list[tuple]:
        """Pop all valid entries due within ``_TIME_EPS`` of the earliest."""
        heap = self._heap
        batch: list[tuple] = []
        while heap:
            entry = heap[0]
            if not self._entry_valid(entry):
                heapq.heappop(heap)
                continue
            if batch and entry[0] > batch[0][0] + _TIME_EPS:
                break
            batch.append(heapq.heappop(heap))
        return batch

    @staticmethod
    def _entry_valid(entry: tuple) -> bool:
        _, _, kind, obj, epoch = entry
        return obj.epoch == epoch

    def _process_entry(self, entry: tuple, now: float) -> None:
        _, _, kind, obj, epoch = entry
        if obj.epoch != epoch:
            # Invalidated by an earlier entry of the same batch.
            return
        if kind == _EV_FAULT:
            self._process_fault(obj, now)
        elif kind == _EV_COMPUTE:
            running = obj
            running.compute_remaining = 0.0
            self._transition(running, now)
        else:
            stream = obj
            stream.remaining_bytes = 0.0
            self._complete_stream(stream, now)

    def _process_fault(self, action: FaultAction, now: float) -> None:
        """Execute one timed fault action from the heap."""
        assert self._injector is not None
        if isinstance(action, ScaleToggle):
            for resource in action.resources:
                self._injector.toggle(resource, action.factor, action.on)
                self._mark_dirty(resource)
        elif isinstance(action, JitterToggle):
            for resource in action.resources:
                self._injector.toggle(resource, action.factor, action.entering)
                self._mark_dirty(resource)
            heapq.heappush(
                self._heap,
                (now + action.next_delay, next(self._seq), _EV_FAULT,
                 action.flipped(), 0),
            )
        elif isinstance(action, NodeKill):
            self._kill_node(action.node_name, now)
        else:  # pragma: no cover - action union is closed
            raise SimulationError(f"unknown fault action: {action!r}")

    def _kill_node(self, name: str, now: float) -> None:
        """Take a node out of service; its tasks re-execute on survivors.

        In-flight tasks lose all progress (their streams are detached and
        their compute abandoned) and are re-queued from scratch, together
        with the dead node's pending queue, round-robin across the
        surviving nodes — Spark's task re-execution on executor loss.
        """
        if name in self._dead_nodes:
            return
        self._dead_nodes.add(name)
        survivors = [
            node for node in self.cluster.slaves if node.name not in self._dead_nodes
        ]
        requeue: list[SimTask] = []
        for running in [r for r in self._active.values() if r.node.name == name]:
            running.epoch += 1  # drop any scheduled compute entry
            for stream in running.streams:
                stream.epoch += 1  # drop any scheduled stream entry
                self._stalled.pop(stream.stream_id, None)
                self._owner.pop(stream.stream_id, None)
                for resource in list(stream.resources):
                    resource.detach(stream, rebalance=False)
                    self._mark_dirty(resource)
            running.streams.clear()
            running.open_streams = 0
            del self._active[id(running)]
            self._num_running -= 1
            task = running.task
            task.start_time = -1.0
            task.finish_time = -1.0
            requeue.append(task)
        queue = self._pending[name]
        requeue.extend(queue)
        queue.clear()
        if not survivors:
            if self._remaining_tasks > 0:
                raise SimulationError(
                    f"node {name} died leaving no live nodes with"
                    f" {self._remaining_tasks} task(s) unfinished"
                )
            return
        requeue.sort(key=lambda t: t.task_id)
        for index, task in enumerate(requeue):
            self._pending[survivors[index % len(survivors)].name].append(task)
        if requeue:
            self._freed_nodes.update(node.name for node in survivors)

    def _complete_stream(self, stream: SharedStream, now: float) -> None:
        stream.epoch += 1  # invalidate any scheduled entry
        self._stalled.pop(stream.stream_id, None)
        for resource in list(stream.resources):
            resource.detach(stream, rebalance=False)
            self._mark_dirty(resource)
        running = self._owner.pop(stream.stream_id)
        running.streams.remove(stream)
        running.open_streams -= 1
        if running.open_streams == 0:
            self._transition(running, now)

    def _transition(self, running: _Running, now: float) -> None:
        """Move a task past its completed phase; free its slot if done."""
        running.epoch += 1
        running.phase_index += 1
        if not self._enter_phase(running, now):
            self._active.pop(id(running), None)
            self._cores[running.node.name].release()
            self._num_running -= 1
            self._remaining_tasks -= 1
            self._freed_nodes.add(running.node.name)

    def _launch_waiting(self, now: float) -> None:
        for node in self.cluster.slaves:
            if node.name in self._dead_nodes:
                continue
            queue = self._pending[node.name]
            pool = self._cores[node.name]
            while queue and pool.free > 0:
                task = queue.popleft()
                pool.acquire()
                self._num_running += 1
                task.start_time = now
                running = _Running(task=task, node=node)
                if not self._enter_phase(running, now):
                    pool.release()
                    self._num_running -= 1
                    self._remaining_tasks -= 1
                else:
                    self._active[id(running)] = running

    def _settle(self, now: float) -> None:
        """Launch onto freed slots and re-balance dirty resources, to fixpoint.

        Materializing remaining bytes at a rate change can itself complete
        a stream (the sub-:data:`_BYTE_EPS` clamp), which frees slots and
        dirties more resources — hence the loop.
        """
        while True:
            if self._freed_nodes:
                self._freed_nodes.clear()
                self._launch_waiting(now)
            if not self._dirty_resources:
                return
            dirty = self._dirty_resources
            self._dirty_resources = {}
            for component in self._components(dirty):
                self._rebalance_component(component, now)

    def _mark_dirty(self, resource: Resource) -> None:
        self._dirty_resources[id(resource)] = resource

    @staticmethod
    def _components(dirty: dict[int, Resource]) -> list[list[Resource]]:
        """Group dirty resources into coupling components.

        Two resources are coupled when a stream is bound to both (a remote
        shuffle-read stream on disk + NIC); the closure pulls in coupled
        resources even if they were not dirtied directly.
        """
        components: list[list[Resource]] = []
        seen: set[int] = set()
        for resource in dirty.values():
            if id(resource) in seen:
                continue
            component: list[Resource] = []
            frontier = [resource]
            seen.add(id(resource))
            while frontier:
                current = frontier.pop()
                component.append(current)
                for stream in current.streams:
                    for other in stream.resources:
                        if id(other) not in seen:
                            seen.add(id(other))
                            frontier.append(other)
            components.append(component)
        return components

    def _rebalance_component(self, component: list[Resource], now: float) -> None:
        before: dict[int, tuple[SharedStream, float]] = {}
        for resource in component:
            for stream in resource.streams:
                before[stream.stream_id] = (stream, stream.rate)
        if len(component) == 1 and all(
            len(stream.resources) == 1 for stream, _ in before.values()
        ):
            # Singly-bound streams on one resource: the exact historical
            # water-filling arithmetic (bit-identical default path).
            component[0].rebalance()
        else:
            rebalance_coupled(component)
        for stream, old_rate in before.values():
            if stream.rate == old_rate:
                if stream.rate <= 0.0 and not stream.done:
                    self._note_stall(stream)
                continue
            self._materialize(stream, old_rate, now)
            if stream.done:
                self._complete_stream(stream, now)
            else:
                self._reschedule(stream, now)

    @staticmethod
    def _materialize(stream: SharedStream, old_rate: float, now: float) -> None:
        """Apply the progress accrued at the stream's previous rate."""
        elapsed = now - stream.last_update
        if elapsed > 0.0 and old_rate > 0.0:
            stream.remaining_bytes -= old_rate * elapsed
            if stream.remaining_bytes < _BYTE_EPS:
                stream.remaining_bytes = 0.0
        stream.last_update = now

    def _reschedule(self, stream: SharedStream, now: float) -> None:
        stream.epoch += 1
        if stream.rate > 0.0:
            stream.stalled = False
            self._stalled.pop(stream.stream_id, None)
            finish = now + stream.remaining_bytes / stream.rate
            heapq.heappush(
                self._heap,
                (finish, next(self._seq), _EV_STREAM, stream, stream.epoch),
            )
            return
        self._note_stall(stream)

    def _note_stall(self, stream: SharedStream) -> None:
        """Zero rate with work remaining: one strike, then a hard error.

        A second consecutive zero-rate allocation can never finish — fail
        loudly naming the culprit instead of hanging until ``max_events``.
        """
        if stream.stalled:
            raise SimulationError(
                f"stream stalled at rate 0 across consecutive events:"
                f" {stream.describe()}"
            )
        stream.stalled = True
        self._stalled[stream.stream_id] = stream

    def _schedule_compute(self, running: _Running, now: float) -> None:
        finish = now + running.compute_remaining
        heapq.heappush(
            self._heap,
            (finish, next(self._seq), _EV_COMPUTE, running, running.epoch),
        )

    def _raise_stuck(self) -> None:
        if self._stalled:
            stuck = ", ".join(s.describe() for s in self._stalled.values())
            raise SimulationError(f"all remaining streams are stalled at rate 0: {stuck}")
        raise SimulationError(
            "no active tasks but work remains; scheduler invariant broken"
        )

    # -- reporting ---------------------------------------------------------

    def core_utilization(self, makespan: float) -> float:
        """Fraction of core-time occupied over a completed run."""
        if makespan <= 0:
            return 0.0
        total = makespan * self.cluster.num_slaves * self.cores_per_node
        return self.core_busy_seconds / total

    def device_utilization(self, device_name: str, is_write: bool,
                           makespan: float) -> float:
        """Fraction of a run one device direction spent with active I/O."""
        if makespan <= 0:
            return 0.0
        return self.device_busy_seconds.get((device_name, is_write), 0.0) / makespan

    def _account_busy_time(self, dt: float) -> None:
        if dt <= 0.0:
            return
        self.core_busy_seconds += self._num_running * dt
        for resource, key in self._rate_resources:
            if resource.num_active:
                self.device_busy_seconds[key] = (
                    self.device_busy_seconds.get(key, 0.0) + dt
                )

    # -- phase entry -------------------------------------------------------

    def _enter_phase(self, running: _Running, now: float) -> bool:
        """Advance ``running`` into its next non-empty phase.

        Returns False when the task ran out of phases (it is finished and
        its ``finish_time`` is stamped).
        """
        task = running.task
        while running.phase_index < len(task.phases):
            phase = task.phases[running.phase_index]
            if isinstance(phase, ComputePhase):
                if phase.seconds > _TIME_EPS:
                    seconds = phase.seconds
                    if self._slowdowns:
                        factor = self._slowdowns.get(running.node.name)
                        if factor is not None:
                            seconds = seconds * factor
                    running.compute_remaining = seconds
                    self._schedule_compute(running, now)
                    return True
            elif isinstance(phase, IoPhase):
                if phase.total_bytes > _BYTE_EPS:
                    self._open_io(running, phase, now)
                    return True
            else:  # pragma: no cover - phase union is closed
                raise SimulationError(f"unknown phase type: {phase!r}")
            running.phase_index += 1
        task.finish_time = now
        return False

    def _open_io(self, running: _Running, phase: IoPhase, now: float) -> None:
        """Create the phase's stream(s) and attach them (balance deferred)."""
        node = running.node
        if self.iostat is not None:
            device = node.device_for(phase.role)
            self.iostat.record(
                device_name=device.name,
                total_bytes=phase.total_bytes,
                request_size=phase.request_size,
                is_write=phase.is_write,
            )
        remote_fraction = 0.0
        if (
            phase.via_network
            and not phase.is_write
            and self.network is not None
            and self.cluster.num_slaves > 1
        ):
            remote_fraction = self.network.remote_fraction(self.cluster.num_slaves)
        disk = self._resource_for(node, phase.role, phase.is_write)
        cap = phase.per_stream_cap
        if self._slowdowns and cap is not None:
            # A straggler's software path (decompression, deserialization)
            # runs slower too: its per-stream cap T shrinks with it.
            factor = self._slowdowns.get(node.name)
            if factor is not None:
                cap = cap / factor
        splits: list[tuple[float, float | None, list[Resource], str]] = []
        if remote_fraction <= 0.0:
            splits.append((phase.total_bytes, cap, [disk], "local"))
        else:
            # Split the phase in the remote proportion; the software-path
            # cap T splits with it so the pair still totals at most T.
            local_share = 1.0 - remote_fraction
            splits.append(
                (
                    phase.total_bytes * local_share,
                    cap * local_share if cap is not None else None,
                    [disk],
                    "local",
                )
            )
            nic = self.registry.get(("nic", node.name))
            splits.append(
                (
                    phase.total_bytes * remote_fraction,
                    cap * remote_fraction if cap is not None else None,
                    [disk, nic],
                    "remote",
                )
            )
        for total_bytes, stream_cap, resources, tag in splits:
            if total_bytes <= _BYTE_EPS:
                continue
            stream = SharedStream(
                remaining_bytes=total_bytes,
                request_size=phase.request_size,
                per_stream_cap=stream_cap,
                label=f"task {running.task.task_id} {tag} {phase.role}"
                f" {'write' if phase.is_write else 'read'}",
                last_update=now,
            )
            for resource in resources:
                resource.attach(stream, rebalance=False)
                self._mark_dirty(resource)
            self._owner[stream.stream_id] = running
            running.streams.append(stream)
            running.open_streams += 1
