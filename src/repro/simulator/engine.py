"""The fluid discrete-event loop.

State advances between *phase completion* events.  Between events every
I/O stream progresses at the rate its device queue allocated (see
:mod:`repro.storage.queue`) and every compute phase progresses at 1 s/s.
At each event the engine:

1. retires phases that reached zero remaining work,
2. moves their tasks to the next phase (or finishes them, freeing a core),
3. launches waiting tasks onto freed cores, and
4. lets the affected device queues re-balance rates.

Tasks hold one core from launch to finish — like Spark tasks, whose I/O
(shuffle read, HDFS read/write) happens on the task's own thread.  The
pipeline overlap of Fig. 6 emerges naturally: while one task computes,
other tasks' I/O proceeds.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.errors import SimulationError
from repro.simulator.task import ComputePhase, IoPhase, SimTask
from repro.storage.iostat import IostatCollector
from repro.storage.queue import DeviceQueue, IoStream

#: Remaining work below these thresholds counts as complete.
_BYTE_EPS = 1e-6
_TIME_EPS = 1e-9


@dataclass
class _Running:
    """Book-keeping for one in-flight task."""

    task: SimTask
    node: Node
    phase_index: int = 0
    stream: IoStream | None = None
    compute_remaining: float = 0.0

    @property
    def in_io(self) -> bool:
        return self.stream is not None


class SimulationEngine:
    """Runs task sets on a cluster with ``P`` executor cores per node."""

    def __init__(
        self,
        cluster: Cluster,
        cores_per_node: int,
        iostat: IostatCollector | None = None,
        max_events: int = 50_000_000,
    ) -> None:
        if cores_per_node <= 0:
            raise SimulationError("cores per node must be positive")
        for node in cluster.slaves:
            if cores_per_node > node.num_cores:
                raise SimulationError(
                    f"requested {cores_per_node} executor cores but node"
                    f" {node.name} has only {node.num_cores}"
                )
        self.cluster = cluster
        self.cores_per_node = cores_per_node
        self.iostat = iostat
        self.max_events = max_events
        # One queue per *physical* device (HDFS and local may share one).
        self._queues: dict[int, DeviceQueue] = {}
        for node in cluster.slaves:
            for device in (node.hdfs_device, node.local_device):
                self._queues.setdefault(id(device), DeviceQueue(device))
        #: Seconds each (device name, is_write) direction had >= 1 active
        #: stream, accumulated by :meth:`run`.
        self.device_busy_seconds: dict[tuple[str, bool], float] = {}
        #: Core-seconds occupied by tasks (held during I/O and compute).
        self.core_busy_seconds: float = 0.0

    def _queue_for(self, node: Node, role: str) -> DeviceQueue:
        return self._queues[id(node.device_for(role))]

    def run(self, tasks: list[SimTask]) -> float:
        """Execute ``tasks`` to completion; returns the makespan in seconds.

        Tasks are assigned to nodes round-robin at submission (Spark's
        locality-free scheduling under a uniform data spread) and started
        FIFO as cores free up.  Task ``start_time``/``finish_time`` fields
        are filled in.
        """
        if not tasks:
            return 0.0
        pending: dict[str, deque[SimTask]] = {
            node.name: deque() for node in self.cluster.slaves
        }
        for index, task in enumerate(tasks):
            node = self.cluster.slaves[index % self.cluster.num_slaves]
            pending[node.name].append(task)

        free_cores = {node.name: self.cores_per_node for node in self.cluster.slaves}
        active: list[_Running] = []
        now = 0.0
        remaining_tasks = len(tasks)

        def launch_waiting() -> None:
            nonlocal remaining_tasks
            for node in self.cluster.slaves:
                queue = pending[node.name]
                while queue and free_cores[node.name] > 0:
                    task = queue.popleft()
                    free_cores[node.name] -= 1
                    task.start_time = now
                    running = _Running(task=task, node=node)
                    if self._enter_phase(running, now):
                        active.append(running)
                    else:
                        free_cores[node.name] += 1
                        remaining_tasks -= 1

        launch_waiting()
        events = 0
        while remaining_tasks > 0:
            events += 1
            if events > self.max_events:
                raise SimulationError(
                    f"exceeded {self.max_events} events; simulation is stuck"
                )
            if not active:
                raise SimulationError(
                    "no active tasks but work remains; scheduler invariant broken"
                )
            dt = self._next_event_dt(active)
            if math.isinf(dt):
                raise SimulationError("all active streams are stalled at rate 0")
            self._account_busy_time(active, dt)
            now += dt
            self._advance(active, dt)
            finished_any = self._retire_completed(active, now)
            if finished_any:
                for running in finished_any:
                    free_cores[running.node.name] += 1
                    remaining_tasks -= 1
                launch_waiting()
        return now

    def core_utilization(self, makespan: float) -> float:
        """Fraction of core-time occupied over a completed run."""
        if makespan <= 0:
            return 0.0
        total = makespan * self.cluster.num_slaves * self.cores_per_node
        return self.core_busy_seconds / total

    def device_utilization(self, device_name: str, is_write: bool,
                           makespan: float) -> float:
        """Fraction of a run one device direction spent with active I/O."""
        if makespan <= 0:
            return 0.0
        return self.device_busy_seconds.get((device_name, is_write), 0.0) / makespan

    def _account_busy_time(self, active: list[_Running], dt: float) -> None:
        if dt <= 0.0:
            return
        self.core_busy_seconds += len(active) * dt
        for queue in self._queues.values():
            directions = {stream.is_write for stream in queue.streams}
            for is_write in directions:
                key = (queue.device.name, is_write)
                self.device_busy_seconds[key] = (
                    self.device_busy_seconds.get(key, 0.0) + dt
                )

    # -- internals ---------------------------------------------------------

    def _enter_phase(self, running: _Running, now: float) -> bool:
        """Advance ``running`` into its next non-empty phase.

        Returns False when the task ran out of phases (it is finished and
        its ``finish_time`` is stamped).
        """
        task = running.task
        while running.phase_index < len(task.phases):
            phase = task.phases[running.phase_index]
            if isinstance(phase, ComputePhase):
                if phase.seconds > _TIME_EPS:
                    running.compute_remaining = phase.seconds
                    running.stream = None
                    return True
            elif isinstance(phase, IoPhase):
                if phase.total_bytes > _BYTE_EPS:
                    stream = IoStream(
                        remaining_bytes=phase.total_bytes,
                        request_size=phase.request_size,
                        is_write=phase.is_write,
                        per_stream_cap=phase.per_stream_cap,
                    )
                    self._queue_for(running.node, phase.role).attach(stream)
                    running.stream = stream
                    if self.iostat is not None:
                        device = running.node.device_for(phase.role)
                        self.iostat.record(
                            device_name=device.name,
                            total_bytes=phase.total_bytes,
                            request_size=phase.request_size,
                            is_write=phase.is_write,
                        )
                    return True
            else:  # pragma: no cover - phase union is closed
                raise SimulationError(f"unknown phase type: {phase!r}")
            running.phase_index += 1
        task.finish_time = now
        return False

    @staticmethod
    def _next_event_dt(active: list[_Running]) -> float:
        dt = math.inf
        for running in active:
            if running.stream is not None:
                dt = min(dt, running.stream.seconds_to_finish())
            else:
                dt = min(dt, running.compute_remaining)
        return max(dt, 0.0)

    @staticmethod
    def _advance(active: list[_Running], dt: float) -> None:
        for running in active:
            if running.stream is not None:
                running.stream.remaining_bytes -= running.stream.rate * dt
                if running.stream.remaining_bytes < _BYTE_EPS:
                    running.stream.remaining_bytes = 0.0
            else:
                running.compute_remaining -= dt
                if running.compute_remaining < _TIME_EPS:
                    running.compute_remaining = 0.0

    def _retire_completed(self, active: list[_Running], now: float) -> list[_Running]:
        """Detach finished phases; return tasks that fully finished."""
        finished: list[_Running] = []
        still_active: list[_Running] = []
        for running in active:
            done = (
                running.stream.done
                if running.stream is not None
                else running.compute_remaining <= 0.0
            )
            if not done:
                still_active.append(running)
                continue
            if running.stream is not None:
                phase = running.task.phases[running.phase_index]
                assert isinstance(phase, IoPhase)
                self._queue_for(running.node, phase.role).detach(running.stream)
                running.stream = None
            running.phase_index += 1
            if self._enter_phase(running, now):
                still_active.append(running)
            else:
                finished.append(running)
        active[:] = still_active
        return finished
