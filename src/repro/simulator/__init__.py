"""Discrete-event cluster simulator.

This is the library's stand-in for the paper's physical testbed: it
executes stage task sets on an ``N x P``-core cluster with
processor-sharing storage devices, and its measured makespans play the
role of the paper's "exp" bars in Figs. 7-12.

- :mod:`repro.simulator.task` — task/phase descriptions (read → compute →
  write, holding one core throughout, as a Spark task does).
- :mod:`repro.simulator.engine` — the fluid event loop: advance to the next
  phase completion, re-balance device queues, launch waiting tasks.
- :mod:`repro.simulator.run` — stage/application drivers returning
  measurement records (makespan, per-task times, iostat samples).
"""

from repro.simulator.task import ComputePhase, IoPhase, SimTask, TaskPhase
from repro.simulator.engine import SimulationEngine
from repro.simulator.run import (
    StageMeasurement,
    ApplicationMeasurement,
    run_stage,
    run_application,
)

__all__ = [
    "ComputePhase",
    "IoPhase",
    "SimTask",
    "TaskPhase",
    "SimulationEngine",
    "StageMeasurement",
    "ApplicationMeasurement",
    "run_stage",
    "run_application",
]
