"""Stage/application measurement drivers.

These wrap :class:`~repro.simulator.engine.SimulationEngine` and return the
measurement records the rest of the library consumes: the makespan (the
"exp" bar of Figs. 7-12), per-task-group average times (``t_avg``), byte
totals per direction, and iostat request-size samples.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkModel
from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.resilience import ResiliencePolicy, StageResilience
from repro.simulator.engine import SimulationEngine
from repro.simulator.task import SimTask
from repro.storage.iostat import IostatCollector, IostatSample


@dataclass(frozen=True)
class StageMeasurement:
    """What one simulated stage run produced.

    Attributes
    ----------
    name:
        Stage label.
    nodes, cores_per_node:
        The operating point ``(N, P)``.
    makespan:
        Wall-clock seconds from first launch to last finish.
    num_tasks:
        ``M``.
    task_avg_seconds:
        Mean task duration per task group (e.g. GATK4's BR stage has a
        ``"shuffle"`` and an ``"hdfs_scan"`` group).
    first_finish_seconds:
        When the earliest task finished — an estimate of the pipeline
        latency ``t_lat``.
    read_bytes / write_bytes:
        Total bytes moved, per direction, across all tasks.
    iostat_samples:
        Request statistics per (device, direction) observed during the run.
    """

    name: str
    nodes: int
    cores_per_node: int
    makespan: float
    num_tasks: int
    task_avg_seconds: dict[str, float]
    task_counts: dict[str, int]
    first_finish_seconds: float
    read_bytes: float
    write_bytes: float
    iostat_samples: tuple[IostatSample, ...] = field(default=())
    #: Mean per-task JVM GC stall — the task metric the GC-aware profiler
    #: consumes (zero for GC-free workload specs).
    avg_gc_seconds: float = 0.0
    #: Fraction of core-time occupied by tasks over the makespan.
    core_utilization: float = 0.0
    #: (resource name, is_write, busy fraction) per contended resource
    #: direction — devices and, when a network is configured, NICs.
    device_utilizations: tuple[tuple[str, bool, float], ...] = ()
    #: What the mitigations did, when the stage ran under a
    #: :class:`~repro.resilience.ResiliencePolicy` (``None`` otherwise).
    resilience: StageResilience | None = None

    @property
    def t_avg(self) -> float:
        """Mean task duration across all tasks (group means weighted by count)."""
        if not self.task_avg_seconds:
            raise SimulationError(f"stage {self.name} measured no tasks")
        total_time = sum(
            self.task_avg_seconds[group] * self.task_counts[group]
            for group in self.task_avg_seconds
        )
        return total_time / sum(self.task_counts.values())

    def group_t_avg(self, group: str) -> float:
        """Mean task duration of one group."""
        try:
            return self.task_avg_seconds[group]
        except KeyError:
            raise SimulationError(
                f"stage {self.name} has no task group {group!r};"
                f" groups: {sorted(self.task_avg_seconds)}"
            ) from None


@dataclass(frozen=True)
class ApplicationMeasurement:
    """Measurements of a full application: stages run back to back."""

    name: str
    stages: tuple[StageMeasurement, ...]

    @property
    def total_seconds(self) -> float:
        """Sum of stage makespans — the application runtime."""
        return sum(stage.makespan for stage in self.stages)

    def stage(self, name: str) -> StageMeasurement:
        """Look up one stage measurement by name."""
        for measurement in self.stages:
            if measurement.name == name:
                return measurement
        raise SimulationError(f"{self.name}: no measured stage named {name!r}")


def run_stage(
    cluster: Cluster,
    cores_per_node: int,
    tasks: list[SimTask],
    name: str = "stage",
    network: NetworkModel | None = None,
    faults: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
) -> StageMeasurement:
    """Simulate one stage and collect its measurement record.

    ``network`` switches the engine from the paper's infinite-wire default
    to finite NIC links (shuffle reads then contend on the network too).
    ``faults`` superimposes a :class:`~repro.faults.plan.FaultPlan`; fault
    times are relative to this stage's start.  ``resilience`` arms the
    recovery mechanisms (speculation, retry/backoff, blacklisting) and
    fills the measurement's ``resilience`` record.
    """
    iostat = IostatCollector()
    engine = SimulationEngine(
        cluster, cores_per_node, iostat=iostat, network=network, faults=faults,
        resilience=resilience, stage_name=name,
    )
    makespan = engine.run(tasks)

    durations_by_group: dict[str, list[float]] = defaultdict(list)
    for task in tasks:
        durations_by_group[task.group].append(task.duration)
    task_avg = {
        group: sum(values) / len(values)
        for group, values in durations_by_group.items()
    }
    task_counts = {group: len(values) for group, values in durations_by_group.items()}
    samples = []
    for device_name in iostat.devices():
        for is_write in (False, True):
            sample = iostat.sample(device_name, is_write)
            if sample.num_requests > 0:
                samples.append(sample)
    return StageMeasurement(
        name=name,
        nodes=cluster.num_slaves,
        cores_per_node=cores_per_node,
        makespan=makespan,
        num_tasks=len(tasks),
        task_avg_seconds=task_avg,
        task_counts=task_counts,
        first_finish_seconds=min((t.finish_time for t in tasks), default=0.0),
        read_bytes=sum(t.io_bytes(is_write=False) for t in tasks),
        write_bytes=sum(t.io_bytes(is_write=True) for t in tasks),
        iostat_samples=tuple(samples),
        avg_gc_seconds=(
            sum(t.gc_seconds for t in tasks) / len(tasks) if tasks else 0.0
        ),
        core_utilization=engine.core_utilization(makespan),
        device_utilizations=tuple(
            (device_name, is_write, busy / makespan)
            for (device_name, is_write), busy in sorted(
                engine.device_busy_seconds.items()
            )
            if makespan > 0
        ),
        resilience=engine.resilience_summary(),
    )


def run_application(
    cluster: Cluster,
    cores_per_node: int,
    staged_tasks: list[tuple[str, list[SimTask]]],
    name: str = "app",
    network: NetworkModel | None = None,
    faults: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
) -> ApplicationMeasurement:
    """Simulate stages sequentially (Spark stages synchronize at shuffles)."""
    measurements = [
        run_stage(
            cluster, cores_per_node, tasks,
            name=stage_name, network=network, faults=faults,
            resilience=resilience,
        )
        for stage_name, tasks in staged_tasks
    ]
    return ApplicationMeasurement(name=name, stages=tuple(measurements))
