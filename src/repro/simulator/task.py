"""Task and phase descriptions for the simulator.

A simulated task mirrors a Spark task: it occupies one executor core from
launch to finish and proceeds through an ordered list of phases — I/O
phases (which also contend on a storage device) and compute phases (which
only hold the core).  A typical shuffle-stage task is::

    [IoPhase(read shuffle segment), ComputePhase(cpu work), IoPhase(write output)]

Phases reference a device *role* (``"hdfs"`` or ``"local"``); the engine
resolves the role to the concrete device of whichever node the task lands
on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import SimulationError

_task_ids = itertools.count()


@dataclass(frozen=True)
class IoPhase:
    """An I/O phase: move ``total_bytes`` at ``request_size`` blocks.

    Attributes
    ----------
    role:
        ``"hdfs"`` or ``"local"`` — resolved per node.
    total_bytes:
        Bytes this task moves in the phase.
    request_size:
        Block size of the requests (selects the device's effective
        bandwidth).
    is_write:
        Direction.
    per_stream_cap:
        The software-path throughput cap ``T`` (bytes/s); ``None`` = only
        the device limits the stream.
    via_network:
        True for phases whose data partly lives on *other* nodes (shuffle
        reads).  When the engine runs with a finite network model, such a
        phase is split into a local-disk stream and a remote stream that
        also crosses the node's NIC; with no network configured (the
        default) the flag has no effect.
    """

    role: str
    total_bytes: float
    request_size: float
    is_write: bool
    per_stream_cap: float | None = None
    via_network: bool = False

    def __post_init__(self) -> None:
        if self.role not in ("hdfs", "local"):
            raise SimulationError(f"unknown device role: {self.role!r}")
        if self.total_bytes < 0:
            raise SimulationError("I/O phase bytes must be non-negative")
        if self.request_size <= 0:
            raise SimulationError("I/O phase request size must be positive")
        if self.per_stream_cap is not None and self.per_stream_cap <= 0:
            raise SimulationError("per-stream cap must be positive when set")


@dataclass(frozen=True)
class ComputePhase:
    """A pure-CPU phase of fixed duration (the core is already held)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError("compute phase duration must be non-negative")


TaskPhase = IoPhase | ComputePhase


@dataclass
class SimTask:
    """One schedulable task: an ordered list of phases.

    ``group`` labels the task kind within a stage (e.g. ``"shuffle"`` vs.
    ``"hdfs_scan"`` in GATK4's BR stage) for per-group statistics.
    """

    phases: tuple[TaskPhase, ...]
    group: str = "default"
    task_id: int = field(default_factory=lambda: next(_task_ids))
    #: JVM GC stall seconds folded into this task's compute phases — the
    #: "task metric" real Spark exposes, used by the GC-aware profiler.
    gc_seconds: float = 0.0
    # Filled by the engine:
    start_time: float = field(default=-1.0)
    finish_time: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if not self.phases:
            raise SimulationError("a task needs at least one phase")

    @property
    def duration(self) -> float:
        """Measured task time (valid after the engine ran it)."""
        if self.start_time < 0 or self.finish_time < 0:
            raise SimulationError(f"task {self.task_id} has not completed")
        return self.finish_time - self.start_time

    def io_bytes(self, is_write: bool | None = None) -> float:
        """Total bytes moved by this task's I/O phases (optionally one direction)."""
        total = 0.0
        for phase in self.phases:
            if isinstance(phase, IoPhase):
                if is_write is None or phase.is_write == is_write:
                    total += phase.total_bytes
        return total

    def compute_seconds(self) -> float:
        """Total CPU time in this task's compute phases."""
        return sum(p.seconds for p in self.phases if isinstance(p, ComputePhase))
