"""Generic shared-resource contention layer.

Everything in the simulator that several tasks compete for — disk
bandwidth, network links, executor cores — is one of two shapes:

- a **rate resource** (:class:`Resource`): a capacity in units/second,
  possibly a function of the *active demand profile* (an HDD's effective
  bandwidth depends on the request sizes in flight), divided among
  :class:`SharedStream` s by max-min fair water-filling;
- a **slot resource** (:class:`SlotPool`): an integer number of slots
  (executor cores) that tasks hold exclusively.

A :class:`SharedStream` may be bound to *several* rate resources at once
(a remote shuffle read crosses both the network link and a disk); the
coupled allocation is solved by :func:`rebalance_coupled` (progressive
filling).  A :class:`ResourceRegistry` names the resources of one
deployment so that the simulator and the analytic model read the same
``BW`` from the same object and can never disagree.

The layer deliberately knows nothing about clusters or storage devices:
:class:`DeviceResource` consumes any object with a
``bandwidth(request_size, is_write)`` method.
"""

from repro.resources.registry import ResourceRegistry
from repro.resources.resource import (
    DeviceResource,
    LinkResource,
    Resource,
    SlotPool,
    rebalance_coupled,
)
from repro.resources.stream import SharedStream

__all__ = [
    "DeviceResource",
    "LinkResource",
    "Resource",
    "ResourceRegistry",
    "SharedStream",
    "SlotPool",
    "rebalance_coupled",
]
