"""The unit of demand on a shared rate resource.

A :class:`SharedStream` is one in-flight transfer: some amount of work
(bytes), a request size describing *how* the work is issued (which can
change the capacity a device offers), an optional per-stream cap — the
paper's software-path throughput ``T`` — and the rate the owning
resource(s) currently allocate to it.

Streams are resource-agnostic: the same class rides a disk queue, a
network link, or both at once (``resources`` lists every
:class:`~repro.resources.resource.Resource` the stream is bound to; a
stream bound to several is jointly allocated by progressive filling).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resources.resource import Resource

_stream_ids = itertools.count()


@dataclass
class SharedStream:
    """One in-flight transfer on one or more shared resources.

    Attributes
    ----------
    remaining_bytes:
        Work still to move; the simulator decrements this as time advances.
    request_size:
        Block size the stream issues (determines a device's effective
        bandwidth and the aggregate regime; ignored by constant-capacity
        resources such as network links).
    per_stream_cap:
        The software-path cap ``T`` in bytes/s; ``None`` means uncapped
        (limited only by the resources it is bound to).
    rate:
        Current allocated rate in bytes/s, recomputed by the owning
        resource(s) whenever membership changes.
    label:
        Free-form description used in diagnostics (e.g. stall errors).
    """

    remaining_bytes: float
    request_size: float = 1.0
    per_stream_cap: float | None = None
    rate: float = field(default=0.0)
    label: str = ""
    stream_id: int = field(default_factory=lambda: next(_stream_ids))
    #: Resources this stream is currently attached to (managed by
    #: :meth:`Resource.attach` / :meth:`Resource.detach`).
    resources: list[Resource] = field(default_factory=list, repr=False)
    # -- engine bookkeeping (see repro.simulator.engine) -------------------
    #: Simulated time at which ``remaining_bytes`` was last materialized.
    last_update: float = field(default=0.0, repr=False)
    #: Bumped whenever the rate changes; invalidates scheduled events.
    epoch: int = field(default=0, repr=False)
    #: True when the last allocation left the stream at rate 0 with work
    #: remaining (one strike; a second consecutive one is a stall error).
    stalled: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.remaining_bytes < 0:
            raise SimulationError("stream cannot start with negative bytes")
        if self.request_size <= 0:
            raise SimulationError("stream request size must be positive")
        if self.per_stream_cap is not None and self.per_stream_cap <= 0:
            raise SimulationError("per-stream cap must be positive when set")

    @property
    def done(self) -> bool:
        """True when the transfer has no bytes left."""
        return self.remaining_bytes <= 1e-9

    def seconds_to_finish(self) -> float:
        """Time to drain at the current rate (inf when stalled)."""
        if self.done:
            return 0.0
        if self.rate <= 0.0:
            return float("inf")
        return self.remaining_bytes / self.rate

    def describe(self) -> str:
        """Diagnostic string naming the stream's resources and request size."""
        where = ", ".join(r.name for r in self.resources) or "unbound"
        head = f"{self.label or f'stream {self.stream_id}'} on {where}"
        return f"{head} (request size {self.request_size:.0f}B)"
