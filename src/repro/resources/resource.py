"""Rate and slot resources: the mechanism behind ``b = BW / T``.

When several executor cores issue demand against the same resource, each
stream is limited twice:

1. by its own software path — decompression, deserialization, syscall
   overhead — captured as a per-stream cap (the paper's ``T``); and
2. by the resource — the aggregate of all streams cannot exceed its
   capacity at the active demand profile (for a disk: the effective
   bandwidth at the smallest active request size).

A :class:`Resource` allocates rates by *water-filling*: capacity is
divided equally, streams that cannot use their share (cap < fair share)
donate the surplus to the others.  With ``k`` identical streams this
yields exactly ``min(T, capacity / k)`` per stream — so contention
appears precisely when ``k > capacity / T = b``, the paper's break point.

A stream bound to several resources at once (a remote shuffle read
crossing a network link *and* a disk) is allocated by
:func:`rebalance_coupled` — progressive filling, the max-min-fair
generalization of water-filling to coupled resources.  With a single
resource and singly-bound streams the two algorithms coincide, and
:meth:`Resource.rebalance` keeps the original arithmetic so defaults
reproduce historical results exactly.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.resources.stream import SharedStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.device import StorageDevice

#: Relative slack for freeze comparisons in progressive filling.
_FILL_EPS = 1e-12


class Resource:
    """A shared capacity dividing its rate among attached streams.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"slave-0-local-ssd:read"``).
    capacity:
        Either a constant capacity in bytes/s, or a callable mapping the
        list of active streams (the *demand profile*) to a capacity —
        how a disk's effective bandwidth depends on the request sizes in
        flight.
    """

    def __init__(
        self,
        name: str,
        capacity: float | Callable[[list[SharedStream]], float],
    ) -> None:
        self.name = name
        self._capacity = capacity
        self._streams: dict[int, SharedStream] = {}
        #: Multiplier applied to every capacity evaluation — the hook the
        #: fault injector uses for disk degradation and NIC jitter.  Exactly
        #: 1.0 outside fault windows, and the multiply is skipped then, so
        #: fault-free arithmetic is bit-identical to the historical path.
        self.capacity_scale: float = 1.0

    @property
    def streams(self) -> list[SharedStream]:
        """Streams currently attached, in attach order."""
        return list(self._streams.values())

    @property
    def num_active(self) -> int:
        """Number of attached streams."""
        return len(self._streams)

    def capacity_for(self, streams: list[SharedStream]) -> float:
        """Capacity offered to a hypothetical demand profile."""
        capacity = self._capacity(streams) if callable(self._capacity) else self._capacity
        if self.capacity_scale != 1.0:
            capacity = capacity * self.capacity_scale
        return capacity

    def bandwidth_at(self, request_size: float) -> float:
        """``BW``: capacity offered to a single stream at ``request_size``.

        This is the quantity Equation 1 calls ``BW`` — reading it from
        the same object the simulator allocates from guarantees the model
        and the simulation can never disagree on a bandwidth.
        """
        probe = SharedStream(remaining_bytes=1.0, request_size=request_size)
        return self.capacity_for([probe])

    def attach(self, stream: SharedStream, *, rebalance: bool = True) -> None:
        """Add a stream (and by default re-balance rates immediately).

        The simulator defers re-balancing (``rebalance=False``) so that a
        batch of simultaneous attach/detach operations is balanced once.
        """
        if stream.stream_id in self._streams:
            raise SimulationError(
                f"stream {stream.stream_id} already attached to {self.name}"
            )
        self._streams[stream.stream_id] = stream
        stream.resources.append(self)
        if rebalance:
            self.rebalance()

    def detach(self, stream: SharedStream, *, rebalance: bool = True) -> None:
        """Remove a stream (and by default re-balance rates immediately)."""
        if stream.stream_id not in self._streams:
            raise SimulationError(
                f"stream {stream.stream_id} is not attached to {self.name}"
            )
        del self._streams[stream.stream_id]
        stream.resources.remove(self)
        if not stream.resources:
            stream.rate = 0.0
        if rebalance:
            self.rebalance()

    def rebalance(self) -> None:
        """Recompute every attached stream's rate via water-filling.

        Treats all attached streams as solely this resource's — correct
        whenever no stream is bound to another resource as well; coupled
        groups go through :func:`rebalance_coupled` instead.
        """
        streams = list(self._streams.values())
        self._waterfill(streams, self.capacity_for(streams) if streams else 0.0)

    def aggregate_capacity(self) -> float:
        """Capacity at the currently active demand profile (for reporting)."""
        streams = list(self._streams.values())
        if not streams:
            return 0.0
        return self.capacity_for(streams)

    @staticmethod
    def _waterfill(streams: list[SharedStream], capacity: float) -> None:
        """Equal shares with surplus redistribution, honouring per-stream caps."""
        if not streams:
            return
        pending = list(streams)
        remaining = capacity
        # Streams whose cap is below the evolving fair share lock in their
        # cap and free the surplus; iterate until shares stabilize.
        while pending:
            fair_share = remaining / len(pending)
            capped = [
                s
                for s in pending
                if s.per_stream_cap is not None and s.per_stream_cap < fair_share
            ]
            if not capped:
                for stream in pending:
                    stream.rate = fair_share
                return
            for stream in capped:
                stream.rate = stream.per_stream_cap  # type: ignore[assignment]
                remaining -= stream.per_stream_cap  # type: ignore[operator]
                pending.remove(stream)
        # Every stream was cap-limited; nothing left to distribute.

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, {self.num_active} streams)"


class DeviceResource(Resource):
    """One direction (read or write) of a storage device.

    Reads and writes are independent capacity pools (full duplex), so a
    physical device contributes two resources.  Capacity follows the
    active demand profile: the aggregate is taken at the *smallest*
    active request size — small random requests force an HDD's head (or a
    flash controller) into its seek/IOPS-dominated regime, so they
    dictate the aggregate behaviour.
    """

    def __init__(
        self, device: StorageDevice, is_write: bool, name: str | None = None
    ) -> None:
        self.device = device
        self.is_write = is_write
        direction = "write" if is_write else "read"
        super().__init__(name or f"{device.name}:{direction}", self._profile_capacity)

    def _profile_capacity(self, streams: list[SharedStream]) -> float:
        if not streams:
            return 0.0
        smallest_request = min(s.request_size for s in streams)
        return self.device.bandwidth(smallest_request, self.is_write)


class LinkResource(Resource):
    """A network link: constant capacity, request-size-independent."""

    def __init__(self, name: str, link_bandwidth: float) -> None:
        if link_bandwidth <= 0:
            raise SimulationError(f"link {name}: bandwidth must be positive")
        self.link_bandwidth = link_bandwidth
        super().__init__(name, link_bandwidth)


class SlotPool:
    """An integer pool of exclusively-held slots (executor cores)."""

    def __init__(self, name: str, total: int) -> None:
        if total <= 0:
            raise SimulationError(f"slot pool {name}: need at least one slot")
        self.name = name
        self.total = total
        self.in_use = 0

    @property
    def free(self) -> int:
        """Slots currently available."""
        return self.total - self.in_use

    def acquire(self) -> None:
        """Take one slot; raises when none are free."""
        if self.in_use >= self.total:
            raise SimulationError(f"slot pool {self.name} is exhausted")
        self.in_use += 1

    def release(self) -> None:
        """Return one slot."""
        if self.in_use <= 0:
            raise SimulationError(f"slot pool {self.name}: release without acquire")
        self.in_use -= 1

    def __repr__(self) -> str:
        return f"SlotPool({self.name}, {self.in_use}/{self.total} in use)"


def rebalance_coupled(resources: Iterable[Resource]) -> None:
    """Max-min fair allocation across a coupled group of rate resources.

    ``resources`` must be closed under stream sharing: every resource
    that shares a stream with a member is itself a member (the simulator
    computes this closure).  Uses *progressive filling*: all streams'
    rates rise together from zero; a stream freezes when it hits its own
    cap ``T`` or when any resource it is bound to saturates.  For a
    single resource with singly-bound streams this reproduces
    :meth:`Resource.rebalance` (up to float rounding), and that exact
    method is preferred there; this function handles the general case —
    e.g. a remote shuffle-read stream crossing both a NIC and a disk.
    """
    group = list(resources)
    if not group:
        return
    streams: dict[int, SharedStream] = {}
    for resource in group:
        for stream in resource.streams:
            streams[stream.stream_id] = stream
    if not streams:
        return
    headroom = {
        id(resource): resource.capacity_for(resource.streams) for resource in group
    }
    active = {
        id(resource): resource.num_active for resource in group if resource.num_active
    }
    unfrozen = dict(streams)
    level = 0.0
    # Each round freezes at least one stream, so this terminates.
    while unfrozen:
        next_level = float("inf")
        for resource in group:
            count = active.get(id(resource), 0)
            if count > 0:
                next_level = min(next_level, level + headroom[id(resource)] / count)
        for stream in unfrozen.values():
            if stream.per_stream_cap is not None:
                next_level = min(next_level, stream.per_stream_cap)
        if next_level == float("inf"):  # pragma: no cover - defensive
            break
        step = max(next_level - level, 0.0)
        for resource in group:
            count = active.get(id(resource), 0)
            if count > 0:
                headroom[id(resource)] -= step * count
        level = next_level
        slack = level * _FILL_EPS
        frozen_now = []
        for stream in unfrozen.values():
            at_cap = (
                stream.per_stream_cap is not None
                and stream.per_stream_cap <= level + slack
            )
            at_wall = any(
                headroom[id(resource)] <= slack for resource in stream.resources
            )
            if at_cap or at_wall:
                frozen_now.append(stream)
        if not frozen_now:  # pragma: no cover - defensive against fp drift
            frozen_now = list(unfrozen.values())
        for stream in frozen_now:
            stream.rate = level
            del unfrozen[stream.stream_id]
            for resource in stream.resources:
                if id(resource) in active:
                    active[id(resource)] -= 1
