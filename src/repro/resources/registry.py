"""Named lookup of one deployment's shared resources.

The registry is the single source of truth for ``BW``: the simulator
allocates from exactly the resources registered here, and the analytic
model (Equation 1) reads its channel bandwidths from the same objects via
:meth:`ResourceRegistry.bandwidth`.  A bandwidth disagreement between
simulation and model therefore becomes structurally impossible — both
sides would have to read a different object, and there is only one.

Keys are tuples so that call sites can build structured namespaces
without string formatting, e.g. ``("device", id(disk), is_write)`` in the
engine or ``("role", "hdfs", False)`` in the predictor.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping

from repro.errors import SimulationError
from repro.resources.resource import DeviceResource, LinkResource, Resource


class ResourceRegistry:
    """Maps hashable keys to :class:`Resource` instances."""

    def __init__(self) -> None:
        self._resources: dict[Hashable, Resource] = {}

    def register(self, key: Hashable, resource: Resource) -> Resource:
        """Register ``resource`` under ``key``; duplicate keys are an error."""
        if key in self._resources:
            raise SimulationError(f"resource key {key!r} already registered")
        self._resources[key] = resource
        return resource

    def get(self, key: Hashable) -> Resource:
        """Return the resource registered under ``key``."""
        try:
            return self._resources[key]
        except KeyError:
            raise SimulationError(f"no resource registered under {key!r}") from None

    def find(self, key: Hashable) -> Resource | None:
        """Like :meth:`get` but returns ``None`` for unknown keys."""
        return self._resources.get(key)

    def bandwidth(self, key: Hashable, request_size: float) -> float:
        """``BW`` a single stream at ``request_size`` would see on ``key``."""
        return self.get(key).bandwidth_at(request_size)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._resources

    def __len__(self) -> int:
        return len(self._resources)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._resources)

    def values(self) -> list[Resource]:
        """All registered resources, in registration order."""
        return list(self._resources.values())

    def items(self) -> list[tuple[Hashable, Resource]]:
        """All (key, resource) pairs, in registration order."""
        return list(self._resources.items())

    @classmethod
    def for_devices(
        cls,
        devices_by_role: Mapping[str, object],
        network_bandwidth: float | None = None,
    ) -> ResourceRegistry:
        """Registry for one node's devices, keyed by storage role.

        Registers ``("role", role, is_write)`` for both directions of
        every device, and ``("network",)`` when a finite link bandwidth
        is given.  This is the shape the analytic model consumes;
        the simulator builds its own per-node registry instead.
        """
        registry = cls()
        for role, device in devices_by_role.items():
            for is_write in (False, True):
                registry.register(
                    ("role", role, is_write),
                    DeviceResource(device, is_write),  # type: ignore[arg-type]
                )
        if network_bandwidth is not None:
            registry.register(
                ("network",), LinkResource("network", network_bandwidth)
            )
        return registry

    def __repr__(self) -> str:
        return f"ResourceRegistry({len(self._resources)} resources)"
