"""Storage substrate: devices, filesystems, and measurement tools.

The paper's testbed had physical disks (Table I), HDFS for input/output
files, and a Spark-local directory for shuffle and persisted RDDs.  This
subpackage reproduces each piece:

- :mod:`repro.storage.device` — HDD/SSD models whose effective bandwidth
  depends on the request size, anchored to the paper's fio measurements.
- :mod:`repro.storage.queue` — processor-sharing contention when several
  cores hit the same device (the mechanism behind ``b = BW / T``).
- :mod:`repro.storage.fio` — a fio-style microbenchmark producing Fig. 5.
- :mod:`repro.storage.iostat` — request-size statistics (``avgrq-sz``).
- :mod:`repro.storage.hdfs` — HDFS files, 128 MB blocks, replication.
- :mod:`repro.storage.local` — the Spark-local directory for shuffle and
  persisted RDD files.
"""

from repro.storage.device import (
    StorageDevice,
    make_hdd,
    make_ssd,
    HDD_READ_ANCHORS,
    HDD_WRITE_ANCHORS,
    SSD_READ_ANCHORS,
    SSD_WRITE_ANCHORS,
)
from repro.storage.queue import DeviceQueue, IoStream
from repro.storage.fio import FioResult, run_fio_sweep
from repro.storage.iostat import IostatCollector, IostatSample
from repro.storage.hdfs import Hdfs, HdfsFile
from repro.storage.local import SparkLocalDir, LocalFile

__all__ = [
    "StorageDevice",
    "make_hdd",
    "make_ssd",
    "HDD_READ_ANCHORS",
    "HDD_WRITE_ANCHORS",
    "SSD_READ_ANCHORS",
    "SSD_WRITE_ANCHORS",
    "DeviceQueue",
    "IoStream",
    "FioResult",
    "run_fio_sweep",
    "IostatCollector",
    "IostatSample",
    "Hdfs",
    "HdfsFile",
    "SparkLocalDir",
    "LocalFile",
]
