"""iostat-style request accounting.

The paper uses ``iostat`` to log the average I/O request size during each
stage (reported as ``avgrq-sz`` in 512-byte sectors) and then looks up the
effective bandwidth at that size.  :class:`IostatCollector` plays the same
role for simulated runs: every I/O the simulator issues is recorded here,
and the profiler asks for the byte-weighted average request size per
device and direction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import StorageError
from repro.units import SECTOR


@dataclass(frozen=True)
class IostatSample:
    """Aggregated statistics for one (device, direction) pair."""

    device_name: str
    is_write: bool
    total_bytes: float
    num_requests: float

    @property
    def avg_request_size(self) -> float:
        """Byte-weighted average request size in bytes."""
        if self.num_requests == 0:
            raise StorageError(
                f"no requests recorded for {self.device_name}"
                f" ({'write' if self.is_write else 'read'})"
            )
        return self.total_bytes / self.num_requests

    @property
    def avgrq_sz_sectors(self) -> float:
        """The request size in 512-byte sectors, as iostat prints it.

        The paper observes ~60 sectors (30 KB) during shuffle read.
        """
        return self.avg_request_size / SECTOR


class IostatCollector:
    """Accumulates I/O request statistics per device and direction."""

    def __init__(self) -> None:
        self._bytes: dict[tuple[str, bool], float] = defaultdict(float)
        self._requests: dict[tuple[str, bool], float] = defaultdict(float)

    def record(
        self,
        device_name: str,
        total_bytes: float,
        request_size: float,
        is_write: bool,
    ) -> None:
        """Record a transfer of ``total_bytes`` issued at ``request_size``."""
        if total_bytes < 0:
            raise StorageError("cannot record a negative-size transfer")
        if request_size <= 0:
            raise StorageError("request size must be positive")
        if total_bytes == 0:
            return
        key = (device_name, is_write)
        self._bytes[key] += total_bytes
        self._requests[key] += total_bytes / request_size

    def sample(self, device_name: str, is_write: bool) -> IostatSample:
        """Aggregated stats for one device/direction."""
        key = (device_name, is_write)
        return IostatSample(
            device_name=device_name,
            is_write=is_write,
            total_bytes=self._bytes.get(key, 0.0),
            num_requests=self._requests.get(key, 0.0),
        )

    def devices(self) -> list[str]:
        """All device names with recorded traffic."""
        return sorted({name for name, _ in self._bytes})

    def reset(self) -> None:
        """Clear all recorded statistics (start of a new stage window)."""
        self._bytes.clear()
        self._requests.clear()
