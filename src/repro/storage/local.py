"""The Spark-local directory (``spark.local.dir``) of one slave node.

Spark keeps two kinds of data here (Section II-A):

- **shuffle files** — each map task writes one sorted, partitioned output
  file; reducers later read their segment out of every map file; and
- **persisted RDD blocks** — partitions persisted with ``DISK_ONLY`` or
  evicted from storage memory.

This store tracks both against the node's local device capacity, and knows
the characteristic request sizes (a reducer reads ``segment = reducer_bytes
/ M`` per map file — the paper's 30 KB; persist I/O moves whole partition
blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FileNotFoundInStoreError, StorageError
from repro.storage.device import StorageDevice


@dataclass(frozen=True)
class LocalFile:
    """One file in a Spark-local directory."""

    name: str
    size_bytes: float
    kind: str  # "shuffle" or "persist"


class SparkLocalDir:
    """Shuffle/persist file catalog bound to one node's local device."""

    SHUFFLE = "shuffle"
    PERSIST = "persist"

    def __init__(self, device: StorageDevice) -> None:
        self.device = device
        self._files: dict[str, LocalFile] = {}

    def write(self, name: str, size_bytes: float, kind: str) -> LocalFile:
        """Create a file of ``kind`` (``"shuffle"`` or ``"persist"``)."""
        if kind not in (self.SHUFFLE, self.PERSIST):
            raise StorageError(f"unknown local file kind: {kind!r}")
        if size_bytes < 0:
            raise StorageError(f"file size must be non-negative, got {size_bytes}")
        if name in self._files:
            raise StorageError(f"local file already exists: {name}")
        self.device.allocate(size_bytes)
        local_file = LocalFile(name=name, size_bytes=size_bytes, kind=kind)
        self._files[name] = local_file
        return local_file

    def get(self, name: str) -> LocalFile:
        """Look up a file."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundInStoreError(f"no such local file: {name}") from None

    def exists(self, name: str) -> bool:
        """Whether the file exists."""
        return name in self._files

    def delete(self, name: str) -> None:
        """Remove a file, releasing its space."""
        local_file = self.get(name)
        self.device.release(local_file.size_bytes)
        del self._files[name]

    def clear(self, kind: str | None = None) -> None:
        """Delete all files, or only those of one kind (end of application)."""
        for name in list(self._files):
            if kind is None or self._files[name].kind == kind:
                self.delete(name)

    @property
    def used_bytes(self) -> float:
        """Bytes held by this directory's files."""
        return sum(f.size_bytes for f in self._files.values())

    def used_bytes_of(self, kind: str) -> float:
        """Bytes held by files of one kind."""
        return sum(f.size_bytes for f in self._files.values() if f.kind == kind)

    def list_files(self) -> list[LocalFile]:
        """All files, sorted by name."""
        return [self._files[name] for name in sorted(self._files)]
