"""Storage device models with request-size-dependent effective bandwidth.

The anchor curves below are calibrated to every number the paper reports
for its Western Digital 7200-RPM HDD and Samsung SATA SSD (Table I and
Section III-C):

- at 30 KB requests (Spark shuffle read): HDD 15 MB/s, SSD 480 MB/s — 32x;
- at 4 KB requests the gap is 181x;
- at 128 MB requests (the HDFS block size) the gap is 3.7x;
- HDD shuffle *write* at the ~365 MB sorted-chunk size ≈ 100 MB/s
  (Section V-A1: ``BW_write = 100 MB/s``);
- HDFS-read break points ``b = 4.3`` (HDD) and ``16`` (SSD) at a per-core
  throughput ``T = 33 MB/s`` imply 128 MB-read bandwidths of ~142 and
  ~525 MB/s.

Intermediate request sizes interpolate in log-log space, which reproduces
the smooth fio curves of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bandwidth import EffectiveBandwidthTable
from repro.errors import StorageError
from repro.units import GB, KB, MB, TB

#: HDD read bandwidth anchors: seek-dominated at small requests, ~142 MB/s
#: sequential.  (request_size_bytes, bytes_per_second)
HDD_READ_ANCHORS: tuple[tuple[float, float], ...] = (
    (4 * KB, 2.6 * MB),
    (30 * KB, 15.0 * MB),
    (128 * KB, 40.0 * MB),
    (1 * MB, 90.0 * MB),
    (16 * MB, 130.0 * MB),
    (128 * MB, 142.0 * MB),
    (512 * MB, 145.0 * MB),
)

#: SSD read bandwidth anchors: near-flat, ~480-525 MB/s.
SSD_READ_ANCHORS: tuple[tuple[float, float], ...] = (
    (4 * KB, 470.6 * MB),
    (30 * KB, 480.0 * MB),
    (128 * KB, 495.0 * MB),
    (1 * MB, 510.0 * MB),
    (16 * MB, 520.0 * MB),
    (128 * MB, 525.4 * MB),
    (512 * MB, 526.0 * MB),
)

#: HDD write bandwidth anchors; peak ~100 MB/s at the large sorted-chunk
#: sizes shuffle write produces (Section V-A1).
HDD_WRITE_ANCHORS: tuple[tuple[float, float], ...] = (
    (4 * KB, 2.5 * MB),
    (30 * KB, 14.0 * MB),
    (128 * KB, 35.0 * MB),
    (1 * MB, 60.0 * MB),
    (16 * MB, 85.0 * MB),
    (128 * MB, 98.0 * MB),
    (512 * MB, 102.0 * MB),
)

#: SSD write bandwidth anchors (SATA datacenter SSD).
SSD_WRITE_ANCHORS: tuple[tuple[float, float], ...] = (
    (4 * KB, 180.0 * MB),
    (30 * KB, 300.0 * MB),
    (128 * KB, 340.0 * MB),
    (1 * MB, 380.0 * MB),
    (16 * MB, 410.0 * MB),
    (128 * MB, 420.0 * MB),
    (512 * MB, 425.0 * MB),
)


@dataclass
class StorageDevice:
    """A block device with request-size-dependent read/write bandwidth.

    Attributes
    ----------
    name:
        Label used in reports, e.g. ``"hdd0"`` or ``"pd-ssd-500GB"``.
    kind:
        ``"hdd"``, ``"ssd"``, or a cloud type like ``"pd-standard"``.
    capacity_bytes:
        Provisioned capacity.  Filesystems check writes against it.
    read_table / write_table:
        :class:`~repro.core.bandwidth.EffectiveBandwidthTable` curves.
    used_bytes:
        Bytes currently stored on the device (maintained by the stores that
        share it).
    """

    name: str
    kind: str
    capacity_bytes: float
    read_table: EffectiveBandwidthTable
    write_table: EffectiveBandwidthTable
    used_bytes: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise StorageError(f"device {self.name}: capacity must be positive")

    @property
    def free_bytes(self) -> float:
        """Capacity not yet allocated."""
        return self.capacity_bytes - self.used_bytes

    def read_bandwidth(self, request_size: float) -> float:
        """Effective read bandwidth (bytes/s) at ``request_size``."""
        return self.read_table.bandwidth(request_size)

    def write_bandwidth(self, request_size: float) -> float:
        """Effective write bandwidth (bytes/s) at ``request_size``."""
        return self.write_table.bandwidth(request_size)

    def bandwidth(self, request_size: float, is_write: bool) -> float:
        """Dispatch to the read or write curve."""
        if is_write:
            return self.write_bandwidth(request_size)
        return self.read_bandwidth(request_size)

    def allocate(self, num_bytes: float) -> None:
        """Reserve space for a file; raises when the device is full."""
        if num_bytes < 0:
            raise StorageError(f"device {self.name}: cannot allocate negative bytes")
        if self.used_bytes + num_bytes > self.capacity_bytes:
            raise StorageError(
                f"device {self.name} is full: {self.used_bytes:.0f}B used of"
                f" {self.capacity_bytes:.0f}B, cannot allocate {num_bytes:.0f}B"
            )
        self.used_bytes += num_bytes

    def release(self, num_bytes: float) -> None:
        """Return previously allocated space."""
        if num_bytes < 0:
            raise StorageError(f"device {self.name}: cannot release negative bytes")
        if num_bytes > self.used_bytes + 1e-6:
            raise StorageError(
                f"device {self.name}: releasing {num_bytes:.0f}B but only"
                f" {self.used_bytes:.0f}B is allocated"
            )
        self.used_bytes = max(0.0, self.used_bytes - num_bytes)

    def __repr__(self) -> str:
        return f"StorageDevice({self.name}, {self.kind}, {self.capacity_bytes / GB:.0f}GB)"


def make_hdd(name: str = "hdd", capacity_bytes: float = 4 * TB) -> StorageDevice:
    """The paper's HDD: WD 4000FYYZ, 7200 RPM, 4 TB (Table I)."""
    return StorageDevice(
        name=name,
        kind="hdd",
        capacity_bytes=capacity_bytes,
        read_table=EffectiveBandwidthTable(HDD_READ_ANCHORS, name=f"{name}-read"),
        write_table=EffectiveBandwidthTable(HDD_WRITE_ANCHORS, name=f"{name}-write"),
    )


def make_ssd(name: str = "ssd", capacity_bytes: float = 240 * GB) -> StorageDevice:
    """The paper's SSD: Samsung MZ7LM240, 240 GB SATA (Table I)."""
    return StorageDevice(
        name=name,
        kind="ssd",
        capacity_bytes=capacity_bytes,
        read_table=EffectiveBandwidthTable(SSD_READ_ANCHORS, name=f"{name}-read"),
        write_table=EffectiveBandwidthTable(SSD_WRITE_ANCHORS, name=f"{name}-write"),
    )
