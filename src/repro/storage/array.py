"""Multi-disk aggregation: the paper's "multi-disk case".

Section IV-C: "our model relates to disk bandwidth rather than disk
number.  Thus, it is general enough to support the multi-disk case."
This module makes that concrete: a JBOD/RAID-0-style array of member
disks presents one :class:`~repro.storage.device.StorageDevice` whose
effective bandwidth at every request size is the *sum* of its members'
(Spark stripes shuffle and HDFS files across all mounted directories, so
aggregate throughput adds) and whose capacity is the members' total.

This is also how the paper's R1/R2 reference configurations (4-12 disks
per node) are expressed with the same model machinery.

Two granularities are available:

- **summed** (the default, and the paper's model): the array *is* one
  device with the pointwise-summed curve — a task streaming alone on the
  array sees the full aggregate bandwidth;
- **per-member** (``per_member=True``): the array keeps its members, and
  the simulator stripes streams across them round-robin (JBOD semantics —
  Spark round-robins files over ``spark.local.dir`` entries, so one task
  reads one member at a time while concurrent tasks spread out).

Both build the same :class:`DiskArray`; the flag only changes how the
simulation engine materializes the array as contention resources.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.bandwidth import EffectiveBandwidthTable
from repro.errors import StorageError
from repro.storage.device import StorageDevice


@dataclass
class DiskArray(StorageDevice):
    """A :class:`StorageDevice` that remembers its member disks.

    Behaves exactly like the summed device everywhere (``bandwidth`` reads
    the summed curve); ``members``/``per_member`` let resource-aware
    consumers (the simulation engine) break the aggregate apart.
    """

    members: tuple[StorageDevice, ...] = ()
    per_member: bool = False


def _summed_table(
    tables: Sequence[EffectiveBandwidthTable], name: str
) -> EffectiveBandwidthTable:
    """Pointwise sum of bandwidth curves over the union of anchor sizes."""
    anchor_sizes = sorted(
        {size for table in tables for size, _ in table.anchors}
    )
    return EffectiveBandwidthTable(
        [
            (size, sum(table.bandwidth(size) for table in tables))
            for size in anchor_sizes
        ],
        name=name,
    )


def make_disk_array(
    name: str, members: Sequence[StorageDevice], per_member: bool = False
) -> DiskArray:
    """Aggregate member disks into one striped array device.

    All members contribute bandwidth at every request size; capacity is
    the sum.  The array's ``kind`` is the member kind when homogeneous,
    ``"array"`` otherwise.  With ``per_member=True`` the simulator
    allocates contention per member instead of against the summed curve.
    """
    if not members:
        raise StorageError("a disk array needs at least one member")
    kinds = {member.kind for member in members}
    kind = kinds.pop() if len(kinds) == 1 else "array"
    return DiskArray(
        name=name,
        kind=kind,
        capacity_bytes=sum(member.capacity_bytes for member in members),
        read_table=_summed_table(
            [member.read_table for member in members], f"{name}-read"
        ),
        write_table=_summed_table(
            [member.write_table for member in members], f"{name}-write"
        ),
        members=tuple(members),
        per_member=per_member,
    )


def equivalent_disk_count(
    slow: StorageDevice, fast: StorageDevice, request_size: float
) -> float:
    """How many ``slow`` disks match one ``fast`` disk at a request size.

    Reproduces the paper's Related-Work point against [4]: matching HDDs
    to SSDs on *sequential* bandwidth (the 1:11 rule) does not match them
    on random I/O — the ratio swings from ~4 at 128 MB requests to ~32 at
    30 KB and ~181 at 4 KB.
    """
    slow_bw = slow.read_bandwidth(request_size)
    if slow_bw <= 0:
        raise StorageError("slow device has no bandwidth at this request size")
    return fast.read_bandwidth(request_size) / slow_bw
