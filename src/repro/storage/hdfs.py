"""A minimal HDFS model: files, fixed-size blocks, replication.

What the rest of the library needs from HDFS (Table II: 128 MB blocks,
replication 2):

- the number of blocks of an input file — this is ``M``, the number of map
  tasks of the stage that reads it (Section III-C2: a 122 GB genome yields
  973 partitions);
- capacity accounting across the slave nodes' HDFS devices, including the
  replication factor;
- the request size of HDFS reads and writes (one block), which selects the
  effective bandwidth the model uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, FileNotFoundInStoreError, StorageError
from repro.storage.device import StorageDevice
from repro.units import MB


@dataclass(frozen=True)
class HdfsFile:
    """One file stored in HDFS."""

    path: str
    size_bytes: float
    block_size: float

    @property
    def num_blocks(self) -> int:
        """Number of HDFS blocks, i.e. default partitions when read by Spark."""
        if self.size_bytes == 0:
            return 1
        return int(math.ceil(self.size_bytes / self.block_size))


class Hdfs:
    """An HDFS namespace over the slave nodes' HDFS devices.

    Parameters
    ----------
    devices:
        One HDFS device per slave node (the ``dfs.data.dir`` disk).
    block_size:
        ``dfs.blocksize``; the paper uses the 128 MB default.
    replication:
        ``dfs.replication``; the paper uses 2.
    """

    def __init__(
        self,
        devices: list[StorageDevice],
        block_size: float = 128 * MB,
        replication: int = 2,
    ) -> None:
        if not devices:
            raise ConfigurationError("HDFS needs at least one datanode device")
        if block_size <= 0:
            raise ConfigurationError(f"HDFS block size must be positive, got {block_size}")
        if replication < 1:
            raise ConfigurationError(f"HDFS replication must be >= 1, got {replication}")
        if replication > len(devices):
            raise ConfigurationError(
                f"replication {replication} exceeds datanode count {len(devices)}"
            )
        self.devices = list(devices)
        self.block_size = block_size
        self.replication = replication
        self._files: dict[str, HdfsFile] = {}

    def put(self, path: str, size_bytes: float) -> HdfsFile:
        """Create a file, allocating ``size * replication`` across datanodes.

        Space is spread evenly: HDFS's block placement is
        round-robin-with-replicas, which for capacity purposes is an even
        spread across datanodes.
        """
        if size_bytes < 0:
            raise StorageError(f"file size must be non-negative, got {size_bytes}")
        if path in self._files:
            raise StorageError(f"HDFS path already exists: {path}")
        per_device = size_bytes * self.replication / len(self.devices)
        allocated: list[StorageDevice] = []
        try:
            for device in self.devices:
                device.allocate(per_device)
                allocated.append(device)
        except StorageError:
            for device in allocated:
                device.release(per_device)
            raise
        hdfs_file = HdfsFile(path=path, size_bytes=size_bytes, block_size=self.block_size)
        self._files[path] = hdfs_file
        return hdfs_file

    def get(self, path: str) -> HdfsFile:
        """Look up a file's metadata."""
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInStoreError(f"no such HDFS file: {path}") from None

    def exists(self, path: str) -> bool:
        """Whether ``path`` is in the namespace."""
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove a file and free its replicated space."""
        hdfs_file = self.get(path)
        per_device = hdfs_file.size_bytes * self.replication / len(self.devices)
        for device in self.devices:
            device.release(per_device)
        del self._files[path]

    def list_files(self) -> list[HdfsFile]:
        """All files, sorted by path."""
        return [self._files[path] for path in sorted(self._files)]

    @property
    def total_stored_bytes(self) -> float:
        """Logical bytes stored (before replication)."""
        return sum(f.size_bytes for f in self._files.values())

    def read_request_size(self) -> float:
        """Request size of HDFS reads: one block."""
        return self.block_size

    def write_request_size(self) -> float:
        """Request size of HDFS writes: one block."""
        return self.block_size

    def write_amplification(self) -> float:
        """Bytes physically written per logical byte (the replication factor)."""
        return float(self.replication)
