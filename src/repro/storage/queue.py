"""Processor-sharing device queue: the mechanism behind ``b = BW / T``.

When several executor cores issue I/O against the same device, each stream
is limited twice:

1. by its own software path — decompression, deserialization, syscall
   overhead — captured as a per-stream cap (the paper's ``T``); and
2. by the device — the aggregate of all streams cannot exceed the device's
   effective bandwidth at the active request size.

The queue allocates rates by *water-filling*: capacity is divided equally,
streams that cannot use their share (cap < fair share) donate the surplus
to the others.  With ``k`` identical streams this yields exactly
``min(T, BW / k)`` per stream — so contention appears precisely when
``k > BW / T = b``, the paper's break point.

When streams with different request sizes share a device, the aggregate
capacity is taken at the *smallest* active request size: small random
requests force the head (HDD) or the flash controller into its
seek/IOPS-dominated regime, so they dictate the aggregate behaviour.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.storage.device import StorageDevice

_stream_ids = itertools.count()


@dataclass
class IoStream:
    """One in-flight I/O transfer on a device.

    Attributes
    ----------
    remaining_bytes:
        Bytes still to move; the simulator decrements this as time advances.
    request_size:
        Block size the stream issues (determines the device's effective
        bandwidth and the aggregate regime).
    is_write:
        Read or write (selects the device curve).
    per_stream_cap:
        The software-path cap ``T`` in bytes/s; ``None`` means uncapped
        (limited only by the device).
    rate:
        Current allocated rate in bytes/s, recomputed by the owning queue.
    """

    remaining_bytes: float
    request_size: float
    is_write: bool
    per_stream_cap: float | None = None
    rate: float = field(default=0.0)
    stream_id: int = field(default_factory=lambda: next(_stream_ids))

    def __post_init__(self) -> None:
        if self.remaining_bytes < 0:
            raise SimulationError("stream cannot start with negative bytes")
        if self.request_size <= 0:
            raise SimulationError("stream request size must be positive")
        if self.per_stream_cap is not None and self.per_stream_cap <= 0:
            raise SimulationError("per-stream cap must be positive when set")

    @property
    def done(self) -> bool:
        """True when the transfer has no bytes left."""
        return self.remaining_bytes <= 1e-9

    def seconds_to_finish(self) -> float:
        """Time to drain at the current rate (inf when stalled)."""
        if self.done:
            return 0.0
        if self.rate <= 0.0:
            return float("inf")
        return self.remaining_bytes / self.rate


class DeviceQueue:
    """Allocates device bandwidth among concurrent :class:`IoStream` s."""

    def __init__(self, device: StorageDevice) -> None:
        self.device = device
        self._streams: dict[int, IoStream] = {}

    @property
    def streams(self) -> list[IoStream]:
        """Streams currently attached to the device."""
        return list(self._streams.values())

    @property
    def num_active(self) -> int:
        """Number of attached streams."""
        return len(self._streams)

    def attach(self, stream: IoStream) -> None:
        """Add a stream and re-balance rates."""
        if stream.stream_id in self._streams:
            raise SimulationError(f"stream {stream.stream_id} already attached")
        self._streams[stream.stream_id] = stream
        self.rebalance()

    def detach(self, stream: IoStream) -> None:
        """Remove a stream and re-balance rates."""
        if stream.stream_id not in self._streams:
            raise SimulationError(f"stream {stream.stream_id} is not attached")
        del self._streams[stream.stream_id]
        stream.rate = 0.0
        self.rebalance()

    def aggregate_capacity(self) -> float:
        """Device capacity given the currently active request-size mix.

        Reads and writes are balanced separately in :meth:`rebalance`; this
        returns the read+write capacities summed only for reporting.
        """
        reads = [s for s in self._streams.values() if not s.is_write]
        writes = [s for s in self._streams.values() if s.is_write]
        return self._capacity(reads, is_write=False) + self._capacity(
            writes, is_write=True
        )

    def rebalance(self) -> None:
        """Recompute every attached stream's rate via water-filling.

        Reads and writes are treated as independent capacity pools (full
        duplex), each at the device's effective bandwidth for its own
        direction and active request-size mix.
        """
        reads = [s for s in self._streams.values() if not s.is_write]
        writes = [s for s in self._streams.values() if s.is_write]
        self._waterfill(reads, self._capacity(reads, is_write=False))
        self._waterfill(writes, self._capacity(writes, is_write=True))

    def _capacity(self, streams: list[IoStream], is_write: bool) -> float:
        if not streams:
            return 0.0
        smallest_request = min(s.request_size for s in streams)
        return self.device.bandwidth(smallest_request, is_write)

    @staticmethod
    def _waterfill(streams: list[IoStream], capacity: float) -> None:
        """Equal shares with surplus redistribution, honouring per-stream caps."""
        if not streams:
            return
        pending = list(streams)
        remaining = capacity
        # Streams whose cap is below the evolving fair share lock in their
        # cap and free the surplus; iterate until shares stabilize.
        while pending:
            fair_share = remaining / len(pending)
            capped = [
                s
                for s in pending
                if s.per_stream_cap is not None and s.per_stream_cap < fair_share
            ]
            if not capped:
                for stream in pending:
                    stream.rate = fair_share
                return
            for stream in capped:
                stream.rate = stream.per_stream_cap  # type: ignore[assignment]
                remaining -= stream.per_stream_cap  # type: ignore[operator]
                pending.remove(stream)
        # Every stream was cap-limited; nothing left to distribute.
