"""Processor-sharing device queue, as a view over ``repro.resources``.

Historically this module *was* the contention layer: the water-filling
allocator lived here, hardwired to one storage device.  The mechanism now
lives in :mod:`repro.resources` (generic over disks, network links, and
anything else with a capacity); this module keeps the storage-flavoured
surface — :class:`IoStream` with an ``is_write`` flag, and
:class:`DeviceQueue` bundling a device's two directions — on top of two
:class:`~repro.resources.resource.DeviceResource` pools.

The semantics are unchanged:

- each stream is limited by its software-path cap ``T`` and by the
  device's effective bandwidth at the active request-size mix, yielding
  ``min(T, BW / k)`` per stream and the paper's break point ``b = BW/T``;
- reads and writes are independent capacity pools (full duplex);
- when streams with different request sizes share a direction, the
  aggregate capacity is taken at the *smallest* active request size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.resources.resource import DeviceResource
from repro.resources.stream import SharedStream
from repro.storage.device import StorageDevice


@dataclass
class IoStream(SharedStream):
    """One in-flight I/O transfer on a device.

    A :class:`~repro.resources.stream.SharedStream` plus the direction
    flag (``is_write`` selects the device's read or write curve).
    """

    is_write: bool = False


class DeviceQueue:
    """Allocates device bandwidth among concurrent :class:`IoStream` s.

    A thin bundle of two :class:`DeviceResource` s — one per direction —
    that preserves the original single-queue API.
    """

    def __init__(self, device: StorageDevice) -> None:
        self.device = device
        self._read = DeviceResource(device, is_write=False)
        self._write = DeviceResource(device, is_write=True)
        # Insertion order across both directions, for the combined view.
        self._order: dict[int, IoStream] = {}

    @property
    def streams(self) -> list[IoStream]:
        """Streams currently attached to the device."""
        return list(self._order.values())

    @property
    def num_active(self) -> int:
        """Number of attached streams."""
        return len(self._order)

    def resource_for(self, is_write: bool) -> DeviceResource:
        """The underlying directional resource (for generic consumers)."""
        return self._write if is_write else self._read

    def attach(self, stream: IoStream) -> None:
        """Add a stream and re-balance rates."""
        if stream.stream_id in self._order:
            raise SimulationError(f"stream {stream.stream_id} already attached")
        self._order[stream.stream_id] = stream
        self.resource_for(stream.is_write).attach(stream)

    def detach(self, stream: IoStream) -> None:
        """Remove a stream and re-balance rates."""
        if stream.stream_id not in self._order:
            raise SimulationError(f"stream {stream.stream_id} is not attached")
        del self._order[stream.stream_id]
        self.resource_for(stream.is_write).detach(stream)

    def aggregate_capacity(self) -> float:
        """Device capacity given the currently active request-size mix.

        Reads and writes are balanced separately in :meth:`rebalance`; this
        returns the read+write capacities summed only for reporting.
        """
        return self._read.aggregate_capacity() + self._write.aggregate_capacity()

    def rebalance(self) -> None:
        """Recompute every attached stream's rate via water-filling."""
        self._read.rebalance()
        self._write.rebalance()
