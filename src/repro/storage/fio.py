"""A fio-style microbenchmark over device models (reproduces Fig. 5).

The paper uses ``fio`` to measure IOPS and effective bandwidth at a sweep
of read block sizes on both devices (Section III-C1).  Against our device
models the "measurement" is a direct query of the effective-bandwidth
curves, optionally with several concurrent jobs to exercise the
processor-sharing queue exactly the way fio's ``numjobs`` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.device import StorageDevice
from repro.storage.queue import DeviceQueue, IoStream
from repro.units import KB, MB

#: The block-size sweep used for Fig. 5 (4 KB ... 128 MB).
DEFAULT_BLOCK_SIZES: tuple[float, ...] = (
    4 * KB,
    8 * KB,
    16 * KB,
    30 * KB,
    64 * KB,
    128 * KB,
    256 * KB,
    512 * KB,
    1 * MB,
    4 * MB,
    16 * MB,
    64 * MB,
    128 * MB,
)


@dataclass(frozen=True)
class FioResult:
    """One row of a fio sweep: block size → bandwidth and IOPS."""

    device_name: str
    block_size: float
    is_write: bool
    bandwidth: float
    iops: float


def run_fio_point(
    device: StorageDevice,
    block_size: float,
    is_write: bool = False,
    num_jobs: int = 1,
) -> FioResult:
    """Measure one (device, block size) point, like a single fio job spec.

    With ``num_jobs > 1`` the aggregate bandwidth is obtained by attaching
    that many uncapped streams to a :class:`DeviceQueue` and summing their
    allocated rates — which, by construction of the queue, equals the
    device's effective bandwidth at the block size.
    """
    queue = DeviceQueue(device)
    streams = [
        IoStream(remaining_bytes=1.0, request_size=block_size, is_write=is_write)
        for _ in range(max(1, num_jobs))
    ]
    for stream in streams:
        queue.attach(stream)
    aggregate = sum(stream.rate for stream in streams)
    for stream in streams:
        queue.detach(stream)
    return FioResult(
        device_name=device.name,
        block_size=block_size,
        is_write=is_write,
        bandwidth=aggregate,
        iops=aggregate / block_size,
    )


def run_fio_sweep(
    device: StorageDevice,
    block_sizes: tuple[float, ...] = DEFAULT_BLOCK_SIZES,
    is_write: bool = False,
    num_jobs: int = 1,
) -> list[FioResult]:
    """Sweep block sizes on one device — one Fig. 5 curve."""
    return [
        run_fio_point(device, size, is_write=is_write, num_jobs=num_jobs)
        for size in block_sizes
    ]
