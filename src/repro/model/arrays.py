"""Array-native Equation-1 kernel: score whole candidate grids at once.

The scalar model stack builds, per candidate, two bandwidth tables, a
resource registry, one :class:`~repro.core.stage_model.StageModel` per
stage, and a prediction object — fine for a single what-if, ruinous for
the optimizer's grids.  This module evaluates the same closed-form
arithmetic over a **struct-of-arrays batch**: per stage, Equation 1 is a
max of three affine terms in ``(M, N, P, BW)``, so a whole grid reduces
to a handful of elementwise array operations plus small per-unique-disk
lookup tables.

Exactness contract
------------------
``score_batch`` reproduces the scalar path (``Predictor.model_for_devices``
→ ``ApplicationModel.predict``) **bit for bit**, not approximately:

- Every candidate-varying operation is an elementwise IEEE-754 double
  add/mul/div/compare performed in the scalar model's exact order
  (including clamp semantics, left-fold summation orders, and the
  first-maximal tie-break for bottleneck labels).  Those operations are
  identical between CPython floats and numpy float64, so both backends
  agree bitwise with the scalar model and with each other.
- The only transcendental arithmetic in the stack — the log-log
  interpolation inside :class:`~repro.core.bandwidth.EffectiveBandwidthTable`
  — is **never vectorized**.  Per-channel bandwidths are computed once
  per unique ``(disk kind, size)`` through the very same scalar table
  code the predictor uses (:func:`~repro.cloud.disks.make_persistent_disk`
  plus ``StorageDevice.bandwidth``), memoized, and gathered into the
  batch.  Identical inputs through identical code give identical floats.

Backends
--------
numpy is used when importable (install the ``fast`` extra); otherwise a
pure-Python fallback built on :mod:`array` and per-unique-key memo tables
runs with zero dependencies.  ``backend_name()`` reports which one is
active; the ``REPRO_ARRAYS_BACKEND`` environment variable (``auto`` /
``numpy`` / ``python``) or a per-call ``backend=`` argument overrides the
choice.  Either way the results are bitwise identical (see above), which
``tests/properties/test_vectorized.py`` pins.

See ``docs/MODEL.md`` ("Array model core") for the batch layout and the
full equivalence argument, and ``docs/PERFORMANCE.md`` for measured
throughput.
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.stage_model import BOTTLENECK_LABELS
from repro.errors import ConfigurationError, ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.pricing import CloudConfiguration
    from repro.core.profiler import ProfilingReport

# The cloud-layer helpers (device factories, pricing) are imported
# lazily inside the functions that memoize their results:
# ``repro.cloud.__init__`` itself imports this module (via ``bounds``),
# so a module-level import here would be circular whenever the model
# package loads first.

__all__ = [
    "BOTTLENECK_LABELS",
    "BACKEND_ENV_VAR",
    "BatchScores",
    "CandidateBatch",
    "Eq1BatchEvaluator",
    "LowerBoundBatch",
    "backend_name",
    "score_batch",
]

#: Environment variable selecting the array backend.
BACKEND_ENV_VAR = "REPRO_ARRAYS_BACKEND"

#: Disk roles a candidate provisions devices for.
_DISK_ROLES = ("hdfs", "local")

_UNSET = object()
_NUMPY = _UNSET


def _numpy():
    """The numpy module, or ``None`` when it is not installed."""
    global _NUMPY
    if _NUMPY is _UNSET:
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
            numpy = None
        _NUMPY = numpy
    return _NUMPY


def _resolve_backend(backend: str | None):
    """Map a backend request to the numpy module or ``None`` (pure Python)."""
    choice = backend or os.environ.get(BACKEND_ENV_VAR) or "auto"
    if choice == "auto":
        return _numpy()
    if choice == "python":
        return None
    if choice == "numpy":
        module = _numpy()
        if module is None:
            raise ConfigurationError(
                "array backend 'numpy' requested but numpy is not installed"
                " (pip install 'doppio-repro[fast]')"
            )
        return module
    raise ConfigurationError(
        f"unknown array backend {choice!r}; expected 'auto', 'numpy' or 'python'"
    )


def backend_name(backend: str | None = None) -> str:
    """Which kernel backend is active: ``"numpy"`` or ``"python"``."""
    return "numpy" if _resolve_backend(backend) is not None else "python"


# -- the batch ----------------------------------------------------------------


@dataclass(frozen=True)
class CandidateBatch:
    """A struct-of-arrays grid of candidate operating points.

    Parallel tuples, one entry per candidate: cluster shape ``(N, P)``
    plus the provisioned HDFS and Spark-local disks.  ``vcpus`` carries
    the machine shape used for pricing; it may be ``None`` for
    model-only batches (e.g. core-count sweeps whose ``P`` is not a
    valid machine size), in which case cost scoring is unavailable.
    """

    nodes: tuple[int, ...]
    cores: tuple[int, ...]
    hdfs_kinds: tuple[str, ...]
    hdfs_sizes_gb: tuple[float, ...]
    local_kinds: tuple[str, ...]
    local_sizes_gb: tuple[float, ...]
    vcpus: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        columns = {
            "nodes": tuple(self.nodes),
            "cores": tuple(self.cores),
            "hdfs_kinds": tuple(self.hdfs_kinds),
            "hdfs_sizes_gb": tuple(self.hdfs_sizes_gb),
            "local_kinds": tuple(self.local_kinds),
            "local_sizes_gb": tuple(self.local_sizes_gb),
        }
        if self.vcpus is not None:
            columns["vcpus"] = tuple(self.vcpus)
        for name, column in columns.items():
            object.__setattr__(self, name, column)
        lengths = {len(column) for column in columns.values()}
        if len(lengths) > 1:
            raise ModelError(
                "batch columns must have equal lengths, got "
                + ", ".join(f"{k}={len(v)}" for k, v in columns.items())
            )
        if self.nodes:
            if min(self.nodes) <= 0 or min(self.cores) <= 0:
                raise ModelError("node and core counts must be positive")
            if min(self.hdfs_sizes_gb) <= 0 or min(self.local_sizes_gb) <= 0:
                raise ConfigurationError("disk sizes must be positive")

    def __len__(self) -> int:
        return len(self.nodes)

    @classmethod
    def from_configs(
        cls, configs: Iterable[CloudConfiguration]
    ) -> CandidateBatch:
        """Column-major view of cloud configurations (``P`` = machine vCPUs)."""
        configs = tuple(configs)
        return cls(
            nodes=tuple(c.num_workers for c in configs),
            cores=tuple(c.cores_per_node for c in configs),
            hdfs_kinds=tuple(c.hdfs_disk_kind for c in configs),
            hdfs_sizes_gb=tuple(c.hdfs_disk_gb for c in configs),
            local_kinds=tuple(c.local_disk_kind for c in configs),
            local_sizes_gb=tuple(c.local_disk_gb for c in configs),
            vcpus=tuple(c.machine.vcpus for c in configs),
        )

    def config(self, index: int) -> CloudConfiguration:
        """Materialize candidate ``index`` back into a scalar configuration."""
        if self.vcpus is None:
            raise ModelError(
                "batch carries no machine vcpus; build it with vcpus to"
                " materialize cloud configurations"
            )
        from repro.cloud.instance import machine_for_vcpus
        from repro.cloud.pricing import CloudConfiguration

        return CloudConfiguration(
            machine=machine_for_vcpus(self.vcpus[index]),
            num_workers=self.nodes[index],
            hdfs_disk_kind=self.hdfs_kinds[index],
            hdfs_disk_gb=self.hdfs_sizes_gb[index],
            local_disk_kind=self.local_kinds[index],
            local_disk_gb=self.local_sizes_gb[index],
        )


@dataclass(frozen=True)
class BatchScores:
    """Parallel score arrays for one :class:`CandidateBatch`.

    ``runtime_seconds[i]`` is ``t_app`` for candidate ``i``;
    ``cost_dollars`` follows the Section-VI pricing (``None`` when cost
    was not requested or the batch has no ``vcpus``); ``bottlenecks``
    holds one integer sequence per stage — indexes into
    :data:`BOTTLENECK_LABELS` — or ``None`` when not requested.
    Sequences are numpy arrays or :mod:`array`/:class:`bytes` depending
    on the backend; element values are bitwise identical either way.
    """

    runtime_seconds: Sequence[float]
    cost_dollars: Sequence[float] | None
    bottlenecks: tuple[Sequence[int], ...] | None
    stage_names: tuple[str, ...]
    backend: str

    def __len__(self) -> int:
        return len(self.runtime_seconds)

    def bottleneck_label(self, stage_index: int, candidate: int) -> str:
        """Decoded bottleneck label for one (stage, candidate) cell."""
        if self.bottlenecks is None:
            raise ModelError("scores were computed without bottleneck labels")
        return BOTTLENECK_LABELS[self.bottlenecks[stage_index][candidate]]

    def argmin_cost(self) -> int:
        """Index of the cheapest candidate (first one on exact ties)."""
        if self.cost_dollars is None:
            raise ModelError("scores carry no cost; score with want_cost=True")
        if not len(self):
            raise ModelError("empty batch has no cheapest candidate")
        cost = self.cost_dollars
        if hasattr(cost, "argmin"):  # numpy: first occurrence, like min()
            return int(cost.argmin())
        return min(range(len(cost)), key=cost.__getitem__)


# -- stage constants ----------------------------------------------------------


@dataclass(frozen=True)
class _KernelStage:
    """Device-independent Equation-1 constants for one stage.

    ``read_groups``/``write_groups`` are ``(group_id, use_hdfs)`` pairs in
    role first-appearance order — the same order the scalar model's
    per-device dict accumulates and maxes over.
    """

    name: str
    num_tasks: int
    t_avg: float
    gc_coeff: float
    delta_scale: float
    fill_seconds: float
    delta_read: float
    delta_write: float
    read_groups: tuple[tuple[int, bool], ...]
    write_groups: tuple[tuple[int, bool], ...]


def _group_channels(channels, groups):
    """Group one direction's channels by role, appending to ``groups``.

    Returns ``(group_id, use_hdfs)`` pairs.  Channel order is preserved
    within each role (the scalar model sums ``D/BW`` in channel order)
    and roles keep first-appearance order (its per-device dict iterates
    insertion order before the max).
    """
    by_role: dict[str, list] = {}
    for channel in channels:
        by_role.setdefault(channel.role, []).append(
            (channel.total_bytes, channel.request_size, channel.is_write)
        )
    made = []
    for role, members in by_role.items():
        made.append((len(groups), role == "hdfs"))
        groups.append(tuple(members))
    return tuple(made)


def _stages_from_report(report: ProfilingReport, groups: list) -> tuple:
    """Kernel stages for the exact model; unknown roles are an error.

    Mirrors ``Predictor._stage_variables`` against ``{"hdfs", "local"}``
    devices: empty channels are skipped, any other role has no target
    device and raises the predictor's :class:`~repro.errors.ModelError`.
    """
    stages = []
    for stage in report.stages:
        reads, writes = [], []
        for channel in stage.channels:
            if channel.total_bytes == 0:
                continue
            if channel.role not in _DISK_ROLES:
                raise ModelError(
                    f"stage {stage.name}: no target device for role"
                    f" {channel.role!r}"
                )
            (writes if channel.is_write else reads).append(channel)
        stages.append(
            _KernelStage(
                name=stage.name,
                num_tasks=stage.num_tasks,
                t_avg=stage.t_avg,
                gc_coeff=stage.gc_coeff,
                delta_scale=stage.delta_scale,
                fill_seconds=stage.fill_seconds,
                delta_read=stage.delta_read,
                delta_write=stage.delta_write,
                read_groups=_group_channels(reads, groups),
                write_groups=_group_channels(writes, groups),
            )
        )
    return tuple(stages)


def _stages_from_terms(stage_terms, groups: list) -> tuple:
    """Kernel stages for the lower bound; non-disk roles are skipped.

    ``stage_terms`` duck-types :class:`repro.cloud.bounds._StageTerms`
    (whose channels are already filtered to disk roles).
    """
    stages = []
    for terms in stage_terms:
        reads = [c for c in terms.read_channels if c.role in _DISK_ROLES]
        writes = [c for c in terms.write_channels if c.role in _DISK_ROLES]
        stages.append(
            _KernelStage(
                name=getattr(terms, "name", ""),
                num_tasks=terms.num_tasks,
                t_avg=terms.t_avg,
                gc_coeff=terms.gc_coeff,
                delta_scale=terms.delta_scale,
                fill_seconds=terms.fill_seconds,
                delta_read=terms.delta_read,
                delta_write=terms.delta_write,
                read_groups=_group_channels(reads, groups),
                write_groups=_group_channels(writes, groups),
            )
        )
    return tuple(stages)


# -- the scoring engine -------------------------------------------------------


class _Engine:
    """Shared batch scorer behind the exact evaluator and the lower bound.

    Parameterized on how per-group ``sum(D / BW)`` limits are computed
    for one disk spec (``exact=True`` reads the built bandwidth tables,
    ``exact=False`` the closed-form :func:`bandwidth_upper_bound`
    ceilings), on an optional multiplicative ``safety`` factor, and on
    whether the model's ``per_node == 0`` short-circuit applies
    (``zero_check`` — the scalar bound has no such branch).
    """

    def __init__(self, stages, groups, exact: bool, safety: float | None,
                 zero_check: bool) -> None:
        self._stages = stages
        self._groups = tuple(groups)
        self._exact = exact
        self._safety = safety
        self._zero_check = zero_check
        self._limits_cache: dict[tuple, tuple[float, ...]] = {}
        self._disk_cost_cache: dict[tuple, float] = {}
        self._price_cache: dict[int, float] = {}

    # per-unique-spec tables ------------------------------------------------

    def _limits(self, spec: tuple) -> tuple[float, ...]:
        """Per-group ``sum(D / BW)`` seconds for one ``(kind, size_gb)``.

        Exact mode builds the disk's bandwidth tables through the same
        scalar code path the predictor uses and accumulates in channel
        order — so the floats match the scalar model's bit for bit.
        """
        cached = self._limits_cache.get(spec)
        if cached is None:
            from repro.cloud.disks import (
                bandwidth_upper_bound,
                make_persistent_disk,
            )

            kind, size_gb = spec
            out = []
            if self._exact:
                device = make_persistent_disk(kind, size_gb)
                for channels in self._groups:
                    total = 0.0
                    for total_bytes, request_size, is_write in channels:
                        total += total_bytes / device.bandwidth(
                            request_size, is_write
                        )
                    out.append(total)
            else:
                for channels in self._groups:
                    total = 0.0
                    for total_bytes, request_size, is_write in channels:
                        total += total_bytes / bandwidth_upper_bound(
                            kind, size_gb, request_size, is_write
                        )
                    out.append(total)
            cached = self._limits_cache[spec] = tuple(out)
        return cached

    def _disk_cost(self, spec: tuple) -> float:
        cached = self._disk_cost_cache.get(spec)
        if cached is None:
            from repro.cloud.pricing import disk_cost_per_hour

            cached = self._disk_cost_cache[spec] = disk_cost_per_hour(*spec)
        return cached

    def _price(self, vcpus: int) -> float:
        cached = self._price_cache.get(vcpus)
        if cached is None:
            from repro.cloud.instance import machine_for_vcpus

            cached = self._price_cache[vcpus] = machine_for_vcpus(
                vcpus
            ).price_per_hour
        return cached

    # scoring ---------------------------------------------------------------

    def score(self, batch: CandidateBatch, want_cost: bool,
              want_bottlenecks: bool, backend: str | None) -> BatchScores:
        if want_cost and batch.vcpus is None:
            raise ModelError(
                "batch carries no machine vcpus; cost scoring needs them"
                " (score with want_cost=False for model-only batches)"
            )
        module = _resolve_backend(backend)
        stage_names = tuple(stage.name for stage in self._stages)
        if module is not None:
            runtime, cost, codes = self._score_numpy(
                module, batch, want_cost, want_bottlenecks
            )
            name = "numpy"
        else:
            runtime, cost, codes = self._score_python(
                batch, want_cost, want_bottlenecks
            )
            name = "python"
        return BatchScores(
            runtime_seconds=runtime,
            cost_dollars=cost,
            bottlenecks=codes,
            stage_names=stage_names,
            backend=name,
        )

    def _score_python(self, batch, want_cost, want_bottlenecks):
        n = len(batch)
        # One pass over the batch building unique-key index columns:
        # disk specs, (N, P) operating points, (hdfs, local, N) I/O
        # points, and (vcpus, I/O point) price points.  All downstream
        # arithmetic then runs once per *unique* key and is gathered —
        # exact, because identical inputs through identical float
        # operations give identical results.
        spec_map: dict = {}
        spec_list: list[tuple] = []
        nc_map: dict = {}
        nc_list: list[tuple] = []
        nc_ids: list[int] = []
        io_map: dict = {}
        io_list: list[tuple] = []
        io_ids: list[int] = []
        rate_map: dict = {}
        rate_list: list[tuple] = []
        rate_ids: list[int] = []
        vcpus = batch.vcpus if want_cost else None
        rows = zip(batch.nodes, batch.cores, batch.hdfs_kinds,
                   batch.hdfs_sizes_gb, batch.local_kinds,
                   batch.local_sizes_gb)
        for i, (node, core, hk, hg, lk, lg) in enumerate(rows):
            key = (hk, hg)
            h = spec_map.get(key)
            if h is None:
                h = spec_map[key] = len(spec_list)
                spec_list.append(key)
            key = (lk, lg)
            lo = spec_map.get(key)
            if lo is None:
                lo = spec_map[key] = len(spec_list)
                spec_list.append(key)
            key = (node, core)
            a = nc_map.get(key)
            if a is None:
                a = nc_map[key] = len(nc_list)
                nc_list.append(key)
            nc_ids.append(a)
            key = (h, lo, node)
            b = io_map.get(key)
            if b is None:
                b = io_map[key] = len(io_list)
                io_list.append(key)
            io_ids.append(b)
            if vcpus is not None:
                key = (vcpus[i], b)
                r = rate_map.get(key)
                if r is None:
                    r = rate_map[key] = len(rate_list)
                    rate_list.append((vcpus[i], h, lo, node))
                rate_ids.append(r)

        limits = [self._limits(spec) for spec in spec_list]
        zero_check = self._zero_check
        total = [0.0] * n
        per_stage_codes: list[bytes] = []
        for stage in self._stages:
            ts_tab = []
            for node, core in nc_list:
                per_task = stage.t_avg + stage.gc_coeff * core
                value = (
                    stage.num_tasks / (node * core) * per_task
                    + stage.delta_scale
                )
                ts_tab.append(value if value > 0.0 else 0.0)
            tr_tab = self._limit_table(
                stage.read_groups, stage.fill_seconds, stage.delta_read,
                io_list, limits, zero_check,
            )
            tw_tab = self._limit_table(
                stage.write_groups, stage.fill_seconds, stage.delta_write,
                io_list, limits, zero_check,
            )
            codes = bytearray(n) if want_bottlenecks else None
            # Fused gather: max of the three terms with the scalar
            # model's first-maximal tie-break, accumulated into t_app.
            if codes is not None:
                for i in range(n):
                    ts = ts_tab[nc_ids[i]]
                    b = io_ids[i]
                    tr = tr_tab[b]
                    tw = tw_tab[b]
                    if ts >= tr:
                        if ts >= tw:
                            t = ts
                        else:
                            t = tw
                            codes[i] = 2
                    elif tr >= tw:
                        t = tr
                        codes[i] = 1
                    else:
                        t = tw
                        codes[i] = 2
                    total[i] += t
                per_stage_codes.append(bytes(codes))
            else:
                for i in range(n):
                    ts = ts_tab[nc_ids[i]]
                    b = io_ids[i]
                    tr = tr_tab[b]
                    tw = tw_tab[b]
                    if tr > ts:
                        ts = tr
                    if tw > ts:
                        ts = tw
                    total[i] += ts
        safety = self._safety
        if safety is not None:
            total = [t * safety for t in total]
        cost = None
        if want_cost:
            rate_tab = [
                (self._price(v) + self._disk_cost(spec_list[h])
                 + self._disk_cost(spec_list[lo])) * node
                for v, h, lo, node in rate_list
            ]
            cost = array("d", [
                rate_tab[r] * t / 3600.0 for r, t in zip(rate_ids, total)
            ])
        codes_out = tuple(per_stage_codes) if want_bottlenecks else None
        return array("d", total), cost, codes_out

    def _limit_table(self, direction_groups, fill, delta, io_list, limits,
                     zero_check):
        """Per-unique-(hdfs, local, N) I/O limit term for one direction."""
        table = []
        for h, lo, node in io_list:
            per_node = None
            for gid, use_hdfs in direction_groups:
                limit = limits[h][gid] if use_hdfs else limits[lo][gid]
                if per_node is None or limit > per_node:
                    per_node = limit
            if per_node is None or (zero_check and per_node == 0.0):
                table.append(0.0)
            else:
                value = per_node / node + fill + delta
                table.append(value if value > 0.0 else 0.0)
        return table

    def _score_numpy(self, np, batch, want_cost, want_bottlenecks):
        n = len(batch)
        nodes = np.asarray(batch.nodes, dtype=np.float64)
        cores = np.asarray(batch.cores, dtype=np.float64)
        h_inv, h_specs = _np_unique_specs(
            np, batch.hdfs_kinds, batch.hdfs_sizes_gb
        )
        l_inv, l_specs = _np_unique_specs(
            np, batch.local_kinds, batch.local_sizes_gb
        )
        num_groups = len(self._groups)
        h_limits = np.asarray(
            [self._limits(spec) for spec in h_specs], dtype=np.float64
        ).reshape(len(h_specs), num_groups)
        l_limits = np.asarray(
            [self._limits(spec) for spec in l_specs], dtype=np.float64
        ).reshape(len(l_specs), num_groups)

        def limit_term(direction_groups, fill, delta):
            per_node = None
            for gid, use_hdfs in direction_groups:
                column = (
                    h_limits[h_inv, gid] if use_hdfs else l_limits[l_inv, gid]
                )
                per_node = (
                    column if per_node is None
                    else np.maximum(per_node, column)
                )
            if per_node is None:
                return np.zeros(n)
            value = per_node / nodes + fill + delta
            term = np.where(value > 0.0, value, 0.0)
            if self._zero_check:
                term = np.where(per_node == 0.0, 0.0, term)
            return term

        total = np.zeros(n)
        per_stage_codes = []
        for stage in self._stages:
            per_task = stage.t_avg + stage.gc_coeff * cores
            value = (
                stage.num_tasks / (nodes * cores) * per_task
                + stage.delta_scale
            )
            ts = np.where(value > 0.0, value, 0.0)
            tr = limit_term(stage.read_groups, stage.fill_seconds,
                            stage.delta_read)
            tw = limit_term(stage.write_groups, stage.fill_seconds,
                            stage.delta_write)
            if want_bottlenecks:
                codes = np.where(
                    (ts >= tr) & (ts >= tw), 0, np.where(tr >= tw, 1, 2)
                ).astype(np.uint8)
                per_stage_codes.append(codes)
            total = total + np.maximum(np.maximum(ts, tr), tw)
        if self._safety is not None:
            total = total * self._safety
        cost = None
        if want_cost:
            v_unique, v_inv = np.unique(
                np.asarray(batch.vcpus, dtype=np.int64), return_inverse=True
            )
            price = np.asarray(
                [self._price(int(v)) for v in v_unique], dtype=np.float64
            )[v_inv]
            h_cost = np.asarray(
                [self._disk_cost(spec) for spec in h_specs], dtype=np.float64
            )[h_inv]
            l_cost = np.asarray(
                [self._disk_cost(spec) for spec in l_specs], dtype=np.float64
            )[l_inv]
            rate = (price + h_cost + l_cost) * nodes
            cost = rate * total / 3600.0
        codes_out = tuple(per_stage_codes) if want_bottlenecks else None
        return total, cost, codes_out


def _np_unique_specs(np, kinds, sizes_gb):
    """Candidate → unique ``(kind, size_gb)`` index, without a Python loop.

    Kind labels and sizes are uniqued separately at C speed, combined
    into a single integer key, and uniqued again; only the (tiny) unique
    spec list is materialized in Python.
    """
    kind_arr = np.asarray(kinds)
    size_arr = np.asarray(sizes_gb, dtype=np.float64)
    unique_kinds, kind_inv = np.unique(kind_arr, return_inverse=True)
    unique_sizes, size_inv = np.unique(size_arr, return_inverse=True)
    stride = len(unique_sizes)
    combined = kind_inv.astype(np.int64) * stride + size_inv
    unique_combined, inverse = np.unique(combined, return_inverse=True)
    specs = [
        (str(unique_kinds[key // stride]), float(unique_sizes[key % stride]))
        for key in unique_combined
    ]
    return inverse, specs


# -- public facades -----------------------------------------------------------


class Eq1BatchEvaluator:
    """Bit-exact batch form of the scalar Eq.-1 prediction stack.

    Built once from a profiling report; each :meth:`score` call
    evaluates every candidate in a :class:`CandidateBatch` and returns
    :class:`BatchScores` whose runtimes, costs, and bottleneck labels
    equal the scalar ``Predictor`` / ``CostOptimizer.evaluate`` outputs
    exactly (see the module docstring for why).
    """

    def __init__(self, report: ProfilingReport, backend: str | None = None) -> None:
        self.report = report
        self._backend = backend
        groups: list = []
        stages = _stages_from_report(report, groups)
        self._engine = _Engine(
            stages, groups, exact=True, safety=None, zero_check=True
        )

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Profiled stage labels, in prediction order."""
        return tuple(stage.name for stage in self._engine._stages)

    def score(
        self,
        batch: CandidateBatch,
        want_cost: bool = True,
        want_bottlenecks: bool = True,
        backend: str | None = None,
    ) -> BatchScores:
        """Score every candidate; see :class:`BatchScores` for the layout."""
        return self._engine.score(
            batch, want_cost, want_bottlenecks, backend or self._backend
        )


def score_batch(
    report: ProfilingReport,
    batch: CandidateBatch,
    want_cost: bool = True,
    want_bottlenecks: bool = True,
    backend: str | None = None,
) -> BatchScores:
    """One-shot convenience: ``Eq1BatchEvaluator(report).score(batch)``.

    Building the evaluator extracts per-stage constants once; reuse an
    :class:`Eq1BatchEvaluator` across calls to also reuse its memoized
    per-disk bandwidth tables.
    """
    return Eq1BatchEvaluator(report, backend=backend).score(
        batch, want_cost=want_cost, want_bottlenecks=want_bottlenecks
    )


class LowerBoundBatch:
    """Vectorized mirror of :class:`repro.cloud.bounds.RuntimeLowerBound`.

    Takes the bound's extracted per-stage terms and reproduces its
    scalar ``runtime_bound``/``cost_bound`` arithmetic — closed-form
    bandwidth ceilings, the same clamps, the trailing ``safety``
    multiplier — elementwise over a batch, so branch-and-bound pruning
    decisions (and therefore evaluated/pruned counts) are identical to
    the per-candidate implementation on either backend.
    """

    def __init__(self, stage_terms, safety: float = 1.0,
                 backend: str | None = None) -> None:
        self._backend = backend
        groups: list = []
        stages = _stages_from_terms(stage_terms, groups)
        self._engine = _Engine(
            stages, groups, exact=False, safety=safety, zero_check=False
        )

    def runtime_bounds(self, batch: CandidateBatch) -> Sequence[float]:
        """Per-candidate runtime lower bounds, in seconds."""
        return self._engine.score(
            batch, want_cost=False, want_bottlenecks=False,
            backend=self._backend,
        ).runtime_seconds

    def cost_bounds(self, batch: CandidateBatch) -> Sequence[float]:
        """Per-candidate cost lower bounds, in dollars."""
        return self._engine.score(
            batch, want_cost=True, want_bottlenecks=False,
            backend=self._backend,
        ).cost_dollars
