"""Array-native analytic model kernels (see :mod:`repro.model.arrays`)."""

from repro.model.arrays import (
    BOTTLENECK_LABELS,
    BatchScores,
    CandidateBatch,
    Eq1BatchEvaluator,
    LowerBoundBatch,
    backend_name,
    score_batch,
)

__all__ = [
    "BOTTLENECK_LABELS",
    "BatchScores",
    "CandidateBatch",
    "Eq1BatchEvaluator",
    "LowerBoundBatch",
    "backend_name",
    "score_batch",
]
