"""Parameter sweeps: the x-axes of the paper's figures.

Two sweeps recur throughout the evaluation: executor cores per node
(Figs. 3 and 7-12) and provisioned local-disk size (Figs. 13-15).  Each
sweep point pairs the simulator's measured runtime ("exp") with the
model's prediction, ready for error reporting.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.analysis.errors import ExpVsModel
from repro.cloud.disks import make_persistent_disk
from repro.cluster.cluster import Cluster
from repro.core.predictor import Predictor
from repro.workloads.base import WorkloadSpec
from repro.workloads.runner import measure_workload


@dataclass(frozen=True)
class SweepPoint:
    """One sweep x-value with per-stage and total comparisons."""

    x: float
    stage_points: tuple[ExpVsModel, ...]
    total: ExpVsModel


def sweep_cores(
    workload: WorkloadSpec,
    predictor: Predictor,
    cluster: Cluster,
    core_counts: Sequence[int],
) -> list[SweepPoint]:
    """Measure and predict every stage across per-node core counts."""
    points: list[SweepPoint] = []
    model = predictor.model_for_cluster(cluster)
    for cores in core_counts:
        measurement = measure_workload(cluster, cores, workload)
        prediction = model.predict(cluster.num_slaves, cores)
        stage_points = tuple(
            ExpVsModel(
                label=f"{stage.name}@P={cores}",
                measured=measurement.stage(stage.name).makespan,
                predicted=prediction.stage(stage.name).t_stage,
            )
            for stage in workload.stages
        )
        points.append(
            SweepPoint(
                x=float(cores),
                stage_points=stage_points,
                total=ExpVsModel(
                    label=f"total@P={cores}",
                    measured=measurement.total_seconds,
                    predicted=prediction.t_app,
                ),
            )
        )
    return points


def sweep_local_disk_sizes(
    predictor: Predictor,
    sizes_gb: Sequence[float],
    num_workers: int,
    cores_per_node: int,
    local_kind: str = "pd-standard",
    hdfs_kind: str = "pd-standard",
    hdfs_gb: float = 1000.0,
    measure: Callable[[dict], float] | None = None,
) -> list[tuple[float, float]]:
    """Predicted runtime vs. local-disk size (Fig. 14/15's x-axis).

    Returns ``(size_gb, predicted_seconds)`` pairs.  Pass ``measure`` to
    also obtain a "measured" value per point — it receives the
    ``{"hdfs": device, "local": device}`` mapping and returns seconds —
    which callers can zip against the predictions.
    """
    results: list[tuple[float, float]] = []
    for size_gb in sizes_gb:
        devices = {
            "hdfs": make_persistent_disk(hdfs_kind, hdfs_gb),
            "local": make_persistent_disk(local_kind, size_gb),
        }
        model = predictor.model_for_devices(devices)
        results.append((size_gb, model.runtime(num_workers, cores_per_node)))
    return results
