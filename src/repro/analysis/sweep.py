"""Parameter sweeps: the x-axes of the paper's figures.

Two sweeps recur throughout the evaluation: executor cores per node
(Figs. 3 and 7-12) and provisioned local-disk size (Figs. 13-15).  Each
sweep point pairs the simulator's measured runtime ("exp") with the
model's prediction, ready for error reporting.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.errors import ExpVsModel
from repro.cluster.cluster import Cluster
from repro.core.predictor import Predictor
from repro.model.arrays import CandidateBatch, score_batch
from repro.workloads.base import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.cache import ResultCache


@dataclass(frozen=True)
class SweepPoint:
    """One sweep x-value with per-stage and total comparisons."""

    x: float
    stage_points: tuple[ExpVsModel, ...]
    total: ExpVsModel


def sweep_cores(
    workload: WorkloadSpec,
    predictor: Predictor,
    cluster: Cluster,
    core_counts: Sequence[int],
    cache: ResultCache | None = None,
    workers: int | None = None,
) -> list[SweepPoint]:
    """Measure and predict every stage across per-node core counts.

    Runs through the experiment pipeline: pass a shared ``cache`` and
    points already simulated — by an earlier sweep, a validation run, or
    another process via a cache file — are reused bit-identically.
    ``workers`` fans the core-count axis across a
    :mod:`repro.parallel` process pool (``None``/``1`` serial, ``0``
    auto-sized); the points come back bit-identical either way.
    """
    # Imported here: repro.analysis is a pipeline dependency (error
    # metrics), so the orchestration layer cannot be a module-level one.
    from repro.pipeline.experiment import Experiment
    from repro.pipeline.sources import ResolvedSource

    experiment = Experiment(
        ResolvedSource(workload, predictor.report), cluster, cache=cache
    )
    results = experiment.run_grid(
        nodes=(cluster.num_slaves,),
        cores_per_node=tuple(core_counts),
        workers=workers,
    )
    points: list[SweepPoint] = []
    for cores, result in zip(core_counts, results):
        stage_points = tuple(
            ExpVsModel(
                label=f"{stage.name}@P={cores}",
                measured=stage.measured_seconds,
                predicted=stage.predicted_seconds,
            )
            for stage in result.stages
        )
        points.append(
            SweepPoint(
                x=float(cores),
                stage_points=stage_points,
                total=ExpVsModel(
                    label=f"total@P={cores}",
                    measured=result.measured_seconds,
                    predicted=result.predicted_seconds,
                ),
            )
        )
    return points


def sweep_local_disk_sizes(
    predictor: Predictor,
    sizes_gb: Sequence[float],
    num_workers: int,
    cores_per_node: int,
    local_kind: str = "pd-standard",
    hdfs_kind: str = "pd-standard",
    hdfs_gb: float = 1000.0,
    measure: Callable[[dict], float] | None = None,
) -> list[tuple[float, float]]:
    """Predicted runtime vs. local-disk size (Fig. 14/15's x-axis).

    Returns ``(size_gb, predicted_seconds)`` pairs.  Pass ``measure`` to
    also obtain a "measured" value per point — it receives the
    ``{"hdfs": device, "local": device}`` mapping and returns seconds —
    which callers can zip against the predictions.

    Predictions route through the array kernel
    (:mod:`repro.model.arrays`): the whole size axis is one
    :class:`~repro.model.arrays.CandidateBatch` scored in a single pass,
    with values bit-identical to building a scalar model per size.
    """
    # Model-only batch: the swept (N, P) need not be a purchasable
    # machine shape, so no ``vcpus`` column and no cost scoring.
    count = len(sizes_gb)
    batch = CandidateBatch(
        nodes=(num_workers,) * count,
        cores=(cores_per_node,) * count,
        hdfs_kinds=(hdfs_kind,) * count,
        hdfs_sizes_gb=(hdfs_gb,) * count,
        local_kinds=(local_kind,) * count,
        local_sizes_gb=tuple(sizes_gb),
    )
    scores = score_batch(
        predictor.report, batch, want_cost=False, want_bottlenecks=False
    )
    return [
        (size_gb, float(predicted))
        for size_gb, predicted in zip(sizes_gb, scores.runtime_seconds)
    ]
