"""Prediction-error metrics, matching how the paper reports accuracy.

The paper quotes the *average* relative error between measured ("exp") and
model-predicted runtimes per application — e.g. <6% for GATK4 (Fig. 7),
5.3% for LR, 8.4% for SVM, 5.2% for PR, 3.6% for TC, 3.9% for TS.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ModelError


def relative_error(measured: float, predicted: float) -> float:
    """``|predicted - measured| / measured`` (the paper's error rate)."""
    if measured <= 0:
        raise ModelError(f"measured value must be positive, got {measured}")
    return abs(predicted - measured) / measured


@dataclass(frozen=True)
class ExpVsModel:
    """One comparison point: a labelled (measured, predicted) pair."""

    label: str
    measured: float
    predicted: float

    @property
    def error(self) -> float:
        """Relative error of this point."""
        return relative_error(self.measured, self.predicted)


def average_error(points: Sequence[ExpVsModel]) -> float:
    """Mean relative error over comparison points."""
    if not points:
        raise ModelError("cannot average zero comparison points")
    return sum(point.error for point in points) / len(points)


def max_error(points: Sequence[ExpVsModel]) -> float:
    """Worst relative error over comparison points."""
    if not points:
        raise ModelError("cannot take the max of zero comparison points")
    return max(point.error for point in points)


def error_summary(points: Sequence[ExpVsModel]) -> str:
    """One-line summary: ``avg X.X% / max Y.Y% over N points``."""
    return (
        f"avg {average_error(points) * 100:.1f}% /"
        f" max {max_error(points) * 100:.1f}% over {len(points)} points"
    )
