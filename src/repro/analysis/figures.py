"""ASCII bar charts: figure-shaped output for terminal reports.

The benchmark harness regenerates the paper's figures as tables; these
helpers additionally render grouped horizontal bar charts so the *shape*
of a figure (which bar dominates, where a curve flattens) is visible at a
glance in plain text.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import DoppioError

#: Glyph used for bar bodies.
BAR = "#"


class FigureError(DoppioError):
    """Invalid figure specification."""


def render_bars(
    title: str,
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """One horizontal bar per labelled value, scaled to the maximum.

    >>> print(render_bars("t", {"a": 2.0, "b": 1.0}, width=4))
    t
    a  ####  2.0
    b  ##    1.0
    """
    if not values:
        raise FigureError("a bar chart needs at least one value")
    if width <= 0:
        raise FigureError("bar width must be positive")
    for label, value in values.items():
        if value < 0:
            raise FigureError(f"bar {label!r}: negative values unsupported")
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = [title]
    for label, value in values.items():
        length = 0 if peak == 0 else round(value / peak * width)
        bar = (BAR * length).ljust(width)
        suffix = f"{value:.1f}{unit}"
        lines.append(f"{label.ljust(label_width)}  {bar}  {suffix}")
    return "\n".join(lines)


def render_grouped_bars(
    title: str,
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Grouped bars (e.g. per stage, one bar per configuration).

    All bars share one scale so groups are visually comparable.
    """
    if not groups:
        raise FigureError("a grouped chart needs at least one group")
    all_values = [
        value for group in groups.values() for value in group.values()
    ]
    if not all_values:
        raise FigureError("groups must contain values")
    if any(value < 0 for value in all_values):
        raise FigureError("negative values unsupported")
    peak = max(all_values)
    label_width = max(
        len(label) for group in groups.values() for label in group
    )
    lines = [title]
    for group_name, group in groups.items():
        lines.append(f"[{group_name}]")
        for label, value in group.items():
            length = 0 if peak == 0 else round(value / peak * width)
            bar = (BAR * length).ljust(width)
            lines.append(
                f"  {label.ljust(label_width)}  {bar}  {value:.1f}{unit}"
            )
    return "\n".join(lines)


def render_sparkline(values: Sequence[float]) -> str:
    """A one-line trend (for runtime-vs-size curves in summaries)."""
    if not values:
        raise FigureError("a sparkline needs at least one value")
    glyphs = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    if high == low:
        return glyphs[0] * len(values)
    scaled = [
        glyphs[min(int((v - low) / (high - low) * len(glyphs)), len(glyphs) - 1)]
        for v in values
    ]
    return "".join(scaled)
