"""Plain-text table/series rendering for the benchmark harness.

The benchmark suite regenerates every table and figure of the paper as
text; these helpers keep the formatting uniform (fixed-width columns,
units matching the paper's: minutes for stage runtimes, MB/s for
bandwidths, dollars for costs).
"""

from __future__ import annotations

from collections.abc import Sequence


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    """One fixed-width row; cells are stringified and right-padded."""
    parts = []
    for cell, width in zip(cells, widths):
        text = f"{cell}"
        parts.append(text.ljust(width))
    return "  ".join(parts).rstrip()


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """A titled fixed-width table."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(f"{cell}"))
    lines = [title, format_row(headers, widths)]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(format_row(row, widths) for row in rows)
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    series: dict[str, Sequence[float]],
    x_values: Sequence[object],
    value_format: str = "{:.1f}",
) -> str:
    """A figure rendered as one row per series (x-values as columns)."""
    headers = [x_label] + [f"{x}" for x in x_values]
    rows = []
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values for"
                f" {len(x_values)} x-values"
            )
        rows.append([name] + [value_format.format(v) for v in values])
    return render_table(title, headers, rows)
