"""Analysis utilities: error metrics, sweeps, and table/figure rendering."""

from repro.analysis.errors import (
    relative_error,
    average_error,
    max_error,
    ExpVsModel,
    error_summary,
)
from repro.analysis.sweep import sweep_cores, sweep_local_disk_sizes, SweepPoint
from repro.analysis.report import render_table, render_series, format_row
from repro.analysis.figures import (
    render_bars,
    render_grouped_bars,
    render_sparkline,
)

__all__ = [
    "relative_error",
    "average_error",
    "max_error",
    "ExpVsModel",
    "error_summary",
    "sweep_cores",
    "sweep_local_disk_sizes",
    "SweepPoint",
    "render_table",
    "render_series",
    "format_row",
    "render_bars",
    "render_grouped_bars",
    "render_sparkline",
]
