"""Supervised task maps: retries, timeouts, pool rebuilds, quarantine.

:class:`ProcessPoolBackend.map` is fast but brittle: one worker death
raises ``BrokenProcessPool`` and discards the whole map, a hung task
stalls it forever, and a chunked submission lets one raising item take
its chunkmates' results down with it.  :class:`TaskSupervisor` is the
robust path the pipeline's long fan-outs run through:

- **per-item futures** — every item is submitted individually, so each
  item's outcome (result, exception, worker loss, timeout) is observed
  and handled on its own;
- **bounded retries with deterministic backoff** — failed and timed-out
  items are retried up to :attr:`ExecutionPolicy.max_attempts` times,
  waiting :meth:`ExecutionPolicy.backoff_seconds` between attempts (a
  pure exponential schedule, no jitter: reproducible timings are worth
  more here than thundering-herd protection on a local pool);
- **pool rebuilds** — after ``BrokenProcessPool`` the dead pool is
  replaced and only the in-flight items are resubmitted (each charged
  one attempt: an item that reproducibly kills its worker must converge
  to quarantine, not respawn pools forever);
- **wall-clock timeouts** — an in-flight item past its deadline is
  charged a timeout attempt; since a running future cannot be cancelled,
  the pool's workers are killed and rebuilt, and the *innocent* in-flight
  items are resubmitted without being charged;
- **quarantine over abort** — items that fail every attempt land in a
  structured :class:`TaskFailure` report while the rest of the map
  completes (``on_failure="abort"`` flips this to fail-fast).

Successful results come back **in input order**, computed by exactly the
same function calls a serial run would make — the supervisor adds
scheduling, never semantics — so the bit-identical-to-serial contract of
:mod:`repro.parallel` holds under supervision too (pinned by
``tests/properties/test_parallel.py`` and ``tests/chaos/``).

On a :class:`SerialBackend` the retry/backoff/quarantine semantics are
identical but timeouts are not enforced: there is no preemption inside
one process, so a hung serial task hangs the caller (documented in
``docs/EXECUTION.md``).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ConfigurationError, ExecutionError
from repro.parallel.backends import ProcessPoolBackend

#: ``ExecutionPolicy.on_failure`` values: keep going and report, or stop.
FAILURE_MODES = ("quarantine", "abort")

#: ``TaskFailure.kind`` values.
KIND_EXCEPTION = "exception"
KIND_TIMEOUT = "timeout"
KIND_WORKER_LOSS = "worker-loss"


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a supervised map treats failure: attempts, deadline, backoff.

    The default policy retries twice (three attempts total) with a tiny
    deterministic exponential backoff and no deadline — safe for the
    pipeline's deterministic task functions, where a repeated failure is
    almost always environmental (worker OOM-killed, machine descheduled)
    rather than data-dependent.

    ``backoff_seconds(attempt)`` is the full schedule:
    ``backoff_base_seconds * backoff_factor**(attempt - 1)``, capped at
    ``backoff_max_seconds`` — attempt 1 failing waits the base, attempt
    2 twice that, and so on.  Pure and stateless, so tests (and the
    chaos harness) can assert the exact waits a run performed.
    """

    max_attempts: int = 3
    timeout_seconds: float | None = None
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 5.0
    on_failure: str = "quarantine"

    def __post_init__(self) -> None:
        if (
            not isinstance(self.max_attempts, int)
            or isinstance(self.max_attempts, bool)
            or self.max_attempts < 1
        ):
            raise ConfigurationError(
                f"max_attempts must be an int >= 1, got {self.max_attempts!r}"
            )
        if self.timeout_seconds is not None and not self.timeout_seconds > 0:
            raise ConfigurationError(
                f"timeout_seconds must be positive or None,"
                f" got {self.timeout_seconds!r}"
            )
        if self.backoff_base_seconds < 0:
            raise ConfigurationError(
                f"backoff_base_seconds must be >= 0,"
                f" got {self.backoff_base_seconds!r}"
            )
        if self.backoff_factor < 1:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.backoff_max_seconds < 0:
            raise ConfigurationError(
                f"backoff_max_seconds must be >= 0,"
                f" got {self.backoff_max_seconds!r}"
            )
        if self.on_failure not in FAILURE_MODES:
            raise ConfigurationError(
                f"on_failure must be one of {FAILURE_MODES},"
                f" got {self.on_failure!r}"
            )

    def backoff_seconds(self, attempt: int) -> float:
        """Deterministic wait after ``attempt`` failed (1-based)."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_base_seconds * self.backoff_factor ** (attempt - 1),
            self.backoff_max_seconds,
        )

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        deadline = (
            f"{self.timeout_seconds:g}s timeout"
            if self.timeout_seconds is not None
            else "no timeout"
        )
        return (
            f"{self.max_attempts} attempt(s), {deadline},"
            f" backoff {self.backoff_base_seconds:g}s"
            f" x{self.backoff_factor:g} (cap {self.backoff_max_seconds:g}s),"
            f" {self.on_failure}"
        )


def validate_execution(
    execution: ExecutionPolicy | None,
) -> ExecutionPolicy | None:
    """Pass through a policy (or ``None``), rejecting anything else.

    The shared argument check for every API that threads ``execution=``
    down to a supervised map (``run_grid``, ``grid_search``, the CLI).
    """
    if execution is not None and not isinstance(execution, ExecutionPolicy):
        raise ConfigurationError(
            f"execution must be an ExecutionPolicy or None,"
            f" got {execution!r}"
        )
    return execution


@dataclass(frozen=True)
class TaskFailure:
    """One quarantined item: what it was and how it kept failing."""

    index: int
    item: Any
    kind: str
    attempts: int
    error_type: str
    message: str

    def describe(self) -> str:
        return (
            f"item {self.index} ({self.item!r}): {self.kind} after"
            f" {self.attempts} attempt(s) — {self.error_type}: {self.message}"
        )


@dataclass
class SupervisionReport:
    """Outcome of one supervised map.

    ``results`` is input-ordered; quarantined (and, under abort,
    never-started) indices hold ``None``.  The counters describe the
    run's failure history: ``attempts`` counts every charged attempt
    (successes included), ``backoff_waits`` the exact deterministic
    sleeps performed before retries, in the order they were scheduled.
    """

    results: list[Any]
    failures: tuple[TaskFailure, ...] = ()
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_losses: int = 0
    pool_rebuilds: int = 0
    backoff_waits: tuple[float, ...] = ()
    aborted: bool = False

    @property
    def ok(self) -> bool:
        """True iff every item produced a result."""
        return not self.failures and not self.aborted

    def raise_if_failed(self, label: str = "supervised map") -> None:
        """Promote failures to a structured :class:`ExecutionError`."""
        if self.ok:
            return
        detail = "; ".join(f.describe() for f in self.failures[:5])
        if len(self.failures) > 5:
            detail += f"; ... {len(self.failures) - 5} more"
        mode = "aborted" if self.aborted else "quarantined"
        raise ExecutionError(
            f"{label}: {len(self.failures)} item(s) {mode}"
            f" after {self.attempts} attempt(s)"
            f" ({self.pool_rebuilds} pool rebuild(s)): {detail}",
            failures=self.failures,
        )


@dataclass
class _InFlight:
    """Bookkeeping for one submitted future."""

    index: int
    deadline: float  # monotonic; inf when the policy has no timeout


class TaskSupervisor:
    """Run ``fn`` over ``items`` under an :class:`ExecutionPolicy`.

    Wraps an execution backend: a :class:`ProcessPoolBackend` gets the
    full event loop (per-item futures, deadlines, pool rebuilds); any
    other backend — :class:`~repro.parallel.backends.SerialBackend` in
    practice — gets in-process retries with the same backoff and
    quarantine semantics, minus timeout enforcement.

    Under a timeout the number of in-flight futures never exceeds the
    pool's worker count, so a submitted item starts (approximately)
    immediately and its wall-clock deadline measures *execution* time,
    not queue time; without one the window widens to keep workers
    saturated on the clean path.
    """

    def __init__(
        self,
        backend,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        if policy is None:
            policy = ExecutionPolicy()
        if not isinstance(policy, ExecutionPolicy):
            raise ConfigurationError(
                f"policy must be an ExecutionPolicy, got {policy!r}"
            )
        self.backend = backend
        self.policy = policy

    # -- public API ----------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Ordered results, or :class:`ExecutionError` on any quarantine."""
        report = self.run(fn, items)
        report.raise_if_failed()
        return report.results

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        on_result: Callable[[int, Any], None] | None = None,
    ) -> SupervisionReport:
        """Supervised map returning the full :class:`SupervisionReport`.

        ``on_result(index, result)`` fires once per successful item *in
        completion order*, before the map finishes — the hook incremental
        checkpointing hangs off (each merged grid shard is persisted as
        it lands, see ``docs/EXECUTION.md``).
        """
        items = list(items)
        if not items:
            return SupervisionReport(results=[])
        if isinstance(self.backend, ProcessPoolBackend):
            return self._run_pooled(fn, items, on_result)
        return self._run_serial(fn, items, on_result)

    # -- serial path ---------------------------------------------------------

    def _run_serial(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_result: Callable[[int, Any], None] | None,
    ) -> SupervisionReport:
        policy = self.policy
        report = SupervisionReport(results=[None] * len(items))
        failures: list[TaskFailure] = []
        waits: list[float] = []
        for index, item in enumerate(items):
            attempt = 0
            while True:
                attempt += 1
                report.attempts += 1
                try:
                    # Route through the backend's one-item map so the
                    # lazy-initializer contract stays the backend's.
                    result = self.backend.map(fn, [item])[0]
                except Exception as exc:
                    if attempt >= policy.max_attempts:
                        failures.append(TaskFailure(
                            index=index,
                            item=item,
                            kind=KIND_EXCEPTION,
                            attempts=attempt,
                            error_type=type(exc).__name__,
                            message=str(exc),
                        ))
                        if policy.on_failure == "abort":
                            report.aborted = True
                        break
                    report.retries += 1
                    delay = policy.backoff_seconds(attempt)
                    waits.append(delay)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                report.results[index] = result
                if on_result is not None:
                    on_result(index, result)
                break
            if report.aborted:
                break
        report.failures = tuple(failures)
        report.backoff_waits = tuple(waits)
        return report

    # -- pooled path ---------------------------------------------------------

    def _run_pooled(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_result: Callable[[int, Any], None] | None,
    ) -> SupervisionReport:
        policy = self.policy
        backend: ProcessPoolBackend = self.backend
        n = len(items)
        report = SupervisionReport(results=[None] * n)
        failures: dict[int, TaskFailure] = {}
        waits: list[float] = []
        attempts_used = [0] * n
        done_flags = [False] * n

        ready: deque[int] = deque(range(n))
        #: (monotonic ready-time, index) pairs waiting out a backoff.
        sleeping: list[tuple[float, int]] = []
        in_flight: dict[Future, _InFlight] = {}
        # With a timeout, cap in-flight futures at the worker count so a
        # submitted item starts (approximately) immediately and its
        # deadline measures execution, not queueing.  Without one, queue
        # depth costs nothing — keep the workers saturated instead of
        # lockstepping each completion with the next submit.
        max_in_flight = (
            backend.workers
            if policy.timeout_seconds is not None
            else max(backend.workers * 4, 1)
        )
        # An item that reproducibly breaks the pool is charged an attempt
        # per break, so rebuilds are bounded by the total attempt budget;
        # the margin absorbs submit-time races.
        rebuild_cap = policy.max_attempts * n + 8

        def charge_failure(
            index: int, kind: str, error_type: str, message: str
        ) -> None:
            attempts_used[index] += 1
            report.attempts += 1
            if kind == KIND_TIMEOUT:
                report.timeouts += 1
            elif kind == KIND_WORKER_LOSS:
                report.worker_losses += 1
            if attempts_used[index] >= policy.max_attempts:
                failures[index] = TaskFailure(
                    index=index,
                    item=items[index],
                    kind=kind,
                    attempts=attempts_used[index],
                    error_type=error_type,
                    message=message,
                )
                done_flags[index] = True
                if policy.on_failure == "abort":
                    report.aborted = True
            else:
                report.retries += 1
                delay = policy.backoff_seconds(attempts_used[index])
                waits.append(delay)
                sleeping.append((time.monotonic() + delay, index))
                sleeping.sort()

        def record_success(index: int, result: Any) -> None:
            attempts_used[index] += 1
            report.attempts += 1
            report.results[index] = result
            done_flags[index] = True
            if on_result is not None:
                on_result(index, result)

        def settle(future: Future, index: int) -> bool:
            """Handle one completed future; True if it broke the pool."""
            exc = future.exception()
            if exc is None:
                record_success(index, future.result())
                return False
            if isinstance(exc, BrokenProcessPool):
                charge_failure(
                    index, KIND_WORKER_LOSS, type(exc).__name__, str(exc)
                )
                return True
            charge_failure(index, KIND_EXCEPTION, type(exc).__name__, str(exc))
            return False

        def rebuild_pool() -> None:
            report.pool_rebuilds += 1
            if report.pool_rebuilds > rebuild_cap:
                raise ExecutionError(
                    f"supervised map: pool died {report.pool_rebuilds} times"
                    f" for {n} item(s) — giving up on rebuilding"
                    f" ({policy.describe()})",
                    failures=tuple(failures.values()),
                )
            backend.rebuild()

        while not report.aborted and (ready or sleeping or in_flight):
            now = time.monotonic()
            # Wake items whose backoff has elapsed.
            while sleeping and sleeping[0][0] <= now:
                ready.append(sleeping.pop(0)[1])
            while ready and len(in_flight) < max_in_flight:
                index = ready.popleft()
                try:
                    future = backend.submit(fn, items[index])
                except BrokenProcessPool:
                    # Pool broke between loop turns; rebuild and retry
                    # the submit (the item never ran: no charge).
                    ready.appendleft(index)
                    rebuild_pool()
                    continue
                deadline = (
                    time.monotonic() + policy.timeout_seconds
                    if policy.timeout_seconds is not None
                    else float("inf")
                )
                in_flight[future] = _InFlight(index=index, deadline=deadline)
            if not in_flight:
                if sleeping:
                    # Everything is waiting out a backoff.
                    pause = sleeping[0][0] - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                continue

            # Block until something completes, a deadline passes, or a
            # sleeping retry becomes ready.
            horizon = min(entry.deadline for entry in in_flight.values())
            if sleeping:
                horizon = min(horizon, sleeping[0][0])
            wait_timeout = (
                None if horizon == float("inf")
                else max(0.0, horizon - time.monotonic())
            )
            done, _ = wait(
                in_flight, timeout=wait_timeout, return_when=FIRST_COMPLETED
            )

            pool_broken = False
            for future in done:
                entry = in_flight.pop(future)
                pool_broken |= settle(future, entry.index)

            if pool_broken and in_flight:
                # A broken pool fails every outstanding future (the
                # executor's manager thread is setting their exceptions
                # right now); wait for it, salvage any that completed
                # with a result, and charge the rest as worker losses.
                settled, stalled = wait(in_flight, timeout=30.0)
                for future in settled:
                    settle(future, in_flight.pop(future).index)
                for future in stalled:  # pragma: no cover - stuck manager
                    charge_failure(
                        in_flight.pop(future).index,
                        KIND_WORKER_LOSS,
                        "BrokenProcessPool",
                        "pool broke with the task in flight",
                    )
            if pool_broken:
                rebuild_pool()
                continue

            # Deadline sweep: charge expired items, resubmit innocents.
            now = time.monotonic()
            expired = {
                entry.index
                for future, entry in in_flight.items()
                if entry.deadline <= now and not future.done()
            }
            if expired:
                for future, entry in list(in_flight.items()):
                    if future.done():
                        # Completed between wait() and the sweep.
                        settle(future, entry.index)
                    elif entry.index in expired:
                        charge_failure(
                            entry.index,
                            KIND_TIMEOUT,
                            "TimeoutError",
                            f"no result within {policy.timeout_seconds:g}s",
                        )
                    else:
                        # Innocent victim of the pool kill: resubmit
                        # without charging an attempt.
                        ready.append(entry.index)
                in_flight.clear()
                # Running futures cannot be cancelled; killing the
                # workers is the only way to stop a hung task.
                rebuild_pool()

        if report.aborted and in_flight:
            # Fail fast: abandon outstanding work and reclaim workers.
            for future in in_flight:
                future.cancel()
            in_flight.clear()
            rebuild_pool()

        report.failures = tuple(
            failures[index] for index in sorted(failures)
        )
        report.backoff_waits = tuple(waits)
        return report
