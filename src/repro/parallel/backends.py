"""Pluggable process-parallel execution backends.

The pipeline's expensive loops — :meth:`Experiment.run_grid` cells,
:meth:`CostOptimizer.grid_search` candidates — are embarrassingly
parallel: every item is an independent, deterministic computation keyed
purely by its inputs.  This module supplies the execution seam those
loops fan out through:

- :class:`SerialBackend` — run everything in-process, in order (the
  default; byte-for-byte the historical behaviour);
- :class:`ProcessPoolBackend` — fan items across a
  :class:`concurrent.futures.ProcessPoolExecutor`, auto-sized to the
  CPUs this process may actually use.

Both satisfy the :class:`ExecutionBackend` protocol, whose single
obligation makes parallelism safe to offer everywhere: **``map`` returns
results in the order of its inputs** (``concurrent.futures`` guarantees
this regardless of completion order).  Since every mapped function is
deterministic, a caller that merges results positionally gets output
bit-identical to a serial run — the invariant the property suite in
``tests/properties/test_parallel.py`` pins down.

Worker processes often need one-time, per-process state (e.g. a rebuilt
``Experiment``); pass ``initializer``/``initargs`` to
:func:`resolve_backend` and the pool forwards them to each worker on
start, exactly like ``ProcessPoolExecutor`` does.  See
``docs/PERFORMANCE.md`` for when ``workers=`` actually helps.

On top of ordered ``map``, :class:`ProcessPoolBackend` exposes the
primitives the supervised layer (:mod:`repro.parallel.supervisor`) is
built from: per-item :meth:`~ProcessPoolBackend.submit`,
:meth:`~ProcessPoolBackend.worker_pids` for host-level fault injection,
and :meth:`~ProcessPoolBackend.rebuild`, which kills the pool's worker
processes and discards the executor so the next submit gets a fresh
pool — the recovery step after worker death or a hung task.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.errors import ConfigurationError

#: ``workers=AUTO_WORKERS`` sizes the pool to :func:`available_cpus`.
AUTO_WORKERS = 0


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware).

    ``os.cpu_count`` reports the machine; a container or ``taskset`` may
    allow fewer.  Falls back to ``cpu_count`` where affinity is not a
    concept (macOS, Windows).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def auto_worker_count() -> int:
    """The worker count ``workers=AUTO_WORKERS`` resolves to.

    The single source of truth for affinity-aware auto-sizing: both
    :func:`resolve_backend` and the query service's compute tier size
    through this function, so "0 means the CPUs this process may use"
    cannot drift between the batch pipeline and the serving path.
    """
    return available_cpus()


@runtime_checkable
class ExecutionBackend(Protocol):
    """The execution seam: ordered ``map`` over independent items.

    Implementations must return results **in input order** and may not
    drop or duplicate items; beyond that, how and where the function
    runs is theirs to choose.  ``shutdown`` releases whatever the
    backend holds (processes, threads); backends are context managers
    that call it on exit.
    """

    workers: int

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Any]: ...

    def shutdown(self) -> None: ...


class SerialBackend:
    """Everything in-process, in order — the degenerate one-worker pool.

    Runs ``initializer`` once (lazily, before the first mapped item) so
    task functions relying on initializer-installed state work
    identically under both backends: an empty ``map`` runs no
    initializer on either backend (a process pool spawns lazily), and
    :meth:`shutdown` forgets the initialization — a reused serial
    backend re-runs its initializer exactly as a reused process backend
    spawns fresh, freshly initialized workers.
    """

    workers = 1

    def __init__(
        self,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        self._initializer = initializer
        self._initargs = initargs
        self._initialized = False

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        items = list(items)
        if items and not self._initialized and self._initializer is not None:
            self._initializer(*self._initargs)
            self._initialized = True
        return [fn(item) for item in items]

    def shutdown(self) -> None:
        """Forget initializer state so reuse mirrors a fresh pool."""
        self._initialized = False

    def __enter__(self) -> SerialBackend:
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class ProcessPoolBackend:
    """Fan items across worker processes (``concurrent.futures``).

    The executor is created lazily on the first non-empty :meth:`map`,
    so building a backend costs nothing when every item turns out to be
    a cache hit.  Items are chunked (several per pickle round-trip) to
    amortize IPC; ``Executor.map`` preserves input order, which is what
    makes positional merges bit-identical to serial execution.
    """

    def __init__(
        self,
        workers: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        if workers is None:
            workers = available_cpus()
        if workers < 1:
            raise ConfigurationError(
                f"process pool needs at least one worker, got {workers}"
            )
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._executor: ProcessPoolExecutor | None = None

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        items = list(items)
        if not items:
            return []
        # ~4 chunks per worker balances pickling overhead against skew.
        chunksize = max(1, -(-len(items) // (self.workers * 4)))
        return list(self._ensure_executor().map(fn, items, chunksize=chunksize))

    def submit(self, fn: Callable[[Any], Any], item: Any) -> Future:
        """One item, one future — the supervised layer's building block.

        Unlike the chunked :meth:`map`, a raising item can only take
        itself down, and the caller sees each item's outcome (result,
        exception, pool breakage) individually.
        """
        return self._ensure_executor().submit(fn, item)

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of the live pool processes (empty before the first task).

        Exposed for the chaos harness and for the supervisor's
        hang-recovery path; the pids are a snapshot — workers the pool
        replaces after a crash get fresh ones.
        """
        if self._executor is None:
            return ()
        processes = getattr(self._executor, "_processes", None) or {}
        return tuple(processes.keys())

    def rebuild(self) -> None:
        """Kill the pool's workers and forget the executor.

        The recovery primitive after ``BrokenProcessPool`` (the workers
        are already dying) and after a hung task (they are not — a SIGKILL
        is the only way to reclaim a worker stuck in C code or an
        unbounded loop).  The next :meth:`submit`/:meth:`map` lazily
        spawns a fresh, freshly initialized pool.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._executor

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> ProcessPoolBackend:
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def resolve_backend(
    workers: int | None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> ExecutionBackend:
    """Turn a ``workers=`` argument into a backend.

    - ``None`` or ``1`` — :class:`SerialBackend` (the default
      everywhere: no processes, historical behaviour);
    - :data:`AUTO_WORKERS` (``0``) — auto-size to
      :func:`available_cpus`; degenerates to serial on a 1-CPU host;
    - ``k > 1`` — :class:`ProcessPoolBackend` with ``k`` workers;
    - anything else — :class:`~repro.errors.ConfigurationError`.
    """
    if workers is None:
        return SerialBackend(initializer, initargs)
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ConfigurationError(
            f"workers must be an int or None, got {workers!r}"
        )
    if workers == 1:
        return SerialBackend(initializer, initargs)
    if workers == AUTO_WORKERS:
        count = auto_worker_count()
        if count == 1:
            return SerialBackend(initializer, initargs)
        return ProcessPoolBackend(count, initializer, initargs)
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    return ProcessPoolBackend(workers, initializer, initargs)
