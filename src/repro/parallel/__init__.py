"""Process-parallel execution: backends plus the supervised task layer.

Two tiers live here:

- :mod:`repro.parallel.backends` — the execution seam itself:
  :class:`SerialBackend` and :class:`ProcessPoolBackend` behind the
  :class:`ExecutionBackend` protocol, resolved from a ``workers=``
  argument by :func:`resolve_backend`.  ``map`` is ordered and fast but
  all-or-nothing: one raising item (or one dead worker) fails the whole
  call.
- :mod:`repro.parallel.supervisor` — the fault-tolerant layer on top:
  :class:`TaskSupervisor` submits per-item futures under an
  :class:`ExecutionPolicy` (attempts, per-item timeout, deterministic
  backoff, quarantine vs. abort), rebuilds the pool after worker death,
  and reports poison items as structured :class:`TaskFailure` records in
  a :class:`SupervisionReport` instead of aborting the map.

Both tiers preserve the package's core contract — results in input
order, bit-identical to a serial run — so callers choose robustness per
call site, not per architecture.  See ``docs/EXECUTION.md`` for the
failure model and ``docs/PERFORMANCE.md`` for when parallelism pays.
"""

from repro.parallel.backends import (
    AUTO_WORKERS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    auto_worker_count,
    available_cpus,
    resolve_backend,
)
from repro.parallel.supervisor import (
    FAILURE_MODES,
    KIND_EXCEPTION,
    KIND_TIMEOUT,
    KIND_WORKER_LOSS,
    ExecutionPolicy,
    SupervisionReport,
    TaskFailure,
    TaskSupervisor,
    validate_execution,
)

__all__ = [
    "AUTO_WORKERS",
    "ExecutionBackend",
    "ExecutionPolicy",
    "FAILURE_MODES",
    "KIND_EXCEPTION",
    "KIND_TIMEOUT",
    "KIND_WORKER_LOSS",
    "ProcessPoolBackend",
    "SerialBackend",
    "SupervisionReport",
    "TaskFailure",
    "TaskSupervisor",
    "auto_worker_count",
    "available_cpus",
    "resolve_backend",
    "validate_execution",
]
