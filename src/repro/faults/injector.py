"""Compiles a :class:`~repro.faults.plan.FaultPlan` onto one deployment.

The injector is the bridge between declarative fault plans and the
engine's concrete resources: at engine construction it resolves each
fault against the :class:`~repro.resources.ResourceRegistry` (per-member
array directions included) and produces

- ``slowdowns`` — node name → compute-stretch factor, read by the engine
  at every phase entry on straggler nodes;
- timed *actions* — heap events the engine schedules at ``run()`` start:
  :class:`ScaleToggle` (disk throttle window edges), :class:`JitterToggle`
  (self-rescheduling NIC square wave), :class:`NodeKill`.

Capacity perturbations go through :attr:`Resource.capacity_scale`, and the
injector recomputes the scale as the exact product of currently active
factors (an empty set yields exactly ``1.0``), so a fault window opening
and closing leaves no floating-point residue — the cache bit-identity
invariant depends on that.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkModel
from repro.errors import FaultError
from repro.faults.plan import (
    DiskFault,
    FaultPlan,
    NicJitterFault,
    NodeFailureFault,
    StragglerFault,
)
from repro.resources import Resource, ResourceRegistry


@dataclass(frozen=True)
class ScaleToggle:
    """Open (``on``) or close one capacity-scale window on ``resources``."""

    resources: tuple[Resource, ...]
    factor: float
    on: bool

    #: Heap entries carry ``(…, obj, epoch)`` and are dropped when
    #: ``obj.epoch`` moved on; fault actions are never invalidated.
    epoch = 0


@dataclass(frozen=True)
class JitterToggle:
    """One edge of a NIC jitter square wave; reschedules its own flip."""

    resources: tuple[Resource, ...]
    factor: float
    period: float
    duty: float
    entering: bool

    epoch = 0

    def flipped(self) -> JitterToggle:
        return dataclasses.replace(self, entering=not self.entering)

    @property
    def next_delay(self) -> float:
        """Seconds until the opposite edge."""
        return self.period * (self.duty if self.entering else 1.0 - self.duty)


@dataclass(frozen=True)
class NodeKill:
    """Remove one node from service."""

    node_name: str

    epoch = 0


FaultAction = ScaleToggle | JitterToggle | NodeKill


class FaultInjector:
    """Plan compiled against one engine's cluster and registry."""

    def __init__(
        self,
        plan: FaultPlan,
        cluster: Cluster,
        registry: ResourceRegistry,
        network: NetworkModel | None = None,
    ) -> None:
        self.plan = plan
        names = [node.name for node in cluster.slaves]
        #: node name -> compute/software-path stretch factor (>= 1).
        self.slowdowns: dict[str, float] = {}
        #: (fire time, action), in plan order; the engine heap-pushes these.
        self._initial: list[tuple[float, FaultAction]] = []
        #: Every resource any action touches, for :meth:`reset`.
        self._touched: dict[int, Resource] = {}
        #: id(resource) -> list of factors currently applied.
        self._active_factors: dict[int, list[float]] = {}

        for fault in plan.faults:
            if isinstance(fault, StragglerFault):
                if fault.node < len(names):
                    name = names[fault.node]
                    self.slowdowns[name] = self.slowdowns.get(name, 1.0) * fault.slowdown
            elif isinstance(fault, NodeFailureFault):
                if fault.node < len(names):
                    self._initial.append(
                        (fault.at_seconds, NodeKill(names[fault.node]))
                    )
            elif isinstance(fault, DiskFault):
                resources = self._disk_resources(fault, cluster, registry)
                if not resources:
                    continue
                self._initial.append(
                    (fault.start, ScaleToggle(resources, fault.factor, True))
                )
                if fault.end is not None:
                    self._initial.append(
                        (fault.end, ScaleToggle(resources, fault.factor, False))
                    )
            elif isinstance(fault, NicJitterFault):
                resources = self._nic_resources(fault, cluster, registry)
                if not resources:
                    continue
                self._initial.append(
                    (
                        fault.phase,
                        JitterToggle(
                            resources, fault.factor, fault.period, fault.duty, True
                        ),
                    )
                )
            else:  # pragma: no cover - plan validation keeps the union closed
                raise FaultError(f"unknown fault type: {type(fault).__name__}")
        for _, action in self._initial:
            if isinstance(action, (ScaleToggle, JitterToggle)):
                for resource in action.resources:
                    self._touched[id(resource)] = resource

    @staticmethod
    def _disk_resources(
        fault: DiskFault, cluster: Cluster, registry: ResourceRegistry
    ) -> tuple[Resource, ...]:
        """Device-direction resources the fault covers (array members too)."""
        roles = (fault.role,) if fault.role is not None else ("hdfs", "local")
        directions = (
            (fault.direction == "write",)
            if fault.direction is not None
            else (False, True)
        )
        collected: dict[int, Resource] = {}
        for index, node in enumerate(cluster.slaves):
            if fault.node is not None and fault.node != index:
                continue
            for role in roles:
                device = node.device_for(role)
                for is_write in directions:
                    for key, resource in registry.items():
                        if (
                            key[0] == "device"
                            and key[1] == id(device)
                            and key[2] == is_write
                        ):
                            collected[id(resource)] = resource
        return tuple(collected.values())

    @staticmethod
    def _nic_resources(
        fault: NicJitterFault, cluster: Cluster, registry: ResourceRegistry
    ) -> tuple[Resource, ...]:
        collected: list[Resource] = []
        for index, node in enumerate(cluster.slaves):
            if fault.node is not None and fault.node != index:
                continue
            key = ("nic", node.name)
            if key in registry:
                collected.append(registry.get(key))
        return tuple(collected)

    def initial_actions(self) -> list[tuple[float, FaultAction]]:
        """The actions to schedule at the start of every run."""
        return list(self._initial)

    def reset(self) -> None:
        """Restore every touched resource to its clean capacity."""
        for resource in self._touched.values():
            resource.capacity_scale = 1.0
        self._active_factors = {}

    def toggle(self, resource: Resource, factor: float, on: bool) -> None:
        """Apply or lift one factor; the scale is the product of the rest."""
        factors = self._active_factors.setdefault(id(resource), [])
        if on:
            factors.append(factor)
        else:
            try:
                factors.remove(factor)
            except ValueError:
                raise FaultError(
                    f"closing a fault window that never opened on {resource.name}"
                ) from None
        scale = 1.0
        for active in factors:
            scale *= active
        resource.capacity_scale = scale
