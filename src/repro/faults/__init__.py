"""Fault injection for simulated runs.

Real deployments deviate from clean analytic models through a small set
of recurring hardware misbehaviours — throttled disks, straggler
executors, dying nodes, flapping links.  This package lets a run opt
into them without touching any default path:

- :mod:`repro.faults.plan` — declarative, JSON-serializable
  :class:`FaultPlan` s (what misbehaves, where, when);
- :mod:`repro.faults.injector` — compiles a plan onto one engine's
  :class:`~repro.resources.ResourceRegistry` and emits the timed actions
  the event loop executes.

Pass a plan as ``faults=`` to :class:`~repro.pipeline.Experiment` (it is
folded into cache keys), to the workload runner, or via
``python -m repro simulate --fault-plan plan.json``.  The metamorphic
properties faulted runs must still satisfy live in
:mod:`repro.invariants`.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DiskFault,
    Fault,
    FaultPlan,
    NicJitterFault,
    NodeFailureFault,
    StragglerFault,
    load_fault_plan,
    random_fault_plan,
)

__all__ = [
    "DiskFault",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "NicJitterFault",
    "NodeFailureFault",
    "StragglerFault",
    "load_fault_plan",
    "random_fault_plan",
]
