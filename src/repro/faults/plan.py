"""Declarative fault plans: what misbehaves, where, and when.

A :class:`FaultPlan` is a small immutable description of hardware
misbehaviour to superimpose on a simulated run — the deviations that
characterization studies report dominating real deployments: disks
throttled below their rated curves, straggler executors, nodes dying
mid-stage, and network links flapping.  Plans are pure data: they name
nodes by *index* (portable across cluster sizes — a fault addressing a
node the deployment does not have is inert) and times in seconds from
each stage's start (stages are simulated independently, so fault windows
recur per stage, like a persistently slow disk would).

Plans serialize to a small JSON document (``load_fault_plan`` /
:meth:`FaultPlan.save`) and fingerprint through the pipeline's
content-addressing scheme, so cached faulted runs can never collide with
clean ones.  :func:`random_fault_plan` derives a reproducible plan from a
seed for randomized metamorphic testing.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import FaultError

_ROLES = ("hdfs", "local")
_DIRECTIONS = ("read", "write")


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise FaultError(message)


@dataclass(frozen=True)
class DiskFault:
    """Scale a disk direction's effective bandwidth by ``factor``.

    ``start``/``end`` bound the throttle window in seconds from stage
    start (``end=None`` means the whole stage).  ``node``, ``role``
    (``"hdfs"``/``"local"``) and ``direction`` (``"read"``/``"write"``)
    narrow the blast radius; ``None`` means every node / both roles /
    both directions.

    ``factor=0.0`` models a dead disk: streams on it make no progress
    for the window.  Without a resilience policy the engine treats a
    task stuck at zero rate across consecutive settles as a hard error;
    with one, the stall becomes a task failure that retries elsewhere.
    """

    factor: float
    start: float = 0.0
    end: float | None = None
    node: int | None = None
    role: str | None = None
    direction: str | None = None

    def __post_init__(self) -> None:
        _check(0.0 <= self.factor <= 1.0, f"disk fault factor must be in [0, 1]: {self.factor}")
        _check(self.start >= 0.0, f"disk fault start must be >= 0: {self.start}")
        _check(
            self.end is None or self.end > self.start,
            f"disk fault window must be non-empty: [{self.start}, {self.end})",
        )
        _check(self.node is None or self.node >= 0, f"node index must be >= 0: {self.node}")
        _check(self.role is None or self.role in _ROLES, f"role must be one of {_ROLES}: {self.role!r}")
        _check(
            self.direction is None or self.direction in _DIRECTIONS,
            f"direction must be one of {_DIRECTIONS}: {self.direction!r}",
        )


@dataclass(frozen=True)
class StragglerFault:
    """Make one node's executors slow: compute stretched and per-stream
    software caps shrunk by ``slowdown`` (>= 1)."""

    node: int
    slowdown: float

    def __post_init__(self) -> None:
        _check(self.node >= 0, f"node index must be >= 0: {self.node}")
        _check(self.slowdown >= 1.0, f"straggler slowdown must be >= 1: {self.slowdown}")


@dataclass(frozen=True)
class NodeFailureFault:
    """Kill a node ``at_seconds`` into each stage; its in-flight and queued
    tasks are re-executed from scratch on the survivors."""

    node: int
    at_seconds: float

    def __post_init__(self) -> None:
        _check(self.node >= 0, f"node index must be >= 0: {self.node}")
        _check(self.at_seconds >= 0.0, f"failure time must be >= 0: {self.at_seconds}")


@dataclass(frozen=True)
class NicJitterFault:
    """Periodically degrade NIC capacity: every ``period`` seconds the link
    runs at ``factor`` for ``duty`` of the period (square wave, first low
    window starting at ``phase``).  Inert when no network is configured —
    the default infinite wire has nothing to degrade."""

    factor: float
    period: float
    duty: float = 0.5
    phase: float = 0.0
    node: int | None = None

    def __post_init__(self) -> None:
        _check(0.0 < self.factor <= 1.0, f"jitter factor must be in (0, 1]: {self.factor}")
        _check(self.period > 0.0, f"jitter period must be positive: {self.period}")
        _check(0.0 < self.duty < 1.0, f"jitter duty cycle must be in (0, 1): {self.duty}")
        _check(self.phase >= 0.0, f"jitter phase must be >= 0: {self.phase}")
        _check(self.node is None or self.node >= 0, f"node index must be >= 0: {self.node}")


Fault = DiskFault | StragglerFault | NodeFailureFault | NicJitterFault

#: JSON ``type`` tag per fault class (and back).
_FAULT_TYPES: dict[str, type] = {
    "disk": DiskFault,
    "straggler": StragglerFault,
    "node_failure": NodeFailureFault,
    "nic_jitter": NicJitterFault,
}
_TYPE_TAGS = {cls: tag for tag, cls in _FAULT_TYPES.items()}


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of faults, applied together to a run."""

    name: str = "faults"
    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        for fault in self.faults:
            _check(
                type(fault) in _TYPE_TAGS,
                f"unknown fault type: {type(fault).__name__}",
            )

    def fingerprint(self) -> str:
        """Content hash folded into cache keys of faulted runs."""
        # Late import: repro.pipeline imports the simulator which imports
        # the fault injector; going back up here at call time avoids the
        # cycle.
        from repro.pipeline.fingerprint import fingerprint

        return fingerprint(self)

    def describe(self) -> str:
        """``name (k faults)`` one-liner for reports."""
        return f"{self.name} ({len(self.faults)} fault{'s' if len(self.faults) != 1 else ''})"

    def to_dict(self) -> dict:
        """JSON-ready form (see ``docs/TESTING.md`` for the format)."""
        return {
            "name": self.name,
            "faults": [
                {"type": _TYPE_TAGS[type(fault)], **asdict(fault)}
                for fault in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> FaultPlan:
        """Parse the :meth:`to_dict` form, validating every field."""
        if not isinstance(data, dict):
            raise FaultError(f"fault plan must be a JSON object, got {type(data).__name__}")
        raw_faults = data.get("faults", [])
        if not isinstance(raw_faults, list):
            raise FaultError("fault plan 'faults' must be a list")
        faults = []
        for entry in raw_faults:
            if not isinstance(entry, dict) or "type" not in entry:
                raise FaultError(f"each fault needs a 'type' tag: {entry!r}")
            tag = entry["type"]
            fault_cls = _FAULT_TYPES.get(tag)
            if fault_cls is None:
                raise FaultError(
                    f"unknown fault type {tag!r}; known: {sorted(_FAULT_TYPES)}"
                )
            fields = {key: value for key, value in entry.items() if key != "type"}
            try:
                faults.append(fault_cls(**fields))
            except TypeError as exc:
                raise FaultError(f"bad {tag} fault fields {sorted(fields)}: {exc}") from None
        return cls(name=str(data.get("name", "faults")), faults=tuple(faults))

    def save(self, path: str | Path) -> Path:
        """Write the plan as JSON; returns the path written."""
        target = Path(path)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return target


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file."""
    source = Path(path)
    try:
        data = json.loads(source.read_text())
    except OSError as exc:
        raise FaultError(f"cannot read fault plan {source}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise FaultError(f"fault plan {source} is not valid JSON: {exc}") from None
    return FaultPlan.from_dict(data)


def random_fault_plan(
    seed: int,
    nodes: int,
    *,
    max_faults: int = 4,
    allow_failures: bool = True,
) -> FaultPlan:
    """A reproducible plan drawn from ``seed`` for metamorphic sweeps.

    The draw is a pure function of the arguments, so two calls with the
    same seed build equal plans — the determinism and cache-bit-identity
    invariants lean on this.  Node deaths never target node 0, so at
    least one node survives on any cluster size.
    """
    _check(nodes >= 1, f"need at least one node: {nodes}")
    _check(max_faults >= 1, f"need room for at least one fault: {max_faults}")
    rng = random.Random(seed)
    faults: list[Fault] = []
    for _ in range(rng.randint(1, max_faults)):
        kinds = ["disk", "straggler", "nic_jitter"]
        if allow_failures and nodes > 1:
            kinds.append("node_failure")
        kind = rng.choice(kinds)
        if kind == "disk":
            start = round(rng.uniform(0.0, 10.0), 3)
            faults.append(
                DiskFault(
                    factor=round(rng.uniform(0.2, 0.9), 3),
                    start=start,
                    end=None if rng.random() < 0.5 else start + round(rng.uniform(1.0, 30.0), 3),
                    node=None if rng.random() < 0.5 else rng.randrange(nodes),
                    role=rng.choice([None, "hdfs", "local"]),
                    direction=rng.choice([None, "read", "write"]),
                )
            )
        elif kind == "straggler":
            faults.append(
                StragglerFault(
                    node=rng.randrange(nodes),
                    slowdown=round(rng.uniform(1.1, 4.0), 3),
                )
            )
        elif kind == "node_failure":
            faults.append(
                NodeFailureFault(
                    node=rng.randrange(1, nodes),
                    at_seconds=round(rng.uniform(0.0, 15.0), 3),
                )
            )
        else:
            faults.append(
                NicJitterFault(
                    factor=round(rng.uniform(0.2, 0.9), 3),
                    period=round(rng.uniform(0.5, 5.0), 3),
                    duty=round(rng.uniform(0.2, 0.8), 3),
                    phase=round(rng.uniform(0.0, 2.0), 3),
                    node=None if rng.random() < 0.5 else rng.randrange(nodes),
                )
            )
    return FaultPlan(name=f"random-{seed}", faults=tuple(faults))
