"""Exception hierarchy for the Doppio library.

Every exception raised by this package derives from :class:`DoppioError`
so callers can catch one type at the API boundary.  Subclasses are grouped
by subsystem; they carry plain messages and never wrap other exceptions
silently.
"""

from __future__ import annotations


class DoppioError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(DoppioError):
    """A cluster, Spark, or cloud configuration is invalid or inconsistent."""


class StorageError(DoppioError):
    """A storage device, HDFS, or Spark-local operation failed."""


class FileNotFoundInStoreError(StorageError):
    """A read referenced a path that the store does not contain."""


class SimulationError(DoppioError):
    """The discrete-event simulator reached an inconsistent state."""


class SchedulerError(DoppioError):
    """The DAG or task scheduler could not plan the requested computation."""


class ModelError(DoppioError):
    """The analytic model was given unusable variables (e.g. zero bandwidth)."""


class ProfilingError(DoppioError):
    """A profiling sample run violated its sanity check (Section VI-1)."""


class OptimizationError(DoppioError):
    """The cloud cost optimizer could not find a feasible configuration."""


class WorkloadError(DoppioError):
    """A workload specification is malformed (e.g. negative data sizes)."""


class FaultError(DoppioError):
    """A fault plan is malformed or cannot be applied to a deployment."""
