"""Exception hierarchy for the Doppio library.

Every exception raised by this package derives from :class:`DoppioError`
so callers can catch one type at the API boundary.  Subclasses are grouped
by subsystem; they carry plain messages and never wrap other exceptions
silently.
"""

from __future__ import annotations


class DoppioError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(DoppioError):
    """A cluster, Spark, or cloud configuration is invalid or inconsistent."""


class StorageError(DoppioError):
    """A storage device, HDFS, or Spark-local operation failed."""


class FileNotFoundInStoreError(StorageError):
    """A read referenced a path that the store does not contain."""


class SimulationError(DoppioError):
    """The discrete-event simulator reached an inconsistent state."""


class StageFailedError(SimulationError):
    """A simulated stage exhausted its re-attempt budget and aborted.

    Raised by the engine when a task fails ``max_task_attempts`` times
    and the stage has already used ``max_stage_attempts`` re-attempts —
    the structured analogue of Spark's job abort on repeated stage
    failure.  Carries the failing stage/task and attempt counts so
    callers can report the abort without parsing the message.
    """

    def __init__(
        self,
        stage: str,
        task_id: int,
        attempts: int,
        stage_attempts: int,
        reason: str,
    ) -> None:
        self.stage = stage
        self.task_id = task_id
        self.attempts = attempts
        self.stage_attempts = stage_attempts
        self.reason = reason
        super().__init__(
            f"stage {stage!r} aborted after {stage_attempts} attempt(s):"
            f" task {task_id} failed {attempts} time(s) ({reason})"
        )


class SchedulerError(DoppioError):
    """The DAG or task scheduler could not plan the requested computation."""


class ModelError(DoppioError):
    """The analytic model was given unusable variables (e.g. zero bandwidth)."""


class ProfilingError(DoppioError):
    """A profiling sample run violated its sanity check (Section VI-1)."""


class OptimizationError(DoppioError):
    """The cloud cost optimizer could not find a feasible configuration."""


class WorkloadError(DoppioError):
    """A workload specification is malformed (e.g. negative data sizes)."""


class FaultError(DoppioError):
    """A fault plan is malformed or cannot be applied to a deployment."""


class ExecutionError(DoppioError):
    """A supervised task map could not complete on the host toolchain.

    Raised by :class:`~repro.parallel.supervisor.TaskSupervisor` (and
    the pipeline paths built on it) when items exhaust their attempt
    budget — worker loss, per-item timeout, or a poison item that fails
    every retry — or when the policy aborts on first failure.  Carries
    the structured :class:`~repro.parallel.supervisor.TaskFailure`
    records so callers can see *which* items died and why without
    parsing the message.  Distinct from :class:`SimulationError`: the
    simulated system is fine, the processes running it are not — mapped
    to its own exit code (5) so scripts can tell "your model broke"
    from "your machine did".
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        self.failures = tuple(failures)
        super().__init__(message)


class ServiceError(DoppioError):
    """The query service could not accept or answer a request.

    The serving tier's analogue of :class:`ExecutionError`: the model
    and simulator are fine, the long-running process in front of them
    is not (bad listen address, a dead engine, a malformed shutdown).
    Mapped to its own exit code (6) so init systems can tell "the
    service broke" from "your query was wrong" (2) and from "the model
    broke" (3).
    """


class AdmissionError(ServiceError):
    """A query was rejected at admission because the service is saturated.

    The structured 429: the simulation queue is at its cap, so taking
    the query would only grow latency unboundedly.  Carries the cap and
    current depth so clients can back off intelligently.
    """

    def __init__(self, message: str, queue_depth: int = 0, queue_cap: int = 0) -> None:
        self.queue_depth = queue_depth
        self.queue_cap = queue_cap
        super().__init__(message)


class QueryError(ServiceError):
    """A what-if query payload is malformed or references unknown entities.

    The service-side sibling of :class:`ConfigurationError` — kept
    distinct so the HTTP front can map it to 400 while other
    :class:`ServiceError` states stay 500/503-shaped — but mapped to
    the configuration exit code (2): a bad query is a caller mistake,
    not a broken service.
    """


class BenchmarkRegressionError(DoppioError):
    """A benchmark run failed its regression gates (``repro bench --check``).

    Carries the failing verdicts so callers can render them; maps to the
    simulation-error exit code (3) because a regression means the
    measured system drifted, not that the invocation was malformed.
    """

    def __init__(self, message: str, verdicts: list | None = None) -> None:
        self.verdicts = list(verdicts) if verdicts is not None else []
        super().__init__(message)


# -- CLI exit-code mapping ----------------------------------------------------

#: Process exit codes the CLI maps :class:`DoppioError` subclasses onto.
#: 1 stays reserved for unexpected (non-Doppio) crashes, so scripts can
#: distinguish "you configured it wrong" (2) from "the simulation or
#: model broke" (3) from "the fault plan is unusable" (4) from "the host
#: execution tier lost workers / timed out / quarantined items" (5).
EXIT_OK = 0
EXIT_CONFIG_ERROR = 2
EXIT_SIMULATION_ERROR = 3
EXIT_FAULT_ERROR = 4
EXIT_EXECUTION_ERROR = 5
EXIT_SERVICE_ERROR = 6


def exit_code_for(error: DoppioError) -> int:
    """The CLI exit code one library error maps to.

    Ordering matters only in that more specific classes are checked
    before their bases (``QueryError`` before ``ServiceError``,
    ``FaultError`` before the generic fallthrough).
    """
    if isinstance(error, QueryError):
        return EXIT_CONFIG_ERROR
    if isinstance(error, (ConfigurationError, WorkloadError)):
        return EXIT_CONFIG_ERROR
    if isinstance(error, FaultError):
        return EXIT_FAULT_ERROR
    if isinstance(error, ExecutionError):
        return EXIT_EXECUTION_ERROR
    if isinstance(error, ServiceError):
        return EXIT_SERVICE_ERROR
    return EXIT_SIMULATION_ERROR
