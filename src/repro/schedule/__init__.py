"""Prediction-driven job scheduling — the paper's suggested application.

From the introduction: "in a shared cluster environment with a job
scheduler, our performance prediction model can allow the scheduler to
know ahead the approximating job execution time and thus enable better
job scheduling with less job waiting time."

:mod:`repro.schedule.scheduler` implements that: a batch queue on a shared
cluster where FIFO ordering is compared against
shortest-predicted-job-first ordering with Doppio runtimes, plus the
oracle (true-runtime) ordering as an upper bound.
"""

from repro.schedule.scheduler import (
    ExecutorBlacklist,
    Job,
    ScheduledJob,
    ScheduleResult,
    simulate_queue,
    fifo_order,
    spjf_order,
)

__all__ = [
    "ExecutorBlacklist",
    "Job",
    "ScheduledJob",
    "ScheduleResult",
    "simulate_queue",
    "fifo_order",
    "spjf_order",
]
