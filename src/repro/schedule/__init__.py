"""Cluster scheduling: queue policies and multi-job (mix) simulation.

Two layers live here:

- :mod:`repro.schedule.scheduler` — the paper's suggested application: a
  batch queue on a shared cluster where FIFO ordering is compared against
  shortest-predicted-job-first ordering with Doppio runtimes, plus the
  oracle (true-runtime) ordering as an upper bound.  Jobs are opaque
  runtimes; the cluster runs one at a time.
- :mod:`repro.schedule.mix` — full multi-tenant simulation: K workloads
  with arrival times share the executors, HDFS disks, and NIC of one
  cluster, contending through the :mod:`repro.resources` max-min
  registry under a FIFO or fair scheduler (see docs/MULTITENANT.md).

The mix layer is loaded lazily: the simulator engine imports
``repro.schedule.scheduler`` (for :class:`ExecutorBlacklist`), and
``repro.schedule.mix`` imports the engine back — importing it eagerly
here would close that cycle while the engine module is half-initialized.
"""

from repro.schedule.scheduler import (
    ExecutorBlacklist,
    Job,
    ScheduledJob,
    ScheduleResult,
    simulate_queue,
    fifo_order,
    spjf_order,
)

_MIX_EXPORTS = frozenset(
    {
        "MIX_POLICIES",
        "MixEngine",
        "MixJob",
        "MixMeasurement",
        "JobTimeline",
        "canonical_jobs",
        "measure_mix",
    }
)

__all__ = [
    "ExecutorBlacklist",
    "Job",
    "ScheduledJob",
    "ScheduleResult",
    "simulate_queue",
    "fifo_order",
    "spjf_order",
    *sorted(_MIX_EXPORTS),
]


def __getattr__(name: str):
    if name in _MIX_EXPORTS:
        from repro.schedule import mix

        return getattr(mix, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
