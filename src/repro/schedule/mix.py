"""Multi-job simulation: K workloads sharing one cluster's resources.

Everything else in the library runs one job alone on the cluster; this
module runs a *mix*.  Jobs arrive at given times, their stages submit
tasks onto the shared executor :class:`~repro.resources.SlotPool`s, and
their I/O streams land on the very same HDFS-disk, local-disk, and NIC
resources — so co-located stages contend under the registry's max-min
filling and genuinely slow each other down.  Nothing about contention is
re-modeled here: :class:`MixEngine` only adds admission, a per-node
multi-queue, and per-job accounting on top of the single-job
:class:`~repro.simulator.engine.SimulationEngine` event loop.

Scheduling policies
-------------------
``"fifo"``
    Earliest-arrived job with pending work on a node launches first
    (ties broken by job name); a long job can head-of-line block.
``"fair"``
    The job with the fewest running tasks cluster-wide launches first —
    a slot-level fair share, like Spark's fair scheduler pools.

Jobs are canonicalized by ``(arrival, name)`` before anything runs, so a
permutation of the submitted list cannot change the schedule — the
arrival-order invariance the property suite pins down.  Duplicate names
are disambiguated ``name``, ``name#2``, ... in canonical order.

Semantics worth knowing:

- **Stage barriers are per job.**  A job's next stage (or next iteration
  of a ``repeat`` stage) submits at the instant its previous one drains,
  exactly like the solo path — but other jobs' stages overlap freely.
- **Iterative stages run honestly.**  The solo path simulates one
  iteration and multiplies by ``repeat``; under contention the
  iterations land in different cluster states, so the mix engine runs
  each one.  For a lone job the two agree to float round-off.
- **Faults compose.**  A :class:`~repro.faults.plan.FaultPlan` is
  anchored to the *mix* clock (t = 0 at the first arrival's epoch), not
  re-armed per stage like the solo path — a disk throttle window hits
  whatever stages of whatever jobs overlap it.
- **No resilience policies.**  Speculation/retry are solo-engine
  features; mixes model the contention story.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import defaultdict, deque
from collections.abc import Sequence
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkModel
from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.schedule.scheduler import SchedulingError
from repro.simulator.engine import _EV_FAULT, SimulationEngine, _Running
from repro.simulator.run import ApplicationMeasurement, StageMeasurement
from repro.simulator.task import SimTask
from repro.storage.iostat import IostatCollector
from repro.workloads.base import WorkloadSpec, scale_workload_volume

#: Scheduling policies a mix accepts.
MIX_POLICIES = ("fifo", "fair")

#: Heap entry kind for job admission (the engine owns kinds 0-5).
_EV_ARRIVAL = 6

#: The jitter-offset stride solo runs use per ``run_index`` (1 - golden
#: ratio); mixes reuse it so a mixed job sees the same task skew as its
#: solo baseline.
_JITTER_STRIDE = 0.381966011


@dataclass(frozen=True)
class MixJob:
    """One workload submitted to a mix.

    ``volume_scale`` scales the job's data volume before anything runs
    (see :func:`~repro.workloads.base.scale_workload_volume`); ``name``
    defaults to the spec's name and labels the job in every report.
    """

    spec: WorkloadSpec
    arrival: float = 0.0
    volume_scale: float = 1.0
    name: str | None = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.arrival) or self.arrival < 0:
            raise SchedulingError(
                f"job {self.display_name}: arrival must be finite and >= 0,"
                f" got {self.arrival}"
            )
        if not math.isfinite(self.volume_scale) or self.volume_scale <= 0:
            raise SchedulingError(
                f"job {self.display_name}: volume_scale must be finite and > 0,"
                f" got {self.volume_scale}"
            )

    @property
    def display_name(self) -> str:
        return self.name if self.name is not None else self.spec.name


def canonical_jobs(jobs: Sequence[MixJob]) -> list[tuple[str, MixJob]]:
    """The mix's canonical ``(name, job)`` sequence.

    Jobs are ordered by ``(arrival, name)`` with the input position only
    as the final tie-break, and duplicate display names are suffixed
    ``#2``, ``#3``, ... in that order.  Both :class:`MixEngine` and the
    pipeline's report composition go through this one function, so the
    names in a :class:`MixMeasurement` always match the pipeline's
    job-to-baseline mapping.
    """
    order = sorted(
        range(len(jobs)),
        key=lambda i: (jobs[i].arrival, jobs[i].display_name, i),
    )
    named: list[tuple[str, MixJob]] = []
    seen: dict[str, int] = {}
    for position in order:
        job = jobs[position]
        base = job.display_name
        count = seen.get(base, 0) + 1
        seen[base] = count
        named.append((base if count == 1 else f"{base}#{count}", job))
    return named


@dataclass(frozen=True)
class JobTimeline:
    """One job's realized schedule inside a mix, on the mix clock."""

    name: str
    arrival: float
    volume_scale: float
    #: When the job's first task got a core (== ``arrival`` on an idle
    #: cluster; later when admission found every slot taken).
    first_launch: float
    finish: float
    measurement: ApplicationMeasurement

    @property
    def waiting(self) -> float:
        """Seconds between arrival and the first task launch."""
        return self.first_launch - self.arrival

    @property
    def turnaround(self) -> float:
        """Seconds between arrival and the last task finish."""
        return self.finish - self.arrival


@dataclass(frozen=True)
class MixMeasurement:
    """What one simulated mix produced: per-job measurements + timelines.

    ``jobs`` is in canonical ``(arrival, name)`` order.  Per-job stage
    measurements attribute task times, byte totals, iostat samples, and
    core occupancy to their job; *device* busy time is genuinely shared
    and only reported cluster-wide (``device_utilizations``).
    """

    policy: str
    nodes: int
    cores_per_node: int
    #: Last task finish on the mix clock (t = 0 at the earliest epoch).
    makespan: float
    jobs: tuple[JobTimeline, ...]
    #: (resource name, is_write, busy fraction of the makespan) for every
    #: contended device direction — the cluster-level interference view.
    device_utilizations: tuple[tuple[str, bool, float], ...] = ()

    def job(self, name: str) -> JobTimeline:
        """Look up one job's timeline by its (disambiguated) name."""
        for timeline in self.jobs:
            if timeline.name == name:
                return timeline
        raise SchedulingError(
            f"mix has no job named {name!r};"
            f" jobs: {[t.name for t in self.jobs]}"
        )


class _Job:
    """Mutable per-job engine state; ``epoch`` 0 keeps arrival heap
    entries valid forever (the heap's staleness check is trivially met)."""

    epoch = 0

    def __init__(
        self, index: int, name: str, spec: WorkloadSpec,
        arrival: float, volume_scale: float,
    ) -> None:
        self.index = index
        self.name = name
        self.spec = spec
        self.arrival = arrival
        self.volume_scale = volume_scale
        self.done = False
        self.stage_index = 0
        self.iteration = 0
        self.stage_start = 0.0
        self.stage_tasks: list[SimTask] = []
        self.iteration_remaining = 0
        self.num_running = 0
        self.core_busy = 0.0
        self.stage_core_anchor = 0.0
        self.iostat = IostatCollector()
        self.first_launch = -1.0
        self.finish = -1.0
        self.stages: list[StageMeasurement] = []


class MixEngine(SimulationEngine):
    """The single-job event loop, extended with admission and a per-node
    multi-queue.  All contention flows through the inherited registry."""

    def __init__(
        self,
        cluster: Cluster,
        cores_per_node: int,
        jobs: Sequence[MixJob],
        policy: str = "fair",
        run_index: int = 0,
        network: NetworkModel | None = None,
        faults: FaultPlan | None = None,
        max_events: int = 50_000_000,
    ) -> None:
        if policy not in MIX_POLICIES:
            raise SchedulingError(
                f"unknown mix policy {policy!r}; expected one of {MIX_POLICIES}"
            )
        if not jobs:
            raise SchedulingError("a mix needs at least one job")
        super().__init__(
            cluster, cores_per_node, network=network, faults=faults,
            max_events=max_events,
        )
        self.policy = policy
        self.run_index = run_index
        self._jitter_offset = run_index * _JITTER_STRIDE
        # Canonical admission order: (arrival, name), input order only as
        # the final tie-break — so permuting the submitted list cannot
        # change the schedule (exactly, when (arrival, name) pairs are
        # unique; duplicates of the *same* job are symmetric anyway).
        self._jobs: list[_Job] = [
            _Job(
                index=index,
                name=name,
                spec=scale_workload_volume(job.spec, job.volume_scale),
                arrival=job.arrival,
                volume_scale=job.volume_scale,
            )
            for index, (name, job) in enumerate(canonical_jobs(jobs))
        ]
        #: task_id -> owning job, filled at stage submission.
        self._task_job: dict[int, _Job] = {}
        #: node name -> {job index -> FIFO deque} — the multi-queue.
        self._queues: dict[str, dict[int, deque[SimTask]]] = {}
        self._unfinished_jobs = 0

    # -- the mix event loop ------------------------------------------------

    def run_mix(self) -> float:
        """Admit and execute every job; returns the mix makespan."""
        self._heap = []
        self._seq = itertools.count()
        self._dirty_resources = {}
        self._owner = {}
        self._stalled = {}
        self._freed_nodes = set()
        self._dead_nodes = set()
        self._active = {}
        self._pending = {node.name: deque() for node in self.cluster.slaves}
        self._queues = {node.name: {} for node in self.cluster.slaves}
        self._task_job = {}
        self._num_running = 0
        self._remaining_tasks = 0
        self._unfinished_jobs = len(self._jobs)
        if self._injector is not None:
            self._injector.reset()
            for at_seconds, action in self._injector.initial_actions():
                heapq.heappush(
                    self._heap, (at_seconds, next(self._seq), _EV_FAULT, action, 0)
                )
        for job in self._jobs:  # canonical order -> deterministic sequence
            heapq.heappush(
                self._heap, (job.arrival, next(self._seq), _EV_ARRIVAL, job, 0)
            )
        now = 0.0
        events = 0
        while self._unfinished_jobs > 0:
            events += 1
            if events > self.max_events:
                raise SimulationError(
                    f"exceeded {self.max_events} events; simulation is stuck"
                )
            batch = self._pop_batch()
            if not batch:
                self._raise_stuck()
            dt = batch[0][0] - now
            self._account_busy_time(dt)
            now = batch[0][0]
            for entry in batch:
                self._process_entry(entry, now)
            self._settle(now)
        return now

    def measurement(self, makespan: float) -> MixMeasurement:
        """The :class:`MixMeasurement` of a completed :meth:`run_mix`."""
        timelines = []
        for job in self._jobs:
            if not job.done:
                raise SimulationError(f"job {job.name} did not finish")
            timelines.append(
                JobTimeline(
                    name=job.name,
                    arrival=job.arrival,
                    volume_scale=job.volume_scale,
                    first_launch=job.first_launch,
                    finish=job.finish,
                    measurement=ApplicationMeasurement(
                        name=job.name, stages=tuple(job.stages)
                    ),
                )
            )
        return MixMeasurement(
            policy=self.policy,
            nodes=self.cluster.num_slaves,
            cores_per_node=self.cores_per_node,
            makespan=makespan,
            jobs=tuple(timelines),
            device_utilizations=tuple(
                (name, is_write, busy / makespan)
                for (name, is_write), busy in sorted(
                    self.device_busy_seconds.items()
                )
                if makespan > 0
            ),
        )

    # -- admission and stage submission ------------------------------------

    def _process_entry(self, entry: tuple, now: float) -> None:
        if entry[2] == _EV_ARRIVAL:
            self._submit_iteration(entry[3], now)
        else:
            super()._process_entry(entry, now)

    def _submit_iteration(self, job: _Job, now: float) -> None:
        """Queue one iteration of the job's current stage onto live nodes."""
        stage = job.spec.stages[job.stage_index]
        if job.iteration == 0:
            job.stage_start = now
            job.stage_tasks = []
            job.stage_core_anchor = job.core_busy
            job.iostat = IostatCollector()
        tasks = stage.build_tasks(
            cores_per_node=self.cores_per_node,
            jitter_offset=self._jitter_offset,
        )
        targets = [
            node for node in self.cluster.slaves
            if node.name not in self._dead_nodes
        ]
        if not targets:
            raise SimulationError(
                f"no live nodes to run job {job.name} stage {stage.name}"
            )
        job.iteration_remaining = len(tasks)
        job.stage_tasks.extend(tasks)
        self._remaining_tasks += len(tasks)
        for index, task in enumerate(tasks):
            self._task_job[task.task_id] = job
            queues = self._queues[targets[index % len(targets)].name]
            queues.setdefault(job.index, deque()).append(task)
        self._freed_nodes.update(node.name for node in targets)

    def _pick_job(self, queues: dict[int, deque[SimTask]]) -> _Job | None:
        """The scheduling policy: which queued job launches next here."""
        best: _Job | None = None
        for job in self._jobs:  # canonical (arrival, name) order
            if not queues.get(job.index):
                continue
            if self.policy == "fifo":
                return job
            if best is None or job.num_running < best.num_running:
                best = job
        return best

    def _launch_waiting(self, now: float) -> None:
        for node in self.cluster.slaves:
            if node.name in self._dead_nodes:
                continue
            queues = self._queues[node.name]
            pool = self._cores[node.name]
            while pool.free > 0:
                job = self._pick_job(queues)
                if job is None:
                    break
                task = queues[job.index].popleft()
                if not queues[job.index]:
                    del queues[job.index]
                pool.acquire()
                self._num_running += 1
                job.num_running += 1
                if job.first_launch < 0:
                    job.first_launch = now
                task.start_time = now
                running = _Running(task=task, node=node)
                if not self._enter_phase(running, now):
                    pool.release()
                    self._num_running -= 1
                    job.num_running -= 1
                    self._task_finished(job, now)
                    self._freed_nodes.add(node.name)
                else:
                    self._active[id(running)] = running

    def _transition(self, running: _Running, now: float) -> None:
        running.epoch += 1
        running.phase_index += 1
        if not self._enter_phase(running, now):
            self._active.pop(id(running), None)
            self._cores[running.node.name].release()
            self._num_running -= 1
            job = self._task_job[running.task.task_id]
            job.num_running -= 1
            self._task_finished(job, now)
            self._freed_nodes.add(running.node.name)

    def _task_finished(self, job: _Job, now: float) -> None:
        """Advance the job's barrier: next iteration, next stage, or done."""
        self._remaining_tasks -= 1
        job.iteration_remaining -= 1
        if job.iteration_remaining > 0:
            return
        stage = job.spec.stages[job.stage_index]
        job.iteration += 1
        if job.iteration < stage.repeat:
            self._submit_iteration(job, now)
            return
        self._finish_stage(job, stage.name, now)
        job.stage_index += 1
        job.iteration = 0
        if job.stage_index < len(job.spec.stages):
            self._submit_iteration(job, now)
        else:
            job.done = True
            job.finish = now
            self._unfinished_jobs -= 1

    def _finish_stage(self, job: _Job, stage_name: str, now: float) -> None:
        """Close the job's stage window into a StageMeasurement.

        Mirrors :func:`repro.simulator.run.run_stage`, except times are
        windows on the mix clock and device utilization is cluster-wide
        only (shared devices are not attributable to one job).
        """
        tasks = job.stage_tasks
        makespan = now - job.stage_start
        durations: dict[str, list[float]] = defaultdict(list)
        for task in tasks:
            durations[task.group].append(task.duration)
        samples = []
        for device_name in job.iostat.devices():
            for is_write in (False, True):
                sample = job.iostat.sample(device_name, is_write)
                if sample.num_requests > 0:
                    samples.append(sample)
        core_seconds = job.core_busy - job.stage_core_anchor
        capacity = makespan * self.cluster.num_slaves * self.cores_per_node
        job.stages.append(
            StageMeasurement(
                name=stage_name,
                nodes=self.cluster.num_slaves,
                cores_per_node=self.cores_per_node,
                makespan=makespan,
                num_tasks=len(tasks),
                task_avg_seconds={
                    group: sum(values) / len(values)
                    for group, values in durations.items()
                },
                task_counts={
                    group: len(values) for group, values in durations.items()
                },
                first_finish_seconds=(
                    min(t.finish_time for t in tasks) - job.stage_start
                ),
                read_bytes=sum(t.io_bytes(is_write=False) for t in tasks),
                write_bytes=sum(t.io_bytes(is_write=True) for t in tasks),
                iostat_samples=tuple(samples),
                avg_gc_seconds=sum(t.gc_seconds for t in tasks) / len(tasks),
                core_utilization=(
                    core_seconds / capacity if capacity > 0 else 0.0
                ),
            )
        )

    # -- per-job accounting hooks ------------------------------------------

    def _account_busy_time(self, dt: float) -> None:
        super()._account_busy_time(dt)
        if dt <= 0.0:
            return
        for job in self._jobs:
            if job.num_running:
                job.core_busy += job.num_running * dt

    def _open_io(self, running: _Running, phase, now: float) -> None:
        # Route iostat samples to the owning job's per-stage collector.
        self.iostat = self._task_job[running.task.task_id].iostat
        try:
            super()._open_io(running, phase, now)
        finally:
            self.iostat = None

    # -- node death under multi-tenancy ------------------------------------

    def _kill_node(self, name: str, now: float) -> None:
        """Node death with per-job requeue: every job's in-flight and
        pending tasks on the dead node restart round-robin on survivors."""
        if name in self._dead_nodes:
            return
        self._dead_nodes.add(name)
        survivors = [
            node for node in self.cluster.slaves
            if node.name not in self._dead_nodes
        ]
        requeue: list[SimTask] = []
        for running in [r for r in self._active.values() if r.node.name == name]:
            running.epoch += 1
            for stream in running.streams:
                stream.epoch += 1
                self._stalled.pop(stream.stream_id, None)
                self._owner.pop(stream.stream_id, None)
                for resource in list(stream.resources):
                    resource.detach(stream, rebalance=False)
                    self._mark_dirty(resource)
            running.streams.clear()
            running.open_streams = 0
            del self._active[id(running)]
            self._num_running -= 1
            self._task_job[running.task.task_id].num_running -= 1
            task = running.task
            task.start_time = -1.0
            task.finish_time = -1.0
            requeue.append(task)
        queues = self._queues[name]
        for job_index in sorted(queues):
            requeue.extend(queues[job_index])
        queues.clear()
        if not survivors:
            if self._unfinished_jobs > 0:
                raise SimulationError(
                    f"node {name} died leaving no live nodes with"
                    f" {self._unfinished_jobs} job(s) unfinished"
                )
            return
        requeue.sort(key=lambda t: t.task_id)
        for index, task in enumerate(requeue):
            target = survivors[index % len(survivors)]
            job = self._task_job[task.task_id]
            self._queues[target.name].setdefault(job.index, deque()).append(task)
        if requeue:
            self._freed_nodes.update(node.name for node in survivors)


def measure_mix(
    cluster: Cluster,
    cores_per_node: int,
    jobs: Sequence[MixJob],
    policy: str = "fair",
    run_index: int = 0,
    network: NetworkModel | None = None,
    faults: FaultPlan | None = None,
) -> MixMeasurement:
    """Simulate a mix and collect its measurement record.

    The direct (uncached) driver; :meth:`repro.pipeline.experiment
    .Experiment.measure_mix` wraps this with content-addressed caching
    and delegates K = 1 mixes to the bit-identical solo path.
    """
    engine = MixEngine(
        cluster, cores_per_node, jobs, policy=policy, run_index=run_index,
        network=network, faults=faults,
    )
    return engine.measurement(engine.run_mix())
