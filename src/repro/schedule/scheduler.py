"""A shared-cluster batch queue driven by Doppio predictions.

The model: one cluster, jobs submitted at known arrival times, executed
one at a time (a coarse but standard abstraction for capacity-bound
clusters).  A scheduling *policy* orders the pending queue; classic
queueing theory says shortest-job-first minimizes mean waiting time — but
SJF needs to know job lengths ahead of time, which is exactly what the
Doppio predictor provides without running anything.

``simulate_queue`` scores a policy; :func:`spjf_order` is
shortest-*predicted*-job-first using a runtime estimate per job.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import DoppioError


class SchedulingError(DoppioError):
    """A job queue or policy is malformed."""


@dataclass(frozen=True)
class Job:
    """One queued job.

    Attributes
    ----------
    name:
        Label.
    true_runtime:
        Seconds the job actually takes (the simulator's measurement).
    predicted_runtime:
        The model's estimate, available *before* running.
    arrival_time:
        Submission time (seconds; batch queues use 0 for all).
    """

    name: str
    true_runtime: float
    predicted_runtime: float
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if self.true_runtime < 0 or self.predicted_runtime < 0:
            raise SchedulingError(f"job {self.name}: runtimes must be non-negative")
        if self.arrival_time < 0:
            raise SchedulingError(f"job {self.name}: arrival must be non-negative")


@dataclass(frozen=True)
class ScheduledJob:
    """A job with its realized schedule."""

    job: Job
    start_time: float
    finish_time: float

    @property
    def waiting_time(self) -> float:
        """Seconds between arrival and start."""
        return self.start_time - self.job.arrival_time

    @property
    def turnaround_time(self) -> float:
        """Seconds between arrival and completion."""
        return self.finish_time - self.job.arrival_time


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one policy over one job set."""

    policy: str
    scheduled: tuple[ScheduledJob, ...] = field(default=())

    @property
    def mean_waiting_time(self) -> float:
        """Average waiting time across jobs."""
        if not self.scheduled:
            raise SchedulingError("no jobs were scheduled")
        return sum(s.waiting_time for s in self.scheduled) / len(self.scheduled)

    @property
    def mean_turnaround_time(self) -> float:
        """Average turnaround time across jobs."""
        if not self.scheduled:
            raise SchedulingError("no jobs were scheduled")
        return sum(s.turnaround_time for s in self.scheduled) / len(self.scheduled)

    @property
    def makespan(self) -> float:
        """When the last job finishes."""
        if not self.scheduled:
            raise SchedulingError("no jobs were scheduled")
        return max(s.finish_time for s in self.scheduled)


class ExecutorBlacklist:
    """Strike-based executor exclusion (``spark.blacklist.*`` semantics).

    Tracks per-executor *strikes* — failed task attempts and straggler
    evidence (an attempt slow enough that speculation duplicated it).
    An executor whose count reaches ``max_strikes`` is excluded from
    further scheduling, except that the last remaining candidate is
    never excluded: a degraded cluster beats an empty one.

    The class is deliberately engine-agnostic (plain names in, booleans
    out) so both the task-level simulator and the job-level queue above
    can consult the same exclusion state.
    """

    def __init__(self, max_strikes: int, names: Sequence[str]) -> None:
        if max_strikes < 1:
            raise SchedulingError(f"max_strikes must be >= 1: {max_strikes}")
        if not names:
            raise SchedulingError("a blacklist needs at least one executor name")
        self.max_strikes = max_strikes
        self._names = list(dict.fromkeys(names))
        self._strikes: dict[str, int] = {}
        #: Insertion-ordered set of excluded executor names.
        self._excluded: dict[str, None] = {}

    @property
    def excluded(self) -> tuple[str, ...]:
        """Names excluded so far, in exclusion order."""
        return tuple(self._excluded)

    def strikes(self, name: str) -> int:
        """Strike count against one executor."""
        return self._strikes.get(name, 0)

    def is_excluded(self, name: str) -> bool:
        """Whether an executor is currently excluded from scheduling."""
        return name in self._excluded

    def eligible(self, names: Sequence[str]) -> list[str]:
        """Filter ``names`` down to the non-excluded ones, order kept."""
        return [name for name in names if name not in self._excluded]

    def strike(self, name: str, *, survivors: Sequence[str]) -> bool:
        """Record one strike; returns True when this crosses the threshold.

        ``survivors`` are the executors that would remain schedulable if
        ``name`` were excluded now; when empty the exclusion is skipped
        (never blacklist the last executor) but the strike still counts.
        """
        if name not in self._names:
            self._names.append(name)
        count = self._strikes.get(name, 0) + 1
        self._strikes[name] = count
        if name in self._excluded or count < self.max_strikes:
            return False
        if not [s for s in survivors if s != name and s not in self._excluded]:
            return False
        self._excluded[name] = None
        return True


#: A policy orders the *pending* jobs (those that have arrived and not
#: run); the scheduler picks the first.
Policy = Callable[[Sequence[Job]], Sequence[Job]]


def fifo_order(pending: Sequence[Job]) -> Sequence[Job]:
    """First-come-first-served (ties broken by name for determinism)."""
    return sorted(pending, key=lambda job: (job.arrival_time, job.name))


def spjf_order(pending: Sequence[Job]) -> Sequence[Job]:
    """Shortest-predicted-job-first: the Doppio-enabled policy."""
    return sorted(pending, key=lambda job: (job.predicted_runtime, job.name))


def oracle_order(pending: Sequence[Job]) -> Sequence[Job]:
    """Shortest-true-job-first: the unachievable lower bound."""
    return sorted(pending, key=lambda job: (job.true_runtime, job.name))


def simulate_queue(
    jobs: Sequence[Job], policy: Policy, policy_name: str = "policy"
) -> ScheduleResult:
    """Run the queue to completion under ``policy``.

    Non-preemptive: at each decision point the policy ranks the jobs that
    have already arrived; if none has, the clock jumps to the next
    arrival.
    """
    if not jobs:
        raise SchedulingError("cannot schedule an empty job set")
    remaining = list(jobs)
    clock = 0.0
    scheduled: list[ScheduledJob] = []
    while remaining:
        pending = [job for job in remaining if job.arrival_time <= clock]
        if not pending:
            clock = min(job.arrival_time for job in remaining)
            continue
        chosen = policy(pending)[0]
        remaining.remove(chosen)
        start = max(clock, chosen.arrival_time)
        finish = start + chosen.true_runtime
        scheduled.append(ScheduledJob(job=chosen, start_time=start,
                                      finish_time=finish))
        clock = finish
    return ScheduleResult(policy=policy_name, scheduled=tuple(scheduled))
