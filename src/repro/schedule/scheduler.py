"""A shared-cluster batch queue driven by Doppio predictions.

The model: one cluster, jobs submitted at known arrival times, executed
one at a time (a coarse but standard abstraction for capacity-bound
clusters).  A scheduling *policy* orders the pending queue; classic
queueing theory says shortest-job-first minimizes mean waiting time — but
SJF needs to know job lengths ahead of time, which is exactly what the
Doppio predictor provides without running anything.

``simulate_queue`` scores a policy; :func:`spjf_order` is
shortest-*predicted*-job-first using a runtime estimate per job.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import DoppioError


class SchedulingError(DoppioError):
    """A job queue or policy is malformed."""


@dataclass(frozen=True)
class Job:
    """One queued job.

    Attributes
    ----------
    name:
        Label.
    true_runtime:
        Seconds the job actually takes (the simulator's measurement).
    predicted_runtime:
        The model's estimate, available *before* running.
    arrival_time:
        Submission time (seconds; batch queues use 0 for all).
    """

    name: str
    true_runtime: float
    predicted_runtime: float
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if self.true_runtime < 0 or self.predicted_runtime < 0:
            raise SchedulingError(f"job {self.name}: runtimes must be non-negative")
        if self.arrival_time < 0:
            raise SchedulingError(f"job {self.name}: arrival must be non-negative")


@dataclass(frozen=True)
class ScheduledJob:
    """A job with its realized schedule."""

    job: Job
    start_time: float
    finish_time: float

    @property
    def waiting_time(self) -> float:
        """Seconds between arrival and start."""
        return self.start_time - self.job.arrival_time

    @property
    def turnaround_time(self) -> float:
        """Seconds between arrival and completion."""
        return self.finish_time - self.job.arrival_time


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one policy over one job set."""

    policy: str
    scheduled: tuple[ScheduledJob, ...] = field(default=())

    @property
    def mean_waiting_time(self) -> float:
        """Average waiting time across jobs."""
        if not self.scheduled:
            raise SchedulingError("no jobs were scheduled")
        return sum(s.waiting_time for s in self.scheduled) / len(self.scheduled)

    @property
    def mean_turnaround_time(self) -> float:
        """Average turnaround time across jobs."""
        if not self.scheduled:
            raise SchedulingError("no jobs were scheduled")
        return sum(s.turnaround_time for s in self.scheduled) / len(self.scheduled)

    @property
    def makespan(self) -> float:
        """When the last job finishes."""
        if not self.scheduled:
            raise SchedulingError("no jobs were scheduled")
        return max(s.finish_time for s in self.scheduled)


#: A policy orders the *pending* jobs (those that have arrived and not
#: run); the scheduler picks the first.
Policy = Callable[[Sequence[Job]], Sequence[Job]]


def fifo_order(pending: Sequence[Job]) -> Sequence[Job]:
    """First-come-first-served (ties broken by name for determinism)."""
    return sorted(pending, key=lambda job: (job.arrival_time, job.name))


def spjf_order(pending: Sequence[Job]) -> Sequence[Job]:
    """Shortest-predicted-job-first: the Doppio-enabled policy."""
    return sorted(pending, key=lambda job: (job.predicted_runtime, job.name))


def oracle_order(pending: Sequence[Job]) -> Sequence[Job]:
    """Shortest-true-job-first: the unachievable lower bound."""
    return sorted(pending, key=lambda job: (job.true_runtime, job.name))


def simulate_queue(
    jobs: Sequence[Job], policy: Policy, policy_name: str = "policy"
) -> ScheduleResult:
    """Run the queue to completion under ``policy``.

    Non-preemptive: at each decision point the policy ranks the jobs that
    have already arrived; if none has, the clock jumps to the next
    arrival.
    """
    if not jobs:
        raise SchedulingError("cannot schedule an empty job set")
    remaining = list(jobs)
    clock = 0.0
    scheduled: list[ScheduledJob] = []
    while remaining:
        pending = [job for job in remaining if job.arrival_time <= clock]
        if not pending:
            clock = min(job.arrival_time for job in remaining)
            continue
        chosen = policy(pending)[0]
        remaining.remove(chosen)
        start = max(clock, chosen.arrival_time)
        finish = start + chosen.true_runtime
        scheduled.append(ScheduledJob(job=chosen, start_time=start,
                                      finish_time=finish))
        clock = finish
    return ScheduleResult(policy=policy_name, scheduled=tuple(scheduled))
