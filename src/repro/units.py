"""Units and formatting helpers used across the Doppio library.

All sizes inside the library are plain floats in **bytes**, all times in
**seconds**, and all bandwidths in **bytes per second**.  The constants here
exist so that call sites can say ``30 * KB`` or ``128 * MB`` instead of
sprinkling magic powers of two around.

The paper mixes decimal-looking labels ("128MB HDFS block") with binary
arithmetic ("122GB * 1024 (MB/GB) / 128 (MB/HDFS block)"); we follow the
paper and use binary (IEC) multiples throughout, which is also what HDFS and
Spark use internally.
"""

from __future__ import annotations

#: One kibibyte, in bytes.
KB = 1024.0
#: One mebibyte, in bytes.
MB = 1024.0 * KB
#: One gibibyte, in bytes.
GB = 1024.0 * MB
#: One tebibyte, in bytes.
TB = 1024.0 * GB

#: One second, in seconds (for symmetry in workload definitions).
SECOND = 1.0
#: One minute, in seconds.
MINUTE = 60.0
#: One hour, in seconds.
HOUR = 3600.0
#: Average Gregorian month, in hours.  Google Cloud bills disk space per
#: GB-month; we convert with this constant (365.25 / 12 days).
MONTH_HOURS = 730.5

#: Disk sector size used by ``iostat`` when reporting average request sizes.
SECTOR = 512.0

_SIZE_STEPS = ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB"))


def fmt_bytes(num_bytes: float) -> str:
    """Render a byte count with a human-friendly IEC suffix.

    >>> fmt_bytes(30 * 1024)
    '30.0KB'
    >>> fmt_bytes(128 * 1024 * 1024)
    '128.0MB'
    """
    for step, suffix in _SIZE_STEPS:
        if abs(num_bytes) >= step:
            return f"{num_bytes / step:.1f}{suffix}"
    return f"{num_bytes:.0f}B"


def fmt_bandwidth(bytes_per_sec: float) -> str:
    """Render a bandwidth as ``<value>MB/s`` (the unit the paper uses).

    >>> fmt_bandwidth(15 * 1024 * 1024)
    '15.0MB/s'
    """
    return f"{bytes_per_sec / MB:.1f}MB/s"


def fmt_duration(seconds: float) -> str:
    """Render a duration like the paper does (minutes for long stages).

    >>> fmt_duration(126 * 60)
    '126.0min'
    >>> fmt_duration(42.0)
    '42.0s'
    """
    if abs(seconds) >= MINUTE:
        return f"{seconds / MINUTE:.1f}min"
    return f"{seconds:.1f}s"


def fmt_dollars(amount: float) -> str:
    """Render a cost in dollars with cents, e.g. ``$4.12``."""
    return f"${amount:.2f}"
