"""Unit tests for units and formatting helpers."""

import pytest

from repro.units import (
    GB,
    HOUR,
    KB,
    MB,
    MINUTE,
    MONTH_HOURS,
    SECTOR,
    TB,
    fmt_bandwidth,
    fmt_bytes,
    fmt_dollars,
    fmt_duration,
)


class TestConstants:
    def test_binary_multiples(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB

    def test_time_units(self):
        assert MINUTE == 60
        assert HOUR == 3600

    def test_sector_is_512(self):
        assert SECTOR == 512

    def test_month_hours(self):
        # 365.25 / 12 days of 24 hours.
        assert MONTH_HOURS == pytest.approx(730.5)


class TestFormatting:
    def test_fmt_bytes_scales(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(30 * KB) == "30.0KB"
        assert fmt_bytes(128 * MB) == "128.0MB"
        assert fmt_bytes(1.5 * GB) == "1.5GB"
        assert fmt_bytes(4 * TB) == "4.0TB"

    def test_fmt_bandwidth(self):
        assert fmt_bandwidth(15 * MB) == "15.0MB/s"
        assert fmt_bandwidth(480 * MB) == "480.0MB/s"

    def test_fmt_duration(self):
        assert fmt_duration(42.0) == "42.0s"
        assert fmt_duration(126 * 60) == "126.0min"
        assert fmt_duration(59.9) == "59.9s"

    def test_fmt_dollars(self):
        assert fmt_dollars(4.12) == "$4.12"
        assert fmt_dollars(3.749) == "$3.75"
