"""Unit tests for multi-disk arrays (the paper's multi-disk generality)."""

import pytest

from repro.errors import StorageError
from repro.storage.array import equivalent_disk_count, make_disk_array
from repro.storage.device import make_hdd, make_ssd
from repro.units import KB, MB, TB


class TestMakeDiskArray:
    def test_bandwidth_adds(self):
        array = make_disk_array("raid0", [make_hdd("d0"), make_hdd("d1")])
        single = make_hdd()
        for request in (4 * KB, 30 * KB, 1 * MB, 128 * MB):
            assert array.read_bandwidth(request) == pytest.approx(
                2 * single.read_bandwidth(request)
            )
            assert array.write_bandwidth(request) == pytest.approx(
                2 * single.write_bandwidth(request)
            )

    def test_capacity_adds(self):
        array = make_disk_array("a", [make_hdd("d0"), make_hdd("d1"),
                                      make_hdd("d2")])
        assert array.capacity_bytes == pytest.approx(12 * TB)

    def test_homogeneous_kind_preserved(self):
        assert make_disk_array("a", [make_hdd("x"), make_hdd("y")]).kind == "hdd"

    def test_mixed_kind_labelled_array(self):
        mixed = make_disk_array("a", [make_hdd("x"), make_ssd("y")])
        assert mixed.kind == "array"

    def test_mixed_array_sums_heterogeneous_curves(self):
        mixed = make_disk_array("a", [make_hdd("x"), make_ssd("y")])
        expected = make_hdd().read_bandwidth(30 * KB) + make_ssd().read_bandwidth(
            30 * KB
        )
        assert mixed.read_bandwidth(30 * KB) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            make_disk_array("a", [])

    def test_single_member_identity(self):
        array = make_disk_array("a", [make_ssd("only")])
        assert array.read_bandwidth(30 * KB) == pytest.approx(
            make_ssd().read_bandwidth(30 * KB)
        )


class TestEquivalentDiskCount:
    """The Related-Work argument against sequential-bandwidth matching."""

    def test_sequential_matching_underestimates_random(self):
        hdd, ssd = make_hdd(), make_ssd()
        sequential = equivalent_disk_count(hdd, ssd, 128 * MB)
        shuffle = equivalent_disk_count(hdd, ssd, 30 * KB)
        random_4k = equivalent_disk_count(hdd, ssd, 4 * KB)
        assert sequential == pytest.approx(3.7, rel=0.02)
        assert shuffle == pytest.approx(32, rel=0.02)
        assert random_4k == pytest.approx(181, rel=0.02)
        assert random_4k > shuffle > sequential

    def test_array_of_matched_hdds_still_loses_at_small_requests(self):
        # 4 HDDs match one SSD sequentially, but deliver only 60 MB/s of
        # the SSD's 480 at the 30 KB shuffle-read size.
        array = make_disk_array("jbod", [make_hdd(f"d{i}") for i in range(4)])
        ssd = make_ssd()
        assert array.read_bandwidth(128 * MB) >= ssd.read_bandwidth(128 * MB)
        assert array.read_bandwidth(30 * KB) < 0.2 * ssd.read_bandwidth(30 * KB)
