"""Unit tests for the fio-style microbenchmark (Fig. 5 machinery)."""

import pytest

from repro.storage.fio import DEFAULT_BLOCK_SIZES, run_fio_point, run_fio_sweep
from repro.units import KB, MB


class TestFioPoint:
    def test_single_job_reads_device_curve(self, hdd):
        result = run_fio_point(hdd, 30 * KB)
        assert result.bandwidth == pytest.approx(15 * MB)
        assert result.iops == pytest.approx(15 * MB / (30 * KB))
        assert result.device_name == hdd.name
        assert not result.is_write

    def test_multiple_jobs_saturate_same_aggregate(self, hdd):
        one = run_fio_point(hdd, 30 * KB, num_jobs=1)
        many = run_fio_point(hdd, 30 * KB, num_jobs=8)
        assert many.bandwidth == pytest.approx(one.bandwidth)

    def test_write_mode(self, ssd):
        result = run_fio_point(ssd, 1 * MB, is_write=True)
        assert result.is_write
        assert result.bandwidth == pytest.approx(ssd.write_bandwidth(1 * MB))

    def test_queue_left_clean(self, hdd):
        run_fio_point(hdd, 30 * KB, num_jobs=4)
        # A fresh single-job point still sees the whole device.
        again = run_fio_point(hdd, 30 * KB)
        assert again.bandwidth == pytest.approx(15 * MB)


class TestFioSweep:
    def test_sweep_covers_default_sizes(self, ssd):
        results = run_fio_sweep(ssd)
        assert [r.block_size for r in results] == list(DEFAULT_BLOCK_SIZES)

    def test_bandwidth_monotone_in_block_size(self, hdd):
        results = run_fio_sweep(hdd)
        bandwidths = [r.bandwidth for r in results]
        assert bandwidths == sorted(bandwidths)

    def test_iops_decrease_with_block_size(self, hdd):
        results = run_fio_sweep(hdd)
        iops = [r.iops for r in results]
        assert iops == sorted(iops, reverse=True)

    def test_fig5_gap_series(self, hdd, ssd):
        hdd_sweep = {r.block_size: r.bandwidth for r in run_fio_sweep(hdd)}
        ssd_sweep = {r.block_size: r.bandwidth for r in run_fio_sweep(ssd)}
        gap_4k = ssd_sweep[4 * KB] / hdd_sweep[4 * KB]
        gap_30k = ssd_sweep[30 * KB] / hdd_sweep[30 * KB]
        gap_128m = ssd_sweep[128 * MB] / hdd_sweep[128 * MB]
        assert gap_4k > gap_30k > gap_128m
        assert gap_4k == pytest.approx(181, rel=0.02)
        assert gap_30k == pytest.approx(32, rel=0.02)
        assert gap_128m == pytest.approx(3.7, rel=0.02)
