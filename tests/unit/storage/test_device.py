"""Unit tests for storage device models."""

import pytest

from repro.errors import StorageError
from repro.storage.device import StorageDevice, make_hdd
from repro.units import GB, KB, MB, TB


class TestFactories:
    def test_hdd_defaults(self, hdd):
        assert hdd.kind == "hdd"
        assert hdd.capacity_bytes == pytest.approx(4 * TB)
        assert hdd.used_bytes == 0.0

    def test_ssd_defaults(self, ssd):
        assert ssd.kind == "ssd"
        assert ssd.capacity_bytes == pytest.approx(240 * GB)

    def test_custom_name_and_capacity(self):
        device = make_hdd(name="d0", capacity_bytes=1 * TB)
        assert device.name == "d0"
        assert device.capacity_bytes == pytest.approx(1 * TB)

    def test_repr(self, hdd):
        assert "hdd" in repr(hdd)


class TestBandwidthDispatch:
    def test_read_vs_write_curves_differ(self, hdd):
        assert hdd.read_bandwidth(128 * MB) != hdd.write_bandwidth(128 * MB)

    def test_bandwidth_dispatch(self, ssd):
        assert ssd.bandwidth(30 * KB, is_write=False) == pytest.approx(
            ssd.read_bandwidth(30 * KB)
        )
        assert ssd.bandwidth(30 * KB, is_write=True) == pytest.approx(
            ssd.write_bandwidth(30 * KB)
        )

    def test_hdd_shuffle_write_near_100mbs(self, hdd):
        # Section V-A1: BW_write ~ 100 MB/s at the ~365 MB chunk size.
        assert hdd.write_bandwidth(365 * MB) == pytest.approx(100 * MB, rel=0.05)

    def test_write_curves_monotone(self, hdd, ssd):
        for device in (hdd, ssd):
            previous = 0.0
            for size in (4 * KB, 30 * KB, 1 * MB, 16 * MB, 128 * MB):
                value = device.write_bandwidth(size)
                assert value >= previous
                previous = value


class TestAllocation:
    def test_allocate_and_release(self, ssd):
        ssd.allocate(100 * GB)
        assert ssd.used_bytes == pytest.approx(100 * GB)
        assert ssd.free_bytes == pytest.approx(140 * GB)
        ssd.release(60 * GB)
        assert ssd.used_bytes == pytest.approx(40 * GB)

    def test_allocate_beyond_capacity(self, ssd):
        with pytest.raises(StorageError):
            ssd.allocate(250 * GB)

    def test_release_more_than_allocated(self, ssd):
        ssd.allocate(10 * GB)
        with pytest.raises(StorageError):
            ssd.release(20 * GB)

    def test_negative_amounts_rejected(self, ssd):
        with pytest.raises(StorageError):
            ssd.allocate(-1.0)
        with pytest.raises(StorageError):
            ssd.release(-1.0)

    def test_zero_capacity_rejected(self):
        from repro.core.bandwidth import EffectiveBandwidthTable

        table = EffectiveBandwidthTable({1.0: 1.0})
        with pytest.raises(StorageError):
            StorageDevice(
                name="bad", kind="hdd", capacity_bytes=0.0,
                read_table=table, write_table=table,
            )
