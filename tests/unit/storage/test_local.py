"""Unit tests for the Spark-local directory store."""

import pytest

from repro.errors import FileNotFoundInStoreError, StorageError
from repro.storage.device import make_ssd
from repro.storage.local import SparkLocalDir
from repro.units import GB, MB


@pytest.fixture()
def local():
    return SparkLocalDir(make_ssd(capacity_bytes=100 * GB))


class TestWriteAndRead:
    def test_write_get(self, local):
        written = local.write("shuffle_0_0", 351 * MB, SparkLocalDir.SHUFFLE)
        assert local.get("shuffle_0_0") == written
        assert local.exists("shuffle_0_0")
        assert written.kind == "shuffle"

    def test_unknown_kind_rejected(self, local):
        with pytest.raises(StorageError):
            local.write("x", 1 * MB, "temporary")

    def test_duplicate_rejected(self, local):
        local.write("x", 1 * MB, SparkLocalDir.PERSIST)
        with pytest.raises(StorageError):
            local.write("x", 1 * MB, SparkLocalDir.PERSIST)

    def test_negative_size_rejected(self, local):
        with pytest.raises(StorageError):
            local.write("x", -1.0, SparkLocalDir.SHUFFLE)

    def test_missing_file(self, local):
        with pytest.raises(FileNotFoundInStoreError):
            local.get("nope")


class TestAccounting:
    def test_device_allocation(self, local):
        local.write("a", 10 * GB, SparkLocalDir.SHUFFLE)
        assert local.device.used_bytes == pytest.approx(10 * GB)
        local.delete("a")
        assert local.device.used_bytes == 0.0

    def test_capacity_enforced(self, local):
        with pytest.raises(StorageError):
            local.write("big", 200 * GB, SparkLocalDir.PERSIST)

    def test_used_bytes_by_kind(self, local):
        local.write("s", 10 * GB, SparkLocalDir.SHUFFLE)
        local.write("p", 5 * GB, SparkLocalDir.PERSIST)
        assert local.used_bytes == pytest.approx(15 * GB)
        assert local.used_bytes_of("shuffle") == pytest.approx(10 * GB)
        assert local.used_bytes_of("persist") == pytest.approx(5 * GB)

    def test_clear_by_kind(self, local):
        local.write("s", 10 * GB, SparkLocalDir.SHUFFLE)
        local.write("p", 5 * GB, SparkLocalDir.PERSIST)
        local.clear(kind=SparkLocalDir.SHUFFLE)
        assert not local.exists("s")
        assert local.exists("p")

    def test_clear_all(self, local):
        local.write("s", 10 * GB, SparkLocalDir.SHUFFLE)
        local.write("p", 5 * GB, SparkLocalDir.PERSIST)
        local.clear()
        assert local.used_bytes == 0.0
        assert local.device.used_bytes == 0.0

    def test_list_sorted(self, local):
        local.write("b", 1 * MB, SparkLocalDir.SHUFFLE)
        local.write("a", 1 * MB, SparkLocalDir.PERSIST)
        assert [f.name for f in local.list_files()] == ["a", "b"]
