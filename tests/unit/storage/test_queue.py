"""Unit tests for the processor-sharing device queue."""

import pytest

from repro.errors import SimulationError
from repro.storage.queue import DeviceQueue, IoStream
from repro.units import KB, MB


def stream(bytes_=100 * MB, rs=30 * KB, write=False, cap=None):
    return IoStream(
        remaining_bytes=bytes_, request_size=rs, is_write=write, per_stream_cap=cap
    )


class TestIoStream:
    def test_done_and_finish_time(self):
        s = stream(bytes_=10 * MB)
        s.rate = 5 * MB
        assert not s.done
        assert s.seconds_to_finish() == pytest.approx(2.0)

    def test_stalled_stream(self):
        s = stream()
        assert s.seconds_to_finish() == float("inf")

    def test_finished_stream(self):
        s = stream(bytes_=0.0)
        assert s.done
        assert s.seconds_to_finish() == 0.0

    def test_invalid_streams_rejected(self):
        with pytest.raises(SimulationError):
            stream(bytes_=-1.0)
        with pytest.raises(SimulationError):
            stream(rs=0.0)
        with pytest.raises(SimulationError):
            stream(cap=0.0)


class TestWaterFilling:
    def test_single_uncapped_stream_gets_device_bandwidth(self, ssd):
        queue = DeviceQueue(ssd)
        s = stream()
        queue.attach(s)
        assert s.rate == pytest.approx(ssd.read_bandwidth(30 * KB))

    def test_below_break_point_everyone_gets_cap(self, ssd):
        # b = BW/T = 480/60 = 8: with 4 capped streams, no contention.
        queue = DeviceQueue(ssd)
        streams = [stream(cap=60 * MB) for _ in range(4)]
        for s in streams:
            queue.attach(s)
        for s in streams:
            assert s.rate == pytest.approx(60 * MB)

    def test_above_break_point_fair_share(self, ssd):
        # 16 capped streams on 480 MB/s -> 30 MB/s each (below the 60 cap).
        queue = DeviceQueue(ssd)
        streams = [stream(cap=60 * MB) for _ in range(16)]
        for s in streams:
            queue.attach(s)
        for s in streams:
            assert s.rate == pytest.approx(30 * MB)

    def test_exactly_break_point(self, ssd):
        queue = DeviceQueue(ssd)
        streams = [stream(cap=60 * MB) for _ in range(8)]
        for s in streams:
            queue.attach(s)
        for s in streams:
            assert s.rate == pytest.approx(60 * MB)

    def test_mixed_caps_surplus_redistribution(self, ssd):
        queue = DeviceQueue(ssd)
        slow = stream(cap=10 * MB)
        fast = stream(cap=1000 * MB)
        queue.attach(slow)
        queue.attach(fast)
        assert slow.rate == pytest.approx(10 * MB)
        assert fast.rate == pytest.approx(480 * MB - 10 * MB)

    def test_detach_rebalances(self, ssd):
        queue = DeviceQueue(ssd)
        streams = [stream(cap=60 * MB) for _ in range(16)]
        for s in streams:
            queue.attach(s)
        for s in streams[:8]:
            queue.detach(s)
        for s in streams[8:]:
            assert s.rate == pytest.approx(60 * MB)

    def test_reads_and_writes_independent_pools(self, ssd):
        queue = DeviceQueue(ssd)
        reader = stream()
        writer = stream(write=True)
        queue.attach(reader)
        queue.attach(writer)
        assert reader.rate == pytest.approx(ssd.read_bandwidth(30 * KB))
        assert writer.rate == pytest.approx(ssd.write_bandwidth(30 * KB))

    def test_smallest_request_size_sets_capacity(self, hdd):
        # Mixing a 30 KB stream with a 128 MB stream drags the aggregate
        # down to the seek-dominated regime.
        queue = DeviceQueue(hdd)
        small = stream(rs=30 * KB)
        large = stream(rs=128 * MB)
        queue.attach(small)
        queue.attach(large)
        total = small.rate + large.rate
        assert total == pytest.approx(hdd.read_bandwidth(30 * KB))


class TestAttachDetachErrors:
    def test_double_attach(self, ssd):
        queue = DeviceQueue(ssd)
        s = stream()
        queue.attach(s)
        with pytest.raises(SimulationError):
            queue.attach(s)

    def test_detach_unknown(self, ssd):
        queue = DeviceQueue(ssd)
        with pytest.raises(SimulationError):
            queue.detach(stream())

    def test_num_active_tracking(self, ssd):
        queue = DeviceQueue(ssd)
        s1, s2 = stream(), stream()
        queue.attach(s1)
        queue.attach(s2)
        assert queue.num_active == 2
        queue.detach(s1)
        assert queue.num_active == 1
        assert s1.rate == 0.0

    def test_aggregate_capacity_reporting(self, hdd):
        queue = DeviceQueue(hdd)
        assert queue.aggregate_capacity() == 0.0
        queue.attach(stream(rs=30 * KB))
        assert queue.aggregate_capacity() == pytest.approx(15 * MB)
