"""Unit tests for the iostat-style request collector."""

import pytest

from repro.errors import StorageError
from repro.storage.iostat import IostatCollector
from repro.units import KB, MB


@pytest.fixture()
def collector():
    return IostatCollector()


class TestRecording:
    def test_average_request_size(self, collector):
        collector.record("disk0", total_bytes=300 * KB, request_size=30 * KB,
                         is_write=False)
        sample = collector.sample("disk0", is_write=False)
        assert sample.num_requests == pytest.approx(10.0)
        assert sample.avg_request_size == pytest.approx(30 * KB)

    def test_byte_weighted_mixing(self, collector):
        collector.record("disk0", 100 * MB, request_size=1 * MB, is_write=False)
        collector.record("disk0", 100 * MB, request_size=100 * MB, is_write=False)
        sample = collector.sample("disk0", is_write=False)
        # 100 requests of 1 MB + 1 request of 100 MB = 101 requests / 200 MB.
        assert sample.avg_request_size == pytest.approx(200 * MB / 101)

    def test_directions_separate(self, collector):
        collector.record("disk0", 10 * MB, 1 * MB, is_write=False)
        collector.record("disk0", 20 * MB, 2 * MB, is_write=True)
        assert collector.sample("disk0", False).total_bytes == pytest.approx(10 * MB)
        assert collector.sample("disk0", True).total_bytes == pytest.approx(20 * MB)

    def test_zero_byte_transfer_ignored(self, collector):
        collector.record("disk0", 0.0, 1 * MB, is_write=False)
        assert collector.sample("disk0", False).num_requests == 0.0

    def test_invalid_records(self, collector):
        with pytest.raises(StorageError):
            collector.record("d", -1.0, 1.0, False)
        with pytest.raises(StorageError):
            collector.record("d", 1.0, 0.0, False)


class TestSamples:
    def test_avgrq_sz_sectors_matches_paper(self, collector):
        # The paper measures ~60 sectors (30 KB) during shuffle read.
        collector.record("local", 334 * MB, request_size=30 * KB, is_write=False)
        sample = collector.sample("local", is_write=False)
        assert sample.avgrq_sz_sectors == pytest.approx(60.0)

    def test_empty_sample_raises_on_avg(self, collector):
        sample = collector.sample("nothing", is_write=False)
        with pytest.raises(StorageError):
            _ = sample.avg_request_size

    def test_devices_listing(self, collector):
        collector.record("b", 1 * MB, 1 * MB, False)
        collector.record("a", 1 * MB, 1 * MB, True)
        assert collector.devices() == ["a", "b"]

    def test_reset(self, collector):
        collector.record("a", 1 * MB, 1 * MB, False)
        collector.reset()
        assert collector.devices() == []
