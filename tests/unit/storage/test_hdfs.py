"""Unit tests for the HDFS model."""

import pytest

from repro.errors import (
    ConfigurationError,
    FileNotFoundInStoreError,
    StorageError,
)
from repro.storage.device import make_hdd
from repro.storage.hdfs import Hdfs
from repro.units import GB, MB, TB


@pytest.fixture()
def hdfs():
    devices = [make_hdd(name=f"dn{i}", capacity_bytes=1 * TB) for i in range(3)]
    return Hdfs(devices=devices, block_size=128 * MB, replication=2)


class TestConstruction:
    def test_defaults(self, hdfs):
        assert hdfs.block_size == pytest.approx(128 * MB)
        assert hdfs.replication == 2

    def test_requires_devices(self):
        with pytest.raises(ConfigurationError):
            Hdfs(devices=[])

    def test_replication_bounds(self):
        devices = [make_hdd(name="dn0")]
        with pytest.raises(ConfigurationError):
            Hdfs(devices=devices, replication=0)
        with pytest.raises(ConfigurationError):
            Hdfs(devices=devices, replication=2)

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            Hdfs(devices=[make_hdd()], block_size=0.0, replication=1)


class TestFiles:
    def test_put_get(self, hdfs):
        put = hdfs.put("/genome.bam", 122 * GB)
        got = hdfs.get("/genome.bam")
        assert got == put
        assert hdfs.exists("/genome.bam")

    def test_block_count_gatk4(self, hdfs):
        # 973 blocks for the paper's input (973 * 128 MB file).
        hdfs_file = hdfs.put("/input.bam", 973 * 128 * MB)
        assert hdfs_file.num_blocks == 973

    def test_block_count_rounds_up(self, hdfs):
        assert hdfs.put("/x", 129 * MB).num_blocks == 2

    def test_empty_file_one_block(self, hdfs):
        assert hdfs.put("/empty", 0.0).num_blocks == 1

    def test_duplicate_path_rejected(self, hdfs):
        hdfs.put("/a", 1 * GB)
        with pytest.raises(StorageError):
            hdfs.put("/a", 1 * GB)

    def test_missing_file(self, hdfs):
        with pytest.raises(FileNotFoundInStoreError):
            hdfs.get("/missing")

    def test_negative_size_rejected(self, hdfs):
        with pytest.raises(StorageError):
            hdfs.put("/neg", -1.0)

    def test_list_sorted(self, hdfs):
        hdfs.put("/b", 1 * GB)
        hdfs.put("/a", 1 * GB)
        assert [f.path for f in hdfs.list_files()] == ["/a", "/b"]


class TestCapacityAccounting:
    def test_replicated_allocation(self, hdfs):
        hdfs.put("/a", 300 * GB)
        # 300 GB * replication 2 over 3 devices = 200 GB each.
        for device in hdfs.devices:
            assert device.used_bytes == pytest.approx(200 * GB)

    def test_delete_releases(self, hdfs):
        hdfs.put("/a", 300 * GB)
        hdfs.delete("/a")
        for device in hdfs.devices:
            assert device.used_bytes == 0.0
        assert not hdfs.exists("/a")

    def test_overflow_rolls_back(self, hdfs):
        with pytest.raises(StorageError):
            hdfs.put("/huge", 10 * TB)
        for device in hdfs.devices:
            assert device.used_bytes == 0.0
        assert not hdfs.exists("/huge")

    def test_total_stored(self, hdfs):
        hdfs.put("/a", 10 * GB)
        hdfs.put("/b", 5 * GB)
        assert hdfs.total_stored_bytes == pytest.approx(15 * GB)


class TestRequestSizes:
    def test_read_write_request_is_block(self, hdfs):
        assert hdfs.read_request_size() == pytest.approx(128 * MB)
        assert hdfs.write_request_size() == pytest.approx(128 * MB)

    def test_write_amplification(self, hdfs):
        assert hdfs.write_amplification() == 2.0
