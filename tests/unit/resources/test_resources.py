"""Unit tests for the generic shared-resource contention layer."""

import pytest

from repro.errors import SimulationError
from repro.resources import (
    DeviceResource,
    LinkResource,
    Resource,
    ResourceRegistry,
    SharedStream,
    SlotPool,
    rebalance_coupled,
)
from repro.storage.device import make_hdd, make_ssd
from repro.units import KB, MB


class TestSharedStream:
    def test_validation(self):
        with pytest.raises(SimulationError):
            SharedStream(remaining_bytes=-1.0)
        with pytest.raises(SimulationError):
            SharedStream(remaining_bytes=1.0, request_size=0.0)
        with pytest.raises(SimulationError):
            SharedStream(remaining_bytes=1.0, per_stream_cap=0.0)

    def test_seconds_to_finish(self):
        stream = SharedStream(remaining_bytes=10 * MB, rate=1 * MB)
        assert stream.seconds_to_finish() == pytest.approx(10.0)
        stream.rate = 0.0
        assert stream.seconds_to_finish() == float("inf")
        stream.remaining_bytes = 0.0
        assert stream.done
        assert stream.seconds_to_finish() == 0.0

    def test_describe_names_resources(self):
        resource = Resource("the-disk", 100 * MB)
        stream = SharedStream(remaining_bytes=1 * MB, request_size=30 * KB)
        resource.attach(stream)
        text = stream.describe()
        assert "the-disk" in text
        assert "30720" in text  # request size in bytes


class TestResource:
    def test_waterfill_fair_share(self):
        resource = Resource("r", 90.0)
        streams = [SharedStream(remaining_bytes=1.0) for _ in range(3)]
        for stream in streams:
            resource.attach(stream)
        assert [s.rate for s in streams] == [pytest.approx(30.0)] * 3

    def test_waterfill_cap_surplus_redistributed(self):
        resource = Resource("r", 90.0)
        capped = SharedStream(remaining_bytes=1.0, per_stream_cap=10.0)
        free_a = SharedStream(remaining_bytes=1.0)
        free_b = SharedStream(remaining_bytes=1.0)
        for stream in (capped, free_a, free_b):
            resource.attach(stream)
        assert capped.rate == pytest.approx(10.0)
        assert free_a.rate == pytest.approx(40.0)
        assert free_b.rate == pytest.approx(40.0)

    def test_duplicate_attach_rejected(self):
        resource = Resource("r", 1.0)
        stream = SharedStream(remaining_bytes=1.0)
        resource.attach(stream)
        with pytest.raises(SimulationError, match="already attached"):
            resource.attach(stream)

    def test_detach_unknown_rejected(self):
        resource = Resource("r", 1.0)
        with pytest.raises(SimulationError, match="not attached"):
            resource.detach(SharedStream(remaining_bytes=1.0))

    def test_detach_zeroes_rate_when_unbound(self):
        resource = Resource("r", 10.0)
        stream = SharedStream(remaining_bytes=1.0)
        resource.attach(stream)
        assert stream.rate == pytest.approx(10.0)
        resource.detach(stream)
        assert stream.rate == 0.0
        assert stream.resources == []

    def test_callable_capacity_sees_demand_profile(self):
        resource = Resource("r", lambda streams: 10.0 * len(streams))
        streams = [SharedStream(remaining_bytes=1.0) for _ in range(4)]
        for stream in streams:
            resource.attach(stream)
        # capacity 40 over 4 streams -> 10 each
        assert all(s.rate == pytest.approx(10.0) for s in streams)

    def test_bandwidth_at_probes_single_stream(self):
        device = make_ssd()
        resource = DeviceResource(device, is_write=False)
        assert resource.bandwidth_at(30 * KB) == pytest.approx(
            device.bandwidth(30 * KB, False)
        )


class TestDeviceResource:
    def test_capacity_at_smallest_active_request(self):
        device = make_hdd()
        resource = DeviceResource(device, is_write=False)
        big = SharedStream(remaining_bytes=1 * MB, request_size=128 * MB)
        small = SharedStream(remaining_bytes=1 * MB, request_size=30 * KB)
        resource.attach(big)
        assert resource.aggregate_capacity() == pytest.approx(
            device.bandwidth(128 * MB, False)
        )
        resource.attach(small)
        assert resource.aggregate_capacity() == pytest.approx(
            device.bandwidth(30 * KB, False)
        )

    def test_directions_are_independent(self):
        device = make_ssd()
        read = DeviceResource(device, is_write=False)
        write = DeviceResource(device, is_write=True)
        r = SharedStream(remaining_bytes=1 * MB, request_size=1 * MB)
        w = SharedStream(remaining_bytes=1 * MB, request_size=1 * MB)
        read.attach(r)
        write.attach(w)
        assert r.rate == pytest.approx(device.bandwidth(1 * MB, False))
        assert w.rate == pytest.approx(device.bandwidth(1 * MB, True))


class TestLinkResource:
    def test_constant_capacity(self):
        link = LinkResource("nic", 125 * MB)
        streams = [SharedStream(remaining_bytes=1.0) for _ in range(5)]
        for stream in streams:
            link.attach(stream)
        assert all(s.rate == pytest.approx(25 * MB) for s in streams)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(SimulationError):
            LinkResource("nic", 0.0)


class TestSlotPool:
    def test_acquire_release(self):
        pool = SlotPool("cores", 2)
        assert pool.free == 2
        pool.acquire()
        pool.acquire()
        assert pool.free == 0
        with pytest.raises(SimulationError, match="exhausted"):
            pool.acquire()
        pool.release()
        assert pool.free == 1

    def test_release_without_acquire_rejected(self):
        pool = SlotPool("cores", 1)
        with pytest.raises(SimulationError):
            pool.release()

    def test_needs_positive_total(self):
        with pytest.raises(SimulationError):
            SlotPool("cores", 0)


class TestRebalanceCoupled:
    def test_matches_waterfill_for_single_resource(self):
        specs = [(None,), (50.0,), (None,), (5.0,)]
        solo = Resource("solo", 120.0)
        solo_streams = [
            SharedStream(remaining_bytes=1.0, per_stream_cap=cap)
            for (cap,) in specs
        ]
        for stream in solo_streams:
            solo.attach(stream, rebalance=False)
        solo.rebalance()

        coupled = Resource("coupled", 120.0)
        coupled_streams = [
            SharedStream(remaining_bytes=1.0, per_stream_cap=cap)
            for (cap,) in specs
        ]
        for stream in coupled_streams:
            coupled.attach(stream, rebalance=False)
        rebalance_coupled([coupled])

        for a, b in zip(solo_streams, coupled_streams):
            assert b.rate == pytest.approx(a.rate)

    def test_link_bound_stream_limits_only_itself(self):
        """A remote stream throttled by a slow NIC frees disk bandwidth
        for the local stream — max-min fairness across the couple."""
        disk = Resource("disk", 100.0)
        link = Resource("nic", 10.0)
        local = SharedStream(remaining_bytes=1.0)
        remote = SharedStream(remaining_bytes=1.0)
        disk.attach(local, rebalance=False)
        disk.attach(remote, rebalance=False)
        link.attach(remote, rebalance=False)
        rebalance_coupled([disk, link])
        assert remote.rate == pytest.approx(10.0)  # NIC-bound
        assert local.rate == pytest.approx(90.0)  # picks up the slack

    def test_fast_link_changes_nothing(self):
        disk = Resource("disk", 100.0)
        link = Resource("nic", 1e9)
        a = SharedStream(remaining_bytes=1.0)
        b = SharedStream(remaining_bytes=1.0)
        disk.attach(a, rebalance=False)
        disk.attach(b, rebalance=False)
        link.attach(b, rebalance=False)
        rebalance_coupled([disk, link])
        assert a.rate == pytest.approx(50.0)
        assert b.rate == pytest.approx(50.0)


class TestResourceRegistry:
    def test_register_get_find(self):
        registry = ResourceRegistry()
        resource = Resource("r", 1.0)
        registry.register(("a", 1), resource)
        assert registry.get(("a", 1)) is resource
        assert registry.find(("missing",)) is None
        assert ("a", 1) in registry
        assert len(registry) == 1

    def test_duplicate_key_rejected(self):
        registry = ResourceRegistry()
        registry.register("k", Resource("r", 1.0))
        with pytest.raises(SimulationError, match="already registered"):
            registry.register("k", Resource("r2", 1.0))

    def test_unknown_key_rejected(self):
        with pytest.raises(SimulationError, match="no resource registered"):
            ResourceRegistry().get("nope")

    def test_for_devices_exposes_model_bandwidths(self):
        ssd = make_ssd()
        hdd = make_hdd()
        registry = ResourceRegistry.for_devices(
            {"hdfs": ssd, "local": hdd}, network_bandwidth=125 * MB
        )
        assert registry.bandwidth(("role", "hdfs", False), 30 * KB) == (
            pytest.approx(ssd.bandwidth(30 * KB, False))
        )
        assert registry.bandwidth(("role", "local", True), 1 * MB) == (
            pytest.approx(hdd.bandwidth(1 * MB, True))
        )
        assert registry.bandwidth(("network",), 30 * KB) == pytest.approx(125 * MB)

    def test_for_devices_without_network(self):
        registry = ResourceRegistry.for_devices({"hdfs": make_ssd()})
        assert ("network",) not in registry
