"""Unit coverage for the array model core (:mod:`repro.model.arrays`).

The exactness properties live in ``tests/properties/test_vectorized.py``;
this file pins the surface: backend selection, batch validation, error
paths, and the score-container accessors.
"""

from __future__ import annotations

import pytest

from repro.cloud.pricing import CloudConfiguration
from repro.core import Profiler
from repro.core.profiler import (
    ChannelProfile,
    ProfilingReport,
    StageProfileData,
)
from repro.errors import ConfigurationError, ModelError
from repro.model.arrays import (
    BACKEND_ENV_VAR,
    BOTTLENECK_LABELS,
    BatchScores,
    CandidateBatch,
    Eq1BatchEvaluator,
    backend_name,
    score_batch,
)
from repro.workloads import make_svm_workload

HAS_NUMPY = backend_name() == "numpy"


@pytest.fixture(scope="module")
def report():
    return Profiler(make_svm_workload(), nodes=2).profile()


def _batch(count=2, **overrides):
    columns = dict(
        nodes=(5,) * count,
        cores=(8,) * count,
        hdfs_kinds=("pd-standard",) * count,
        hdfs_sizes_gb=(500.0,) * count,
        local_kinds=("pd-ssd",) * count,
        local_sizes_gb=(250.0,) * count,
        vcpus=(8,) * count,
    )
    columns.update(overrides)
    return CandidateBatch(**columns)


# -- backend selection --------------------------------------------------------


def test_backend_name_explicit_python():
    assert backend_name("python") == "python"


def test_backend_env_var_overrides_auto(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "python")
    assert backend_name() == "python"


def test_unknown_backend_is_a_configuration_error():
    with pytest.raises(ConfigurationError, match="unknown array backend"):
        backend_name("cuda")


def test_env_var_loses_to_explicit_argument(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "python")
    if HAS_NUMPY:
        assert backend_name("numpy") == "numpy"
    else:
        with pytest.raises(ConfigurationError, match="numpy is not installed"):
            backend_name("numpy")


# -- batch construction -------------------------------------------------------


def test_batch_length_and_config_roundtrip():
    batch = _batch(count=3)
    assert len(batch) == 3
    config = batch.config(1)
    assert isinstance(config, CloudConfiguration)
    assert config.machine.vcpus == 8
    assert config.num_workers == 5
    assert config.local_disk_kind == "pd-ssd"
    assert CandidateBatch.from_configs([config]) == _batch(count=1)


def test_mismatched_column_lengths_rejected():
    with pytest.raises(ModelError, match="equal lengths"):
        _batch(count=2, nodes=(5,))


def test_nonpositive_shape_rejected():
    with pytest.raises(ModelError, match="positive"):
        _batch(count=1, cores=(0,))


def test_nonpositive_disk_size_rejected():
    with pytest.raises(ConfigurationError, match="disk sizes"):
        _batch(count=1, hdfs_sizes_gb=(0.0,))


def test_model_only_batch_cannot_materialize_configs():
    batch = _batch(count=1, vcpus=None)
    with pytest.raises(ModelError, match="no machine vcpus"):
        batch.config(0)


# -- scoring error paths ------------------------------------------------------


def test_cost_requires_vcpus(report):
    batch = _batch(count=1, vcpus=None)
    with pytest.raises(ModelError, match="vcpus"):
        score_batch(report, batch, want_cost=True)
    scores = score_batch(report, batch, want_cost=False)
    assert scores.cost_dollars is None


def test_unknown_disk_kind_is_a_configuration_error(report):
    batch = _batch(count=1, local_kinds=("floppy",))
    with pytest.raises(ConfigurationError):
        score_batch(report, batch)


def test_unknown_channel_role_is_a_model_error():
    stage = StageProfileData(
        name="map",
        num_tasks=8,
        t_avg=1.0,
        delta_scale=0.0,
        delta_read=0.0,
        delta_write=0.0,
        channels=(
            ChannelProfile(
                kind="net", role="nic", total_bytes=1.0,
                request_size=4096.0, is_write=False,
            ),
        ),
    )
    report = ProfilingReport(workload_name="synthetic", nodes=2, stages=(stage,))
    with pytest.raises(ModelError, match="no target device for role 'nic'"):
        Eq1BatchEvaluator(report)


def test_empty_batch_scores_empty(report):
    scores = score_batch(report, _batch(count=0))
    assert len(scores) == 0
    with pytest.raises(ModelError, match="empty batch"):
        scores.argmin_cost()


# -- score container ----------------------------------------------------------


def test_scores_expose_stage_names_and_labels(report):
    scores = score_batch(report, _batch(count=2))
    assert scores.stage_names == tuple(s.name for s in report.stages)
    for stage_index in range(len(scores.stage_names)):
        label = scores.bottleneck_label(stage_index, 0)
        assert label in BOTTLENECK_LABELS


def test_bottleneck_label_requires_bottlenecks(report):
    scores = score_batch(report, _batch(count=1), want_bottlenecks=False)
    assert scores.bottlenecks is None
    with pytest.raises(ModelError, match="without bottleneck labels"):
        scores.bottleneck_label(0, 0)


def test_argmin_cost_prefers_first_exact_tie():
    scores = BatchScores(
        runtime_seconds=(1.0, 2.0, 3.0),
        cost_dollars=(5.0, 4.0, 4.0),
        bottlenecks=None,
        stage_names=(),
        backend="python",
    )
    assert scores.argmin_cost() == 1


def test_argmin_requires_cost():
    scores = BatchScores(
        runtime_seconds=(1.0,), cost_dollars=None, bottlenecks=None,
        stage_names=(), backend="python",
    )
    with pytest.raises(ModelError, match="no cost"):
        scores.argmin_cost()


def test_evaluator_reports_requested_backend(report):
    evaluator = Eq1BatchEvaluator(report)
    scores = evaluator.score(_batch(count=1), backend="python")
    assert scores.backend == "python"
    if HAS_NUMPY:
        assert evaluator.score(_batch(count=1), backend="numpy").backend == "numpy"
