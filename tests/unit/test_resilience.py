"""Unit tests for the resilience layer: policies, blacklist, mechanisms.

Example-based companions to the randomized sweeps in
``tests/properties/test_resilience.py`` — each test pins one documented
behaviour (a speculation win, a retry recovery, a stage abort) so a
regression names the broken mechanism directly.
"""

from __future__ import annotations

import pytest

from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
from repro.errors import ConfigurationError, StageFailedError
from repro.faults import DiskFault, FaultPlan, NodeFailureFault, StragglerFault
from repro.resilience import (
    BlacklistPolicy,
    ResiliencePolicy,
    RetryPolicy,
    SpeculationPolicy,
    StageResilience,
    default_mitigations,
    merge_summaries,
)
from repro.schedule import ExecutorBlacklist
from repro.schedule.scheduler import SchedulingError
from repro.units import MB
from repro.workloads.base import ChannelSpec, StageSpec, TaskGroupSpec, WorkloadSpec
from repro.workloads.runner import measure_workload


def _spec(count: int = 8, compute: float = 0.5, jitter: float = 0.0) -> WorkloadSpec:
    stage = StageSpec(
        name="s0",
        groups=(
            TaskGroupSpec(
                name="g0",
                count=count,
                read_channels=(ChannelSpec("hdfs_read", 8 * MB, 1 * MB, 60 * MB),),
                compute_seconds=compute,
                write_channels=(ChannelSpec("shuffle_write", 4 * MB, 1 * MB, 50 * MB),),
            ),
        ),
        task_jitter=jitter,
    )
    return WorkloadSpec(name="resil", stages=(stage,))


def _measure(spec, nodes=2, cores=2, faults=None, resilience=None):
    return measure_workload(
        make_paper_cluster(nodes, HYBRID_CONFIGS[0]), cores, spec,
        faults=faults, resilience=resilience,
    )


STRAGGLER = FaultPlan(name="s", faults=(StragglerFault(node=1, slowdown=3.0),))
DEAD_DISK = FaultPlan(
    name="dead",
    faults=(DiskFault(factor=0.0, start=0.5, end=400.0, node=1),),
)


class TestPolicyValidation:
    def test_bad_speculation_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SpeculationPolicy(quantile=0.0)
        with pytest.raises(ConfigurationError):
            SpeculationPolicy(quantile=1.5)
        with pytest.raises(ConfigurationError):
            SpeculationPolicy(multiplier=0.9)
        with pytest.raises(ConfigurationError):
            SpeculationPolicy(min_finished=0)

    def test_bad_retry_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_task_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_seconds=10.0, max_backoff_seconds=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(stall_timeout_seconds=0.0)

    def test_bad_blacklist_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            BlacklistPolicy(max_node_strikes=0)

    def test_backoff_is_exponential_and_capped(self):
        retry = RetryPolicy(
            backoff_seconds=0.5, backoff_factor=2.0, max_backoff_seconds=3.0
        )
        assert retry.backoff_for(1) == 0.5
        assert retry.backoff_for(2) == 1.0
        assert retry.backoff_for(3) == 2.0
        assert retry.backoff_for(4) == 3.0  # capped
        with pytest.raises(ConfigurationError):
            retry.backoff_for(0)

    def test_dict_round_trip(self):
        policy = default_mitigations()
        clone = ResiliencePolicy.from_dict(policy.to_dict())
        assert clone == policy
        assert clone.fingerprint() == policy.fingerprint()

    def test_fingerprints_separate_policies(self):
        assert (
            ResiliencePolicy().fingerprint()
            != default_mitigations().fingerprint()
        )

    def test_describe_names_the_armed_mechanisms(self):
        text = default_mitigations().describe()
        assert "speculation" in text and "blacklist" in text and "retry" in text


class TestExecutorBlacklist:
    NAMES = ("a", "b", "c")

    def test_strikes_accumulate_to_exclusion(self):
        blacklist = ExecutorBlacklist(2, self.NAMES)
        assert not blacklist.strike("a", survivors=set(self.NAMES))
        assert blacklist.strikes("a") == 1
        assert not blacklist.is_excluded("a")
        assert blacklist.strike("a", survivors=set(self.NAMES))
        assert blacklist.is_excluded("a")
        assert blacklist.excluded == ("a",)

    def test_eligible_filters_excluded_names(self):
        blacklist = ExecutorBlacklist(1, self.NAMES)
        blacklist.strike("b", survivors=set(self.NAMES))
        assert blacklist.eligible(self.NAMES) == ["a", "c"]

    def test_last_survivor_is_never_excluded(self):
        blacklist = ExecutorBlacklist(1, self.NAMES)
        blacklist.strike("a", survivors=set(self.NAMES))
        blacklist.strike("b", survivors=set(self.NAMES))
        # Only "c" remains; striking it counts but must not exclude.
        assert not blacklist.strike("c", survivors={"c"})
        assert blacklist.strikes("c") >= 1
        assert not blacklist.is_excluded("c")

    def test_unknown_names_are_adopted(self):
        # Nodes can appear after construction (a policy shared across
        # stages on growing clusters); a strike simply registers them.
        blacklist = ExecutorBlacklist(2, self.NAMES)
        assert not blacklist.strike("ghost", survivors=set(self.NAMES))
        assert blacklist.strikes("ghost") == 1

    def test_bad_threshold_rejected(self):
        with pytest.raises(SchedulingError):
            ExecutorBlacklist(0, self.NAMES)


class TestSpeculation:
    POLICY = ResiliencePolicy(speculation=SpeculationPolicy())

    def test_speculation_beats_the_straggler(self):
        unmitigated = _measure(_spec(), faults=STRAGGLER)
        mitigated = _measure(_spec(), faults=STRAGGLER, resilience=self.POLICY)
        assert mitigated.total_seconds < unmitigated.total_seconds
        summary = mitigated.stages[0].resilience
        assert summary.speculative_wins >= 1
        assert summary.speculative_wins <= summary.speculative_launched

    def test_winner_attempts_count_toward_attempts(self):
        mitigated = _measure(_spec(), faults=STRAGGLER, resilience=self.POLICY)
        summary = mitigated.stages[0].resilience
        assert summary.attempts == 8 + summary.speculative_launched

    def test_uniform_tasks_never_speculate(self):
        # Jitter-free tasks all run at the median: nothing crosses the
        # 1.5x threshold, so an armed policy changes nothing at all.
        clean = _measure(_spec())
        armed = _measure(_spec(), resilience=self.POLICY)
        assert armed.total_seconds == clean.total_seconds
        assert armed.stages[0].resilience.speculative_launched == 0


class TestRetry:
    POLICY = ResiliencePolicy(retry=RetryPolicy(stall_timeout_seconds=2.0))

    def test_dead_disk_window_is_survived_by_retry(self):
        # Unmitigated, tasks caught in the factor=0 window sit stalled
        # until it lifts at t=400; with retry the stall times out, the
        # attempt fails, and the resubmission lands outside the hole.
        unmitigated = _measure(_spec(), faults=DEAD_DISK)
        mitigated = _measure(_spec(), faults=DEAD_DISK, resilience=self.POLICY)
        assert mitigated.total_seconds < unmitigated.total_seconds
        summary = mitigated.stages[0].resilience
        assert summary.task_retries >= 1
        assert summary.backoff_seconds > 0.0

    def test_node_death_is_survived_with_recorded_backoff(self):
        plan = FaultPlan(
            name="kill", faults=(NodeFailureFault(node=1, at_seconds=0.5),)
        )
        clean = _measure(_spec(), nodes=3)
        mitigated = _measure(
            _spec(), nodes=3, faults=plan, resilience=self.POLICY
        )
        assert mitigated.total_seconds > clean.total_seconds
        summary = mitigated.stages[0].resilience
        assert summary.task_retries >= 1
        assert summary.backoff_seconds > 0.0
        # Bytes follow the spec, not the attempt count.
        assert mitigated.stages[0].read_bytes == clean.stages[0].read_bytes

    def test_exhausted_budgets_raise_stage_failed(self):
        # Every disk on every node dead forever: each attempt stalls out
        # wherever it lands, so the budgets drain and the run aborts
        # with the structured error.
        plan = FaultPlan(
            name="doom", faults=(DiskFault(factor=0.0, start=0.0),)
        )
        policy = ResiliencePolicy(
            retry=RetryPolicy(
                max_task_attempts=1,
                max_stage_attempts=1,
                stall_timeout_seconds=0.5,
                backoff_seconds=0.1,
            )
        )
        with pytest.raises(StageFailedError) as info:
            _measure(_spec(), faults=plan, resilience=policy)
        error = info.value
        assert error.stage == "s0"
        assert error.attempts >= 1
        assert error.stage_attempts >= 1
        assert "aborted" in str(error)


class TestBlacklistInTheEngine:
    POLICY = ResiliencePolicy(
        speculation=SpeculationPolicy(),
        blacklist=BlacklistPolicy(max_node_strikes=2),
    )

    def test_straggler_node_gets_blacklisted(self):
        mitigated = _measure(
            _spec(count=16), faults=STRAGGLER, resilience=self.POLICY
        )
        summary = mitigated.stages[0].resilience
        assert "slave-1" in summary.blacklisted

    def test_blacklisting_still_improves_on_the_straggler(self):
        unmitigated = _measure(_spec(count=16), faults=STRAGGLER)
        mitigated = _measure(
            _spec(count=16), faults=STRAGGLER, resilience=self.POLICY
        )
        assert mitigated.total_seconds < unmitigated.total_seconds


class TestSummaries:
    def test_merge_unions_blacklists_and_sums_counters(self):
        merged = merge_summaries([
            StageResilience(attempts=4, speculative_launched=1,
                            speculative_wins=1, blacklisted=("a",)),
            None,
            StageResilience(attempts=2, task_retries=3, backoff_seconds=1.5,
                            blacklisted=("b", "a")),
        ])
        assert merged.attempts == 6
        assert merged.speculative_wins == 1
        assert merged.task_retries == 3
        assert merged.backoff_seconds == 1.5
        assert merged.blacklisted == ("a", "b")

    def test_mitigated_flag(self):
        assert not StageResilience(attempts=8).mitigated
        assert StageResilience(attempts=8, task_retries=1).mitigated
        assert StageResilience(attempts=8, blacklisted=("a",)).mitigated

    def test_round_trip(self):
        summary = StageResilience(
            attempts=9, speculative_launched=2, speculative_wins=1,
            task_retries=1, stage_reattempts=0, backoff_seconds=0.5,
            blacklisted=("x",),
        )
        assert StageResilience.from_dict(summary.to_dict()) == summary
