"""Unit tests for the synthetic data generators."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.generators import (
    generate_edge_list,
    generate_genome_reads,
    generate_labelled_points,
    generate_terasort_records,
    generate_triangle_rich_graph,
)


class TestLabelledPoints:
    def test_shape(self):
        lines = generate_labelled_points(100, 5)
        assert len(lines) == 100
        label, *features = lines[0].split()
        assert label in ("0", "1")
        assert len(features) == 5

    def test_deterministic(self):
        assert generate_labelled_points(10, 3, seed=1) == generate_labelled_points(
            10, 3, seed=1
        )

    def test_both_classes_present(self):
        labels = {line.split()[0] for line in generate_labelled_points(200, 4)}
        assert labels == {"0", "1"}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_labelled_points(0, 1)


class TestEdgeList:
    def test_no_self_loops(self):
        edges = generate_edge_list(50, 500)
        assert all(src != dst for src, dst in edges)

    def test_count_and_range(self):
        edges = generate_edge_list(10, 100)
        assert len(edges) == 100
        assert all(0 <= v < 10 for edge in edges for v in edge)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_edge_list(1, 10)


class TestTriangleRichGraph:
    def test_known_triangle_count(self):
        edges = generate_triangle_rich_graph(7)
        assert len(edges) == 21  # 3 edges per triangle

    def test_disjoint_cliques(self):
        edges = generate_triangle_rich_graph(3)
        vertices = {v for edge in edges for v in edge}
        assert vertices == set(range(9))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_triangle_rich_graph(0)


class TestTerasortRecords:
    def test_key_shape(self):
        records = generate_terasort_records(20)
        assert len(records) == 20
        assert all(len(key) == 10 for key, _ in records)

    def test_payloads_unique(self):
        records = generate_terasort_records(50)
        assert len({payload for _, payload in records}) == 50

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_terasort_records(0)


class TestGenomeReads:
    def test_shape(self):
        reads = generate_genome_reads(100, read_length=50)
        assert len(reads) == 100
        chrom, pos, seq = reads[0]
        assert chrom.startswith("chr")
        assert pos >= 1
        assert len(seq) == 50
        assert set(seq) <= set("ACGT")

    def test_duplicates_planted(self):
        reads = generate_genome_reads(500, duplicate_fraction=0.5)
        positions = [(chrom, pos) for chrom, pos, _ in reads]
        assert len(set(positions)) < len(positions)

    def test_no_duplicates_when_zero(self):
        reads = generate_genome_reads(50, duplicate_fraction=0.0, seed=3)
        positions = [(chrom, pos) for chrom, pos, _ in reads]
        # Collisions are possible but vanishingly unlikely at this size.
        assert len(set(positions)) >= len(positions) - 1

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_genome_reads(0)
        with pytest.raises(WorkloadError):
            generate_genome_reads(10, duplicate_fraction=1.5)
