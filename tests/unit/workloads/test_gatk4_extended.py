"""Unit tests for the extended GATK4 pipeline (BWA + HC)."""

import pytest

from repro.errors import WorkloadError
from repro.units import GB
from repro.workloads.gatk4 import Gatk4Parameters
from repro.workloads.gatk4_extended import (
    ExtendedGatk4Parameters,
    make_bwa_stage,
    make_extended_gatk4_workload,
    make_hc_stage,
)


@pytest.fixture()
def workload():
    return make_extended_gatk4_workload()


class TestPipelineStructure:
    def test_five_stages_in_order(self, workload):
        assert [s.name for s in workload.stages] == [
            "BWA", "MD", "BR", "SF", "HC",
        ]

    def test_core_stages_unchanged(self, workload):
        # The three paper stages keep their Table IV totals.
        assert workload.stage("BR").total_bytes("shuffle_read") == (
            pytest.approx(334 * GB)
        )
        assert workload.stage("MD").total_bytes("shuffle_write") == (
            pytest.approx(334 * GB)
        )


class TestBwaStage:
    def test_reads_fastq_and_writes_aligned(self):
        params = ExtendedGatk4Parameters()
        stage = make_bwa_stage(params)
        assert stage.total_bytes("hdfs_read") == pytest.approx(220 * GB)
        assert stage.total_bytes("shuffle_write") == pytest.approx(
            params.aligned_bytes
        )

    def test_compute_bound(self):
        stage = make_bwa_stage(ExtendedGatk4Parameters())
        group = stage.group("align")
        io = group.read_channels[0].uncontended_seconds()
        assert group.compute_seconds / io == pytest.approx(29.0, rel=0.01)

    def test_task_count_from_fastq_blocks(self):
        params = ExtendedGatk4Parameters()
        assert make_bwa_stage(params).num_tasks == params.num_bwa_tasks
        assert params.num_bwa_tasks == 1760  # 220 GB / 128 MB


class TestHcStage:
    def test_rereads_recalibrated_shuffle(self):
        stage = make_hc_stage(ExtendedGatk4Parameters())
        assert stage.total_bytes("shuffle_read") == pytest.approx(334 * GB)

    def test_vcf_output_replicated(self):
        stage = make_hc_stage(ExtendedGatk4Parameters())
        assert stage.total_bytes("hdfs_write") == pytest.approx(8 * GB)

    def test_task_count_matches_reducers(self):
        params = ExtendedGatk4Parameters()
        assert make_hc_stage(params).num_tasks == (
            params.base.shuffle_plan.num_reducers
        )


class TestParameters:
    def test_custom_base(self):
        base = Gatk4Parameters(shuffle_bytes=100 * GB)
        params = ExtendedGatk4Parameters(base=base)
        workload = make_extended_gatk4_workload(params)
        assert workload.stage("HC").total_bytes("shuffle_read") == (
            pytest.approx(100 * GB)
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ExtendedGatk4Parameters(fastq_bytes=0.0)
        with pytest.raises(WorkloadError):
            ExtendedGatk4Parameters(bwa_lambda=0.5)
        with pytest.raises(WorkloadError):
            ExtendedGatk4Parameters(vcf_bytes=-1.0)


class TestModeling:
    def test_profiles_and_predicts(self):
        from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
        from repro.core import Predictor, Profiler
        from repro.workloads.runner import measure_workload

        workload = make_extended_gatk4_workload()
        predictor = Predictor(Profiler(workload, nodes=3).profile())
        cluster = make_paper_cluster(10, HYBRID_CONFIGS[0])
        measured = measure_workload(cluster, 24, workload)
        predicted = predictor.predict(cluster, 24)
        error = abs(predicted.t_app - measured.total_seconds) / (
            measured.total_seconds
        )
        assert error < 0.10

    def test_bwa_is_compute_dominated_on_both_devices(self):
        from repro.cluster import HYBRID_CONFIGS, make_paper_cluster
        from repro.core import Predictor, Profiler

        workload = make_extended_gatk4_workload()
        predictor = Predictor(Profiler(workload, nodes=3).profile())
        for config in (HYBRID_CONFIGS[0], HYBRID_CONFIGS[3]):
            cluster = make_paper_cluster(10, config)
            prediction = predictor.predict(cluster, 36)
            assert prediction.stage("BWA").bottleneck == "scale"
