"""Unit tests for workload spec abstractions."""

import pytest

from repro.errors import WorkloadError
from repro.simulator.task import ComputePhase, IoPhase
from repro.units import KB, MB
from repro.workloads.base import (
    ChannelSpec,
    StageSpec,
    TaskGroupSpec,
    WorkloadSpec,
    compute_seconds_from_lambda,
)


def read_channel(kind="shuffle_read", bytes_=27 * MB, rs=30 * KB, cap=60 * MB):
    return ChannelSpec(
        kind=kind, bytes_per_task=bytes_, request_size=rs, per_core_throughput=cap
    )


def write_channel(kind="shuffle_write", bytes_=100 * MB, rs=100 * MB, cap=50 * MB):
    return ChannelSpec(
        kind=kind, bytes_per_task=bytes_, request_size=rs, per_core_throughput=cap
    )


class TestChannelSpec:
    def test_roles_and_directions(self):
        assert read_channel("hdfs_read").role == "hdfs"
        assert read_channel("persist_read").role == "local"
        assert not read_channel().is_write
        assert write_channel("hdfs_write").is_write

    def test_unknown_kind(self):
        with pytest.raises(WorkloadError):
            read_channel(kind="scratch_read")

    def test_uncontended_seconds(self):
        channel = read_channel(bytes_=120 * MB, cap=60 * MB)
        assert channel.uncontended_seconds() == pytest.approx(2.0)

    def test_uncontended_requires_cap(self):
        channel = ChannelSpec(kind="hdfs_read", bytes_per_task=1.0, request_size=1.0)
        with pytest.raises(WorkloadError):
            channel.uncontended_seconds()

    def test_to_phase(self):
        phase = read_channel().to_phase()
        assert isinstance(phase, IoPhase)
        assert phase.role == "local"
        assert not phase.is_write

    def test_validation(self):
        with pytest.raises(WorkloadError):
            read_channel(bytes_=-1.0)
        with pytest.raises(WorkloadError):
            read_channel(rs=0.0)
        with pytest.raises(WorkloadError):
            read_channel(cap=0.0)


class TestTaskGroupSpec:
    def test_phases_ordered_read_compute_write(self):
        group = TaskGroupSpec(
            name="g", count=2,
            read_channels=(read_channel(),),
            compute_seconds=3.0,
            write_channels=(write_channel(),),
        )
        phases = group.task_phases()
        assert isinstance(phases[0], IoPhase) and not phases[0].is_write
        assert isinstance(phases[1], ComputePhase)
        assert isinstance(phases[2], IoPhase) and phases[2].is_write

    def test_compute_scale(self):
        group = TaskGroupSpec(name="g", count=1, compute_seconds=2.0)
        phases = group.task_phases(compute_scale=1.5)
        assert phases[0].seconds == pytest.approx(3.0)

    def test_uncontended_task_seconds(self):
        group = TaskGroupSpec(
            name="g", count=1,
            read_channels=(read_channel(bytes_=60 * MB, cap=60 * MB),),
            compute_seconds=3.0,
        )
        assert group.uncontended_task_seconds() == pytest.approx(4.0)

    def test_misplaced_channels_rejected(self):
        with pytest.raises(WorkloadError):
            TaskGroupSpec(name="g", count=1, read_channels=(write_channel(),))
        with pytest.raises(WorkloadError):
            TaskGroupSpec(name="g", count=1, write_channels=(read_channel(),))

    def test_invalid_count_and_compute(self):
        with pytest.raises(WorkloadError):
            TaskGroupSpec(name="g", count=0)
        with pytest.raises(WorkloadError):
            TaskGroupSpec(name="g", count=1, compute_seconds=-1.0)


class TestStageSpec:
    def _stage(self, repeat=1, jitter=0.1):
        return StageSpec(
            name="s",
            groups=(
                TaskGroupSpec(name="a", count=6, compute_seconds=1.0,
                              read_channels=(read_channel(),)),
                TaskGroupSpec(name="b", count=2, compute_seconds=2.0,
                              write_channels=(write_channel(),)),
            ),
            repeat=repeat,
            task_jitter=jitter,
        )

    def test_task_counts(self):
        stage = self._stage(repeat=5)
        assert stage.tasks_per_execution == 8
        assert stage.num_tasks == 40

    def test_group_lookup(self):
        stage = self._stage()
        assert stage.group("a").count == 6
        with pytest.raises(WorkloadError):
            stage.group("zzz")

    def test_total_bytes_includes_repeat(self):
        stage = self._stage(repeat=3)
        assert stage.total_bytes("shuffle_read") == pytest.approx(3 * 6 * 27 * MB)
        assert stage.total_bytes("shuffle_write") == pytest.approx(3 * 2 * 100 * MB)
        assert stage.total_bytes("hdfs_read") == 0.0

    def test_total_bytes_unknown_kind(self):
        with pytest.raises(WorkloadError):
            self._stage().total_bytes("scratch")

    def test_channel_summary(self):
        summary = self._stage().channel_summary()
        total, request = summary["shuffle_read"]
        assert total == pytest.approx(6 * 27 * MB)
        assert request == pytest.approx(30 * KB)

    def test_build_tasks_one_execution(self):
        tasks = self._stage(repeat=4).build_tasks()
        assert len(tasks) == 8  # one repeat only

    def test_build_tasks_interleaves_groups(self):
        tasks = self._stage().build_tasks()
        groups = [t.group for t in tasks]
        # "b" tasks are spread, not clustered at the end.
        first_b = groups.index("b")
        assert first_b < 4

    def test_jitter_mean_preserving(self):
        tasks = self._stage(jitter=0.1).build_tasks()
        a_computes = [
            t.compute_seconds() for t in tasks if t.group == "a"
        ]
        assert sum(a_computes) / len(a_computes) == pytest.approx(1.0, rel=0.05)
        assert max(a_computes) <= 1.1 + 1e-9
        assert min(a_computes) >= 0.9 - 1e-9

    def test_zero_jitter_identical_tasks(self):
        tasks = self._stage(jitter=0.0).build_tasks()
        a_computes = {t.compute_seconds() for t in tasks if t.group == "a"}
        assert a_computes == {1.0}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            StageSpec(name="s", groups=())
        with pytest.raises(WorkloadError):
            self._stage(repeat=0)
        with pytest.raises(WorkloadError):
            self._stage(jitter=1.5)
        with pytest.raises(WorkloadError):
            StageSpec(
                name="s",
                groups=(
                    TaskGroupSpec(name="x", count=1, compute_seconds=0.0),
                    TaskGroupSpec(name="x", count=1, compute_seconds=0.0),
                ),
            )


class TestWorkloadSpec:
    def test_stage_lookup_and_staged_tasks(self):
        stage = StageSpec(
            name="only",
            groups=(TaskGroupSpec(name="g", count=2, compute_seconds=1.0),),
        )
        workload = WorkloadSpec(name="w", stages=(stage,))
        assert workload.stage("only") is stage
        staged = workload.build_staged_tasks()
        assert staged[0][0] == "only"
        assert len(staged[0][1]) == 2
        with pytest.raises(WorkloadError):
            workload.stage("missing")

    def test_duplicate_stage_names_rejected(self):
        stage = StageSpec(
            name="dup",
            groups=(TaskGroupSpec(name="g", count=1, compute_seconds=0.0),),
        )
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="w", stages=(stage, stage))

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="w", stages=())


class TestLambdaHelper:
    def test_formula(self):
        assert compute_seconds_from_lambda(20.0, 0.45) == pytest.approx(8.55)

    def test_lambda_one_is_pure_io(self):
        assert compute_seconds_from_lambda(1.0, 5.0) == 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            compute_seconds_from_lambda(0.5, 1.0)
        with pytest.raises(WorkloadError):
            compute_seconds_from_lambda(2.0, -1.0)
