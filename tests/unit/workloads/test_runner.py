"""Unit tests for the workload measurement runner (repeat scaling)."""

import pytest

from repro.workloads.base import StageSpec, TaskGroupSpec, WorkloadSpec
from repro.workloads.runner import measure_stage, measure_workload


def compute_stage(name, count=6, seconds=1.0, repeat=1):
    return StageSpec(
        name=name,
        groups=(TaskGroupSpec(name="g", count=count, compute_seconds=seconds),),
        repeat=repeat,
    )


class TestMeasureStage:
    def test_single_execution(self, ssd_cluster):
        measurement = measure_stage(ssd_cluster, 2, compute_stage("s"))
        assert measurement.num_tasks == 6
        # One wave of six jittered (+-20%) tasks: the longest one paces it.
        assert measurement.makespan == pytest.approx(1.2, rel=0.1)

    def test_repeat_scales_linearly(self, ssd_cluster):
        once = measure_stage(ssd_cluster, 2, compute_stage("s", repeat=1))
        many = measure_stage(ssd_cluster, 2, compute_stage("s", repeat=10))
        assert many.makespan == pytest.approx(10 * once.makespan)
        assert many.num_tasks == 10 * once.num_tasks
        assert many.task_counts == {"g": 60}

    def test_repeat_scales_bytes(self, ssd_cluster):
        from repro.units import MB
        from repro.workloads.base import ChannelSpec

        stage = StageSpec(
            name="io",
            groups=(
                TaskGroupSpec(
                    name="g",
                    count=3,
                    read_channels=(
                        ChannelSpec(
                            kind="shuffle_read",
                            bytes_per_task=10 * MB,
                            request_size=1 * MB,
                            per_core_throughput=60 * MB,
                        ),
                    ),
                    compute_seconds=0.1,
                ),
            ),
            repeat=4,
        )
        measurement = measure_stage(ssd_cluster, 2, stage)
        assert measurement.read_bytes == pytest.approx(4 * 3 * 10 * MB)


class TestMeasureWorkload:
    def test_stages_in_order(self, ssd_cluster):
        workload = WorkloadSpec(
            name="w",
            stages=(compute_stage("a"), compute_stage("b", seconds=2.0)),
        )
        measurement = measure_workload(ssd_cluster, 2, workload)
        assert [s.name for s in measurement.stages] == ["a", "b"]
        assert measurement.total_seconds == pytest.approx(
            measurement.stage("a").makespan + measurement.stage("b").makespan
        )
