"""Unit tests for the TriangleCount and Terasort workload models."""

import pytest

from repro.errors import WorkloadError
from repro.units import GB, KB, MB
from repro.workloads.terasort import TerasortParameters, make_terasort_workload
from repro.workloads.triangle_count import (
    TriangleCountParameters,
    make_triangle_count_workload,
)


class TestTriangleCount:
    def test_stage_sequence(self):
        workload = make_triangle_count_workload()
        assert [s.name for s in workload.stages] == [
            "graphLoader", "canonicalize", "countTriangles",
        ]

    def test_phase_groups(self):
        workload = make_triangle_count_workload()
        groups = workload.parameters["phase_groups"]
        assert groups["computeTriangleCount"] == ["canonicalize", "countTriangles"]

    def test_shuffle_396gb(self):
        workload = make_triangle_count_workload()
        assert workload.stage("canonicalize").total_bytes(
            "shuffle_write"
        ) == pytest.approx(396 * GB)
        assert workload.stage("countTriangles").total_bytes(
            "shuffle_read"
        ) == pytest.approx(396 * GB)

    def test_reducer_request_size_near_70kb(self):
        # (396 GB / 2400 reducers) / 2400 mappers = 72.1 KB per request.
        plan = TriangleCountParameters().shuffle_plan
        assert plan.read_request_size == pytest.approx(72.1 * KB, rel=0.02)

    def test_count_side_compute_heavy(self):
        workload = make_triangle_count_workload()
        group = workload.stage("countTriangles").groups[0]
        io_seconds = group.read_channels[0].uncontended_seconds()
        assert group.compute_seconds / io_seconds == pytest.approx(9.0, rel=0.01)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            TriangleCountParameters(num_partitions=0)
        with pytest.raises(WorkloadError):
            TriangleCountParameters(shuffle_bytes=0.0)


class TestTerasort:
    def test_stage_sequence(self):
        workload = make_terasort_workload()
        assert [s.name for s in workload.stages] == ["NF", "SF"]

    def test_930gb_through_shuffle(self):
        workload = make_terasort_workload()
        assert workload.stage("NF").total_bytes("shuffle_write") == pytest.approx(
            930 * GB
        )
        assert workload.stage("SF").total_bytes("shuffle_read") == pytest.approx(
            930 * GB
        )

    def test_mapper_count_from_blocks(self):
        params = TerasortParameters()
        assert params.num_mappers == 7440  # 930 GB / 128 MB

    def test_output_replicated(self):
        workload = make_terasort_workload()
        assert workload.stage("SF").total_bytes("hdfs_write") == pytest.approx(
            2 * 930 * GB
        )

    def test_reducer_request_size_sub_megabyte(self):
        plan = TerasortParameters().shuffle_plan
        assert 100 * KB < plan.read_request_size < 1 * MB

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            TerasortParameters(total_bytes=0.0)
        with pytest.raises(WorkloadError):
            TerasortParameters(num_reducers=0)
